"""Durable, lease-based sweep fabric: elastic workers that survive churn.

The process-pool fan-out in :mod:`repro.exec.runner` tops out at one
parent and its forked children: a worker that dies takes its future with
it, and nobody outside the parent process can help finish the sweep.
This module decouples *scheduling* from *execution* through a
filesystem-backed work queue, the same durability idiom as the run
ledger (O_APPEND JSONL events + atomic ``os.replace`` snapshots):

- a **coordinator** (:class:`FabricCoordinator`, driven by
  ``SweepRunner(fabric=...)`` / ``repro sweep --fabric DIR``) persists
  the sweep's pending point set into a *queue directory* and supervises
  it: reclaiming expired leases, quarantining poisoned points,
  respawning dead local workers, and folding completed results back
  into the ordinary :class:`~repro.exec.runner.SweepReport`;
- **workers** (:func:`worker_main`, the ``repro worker --queue DIR``
  subcommand) claim points under time-bounded leases, heartbeat while
  simulating, write results crash-atomically into the shared
  :class:`~repro.exec.cache.ResultCache`, and append a ``done`` event.
  Any number may join or leave mid-sweep, from any process.

Queue directory layout::

    queue.json      sweep definition (keys, fingerprint, settings) [atomic]
    specs.pkl       pickled key -> SimulationSpec map            [atomic]
    events.jsonl    append-only event log (claim/done/error/...) [O_APPEND]
    leases/K.json   live lease for point K (O_EXCL create = claim)
    results/        default shared ResultCache directory
    workers/        per-worker log files
    state.json      last coordinator snapshot                    [atomic]

Failure semantics (at-least-once, recorded exactly once):

- a worker that is SIGKILLed, hangs, or partitions simply stops
  heartbeating; its lease deadline passes and the coordinator *reclaims*
  the lease, making the point claimable again;
- duplicate execution is therefore possible by design -- a presumed-dead
  worker may still finish.  It is harmless: results are content-addressed
  (identical by construction), the first ``done`` event wins the
  accounting, and later duplicates are only counted
  (``fabric_done_duplicates_total``);
- a point on which ``quarantine_after`` *distinct* workers have died or
  errored is quarantined (a circuit breaker for poisoned specs) and
  surfaced as a :class:`~repro.exec.runner.FailedPoint` with its full
  attempt history;
- :func:`audit_queue` replays the event log and proves the invariants:
  every seeded point is done or quarantined, every done point has a
  loadable result, no lease outlives the sweep.

Chaos modes (``REPRO_SWEEP_CHAOS``, on top of the ``raise``/``exit``/
``hang``/``exit-once`` recipes handled inside the simulation guard):

- ``kill9[:DELAY[:JITTER]]``   -- every worker SIGKILLs itself DELAY +
  U(0,JITTER) seconds after starting (default 0.5+0.5), whatever it is
  doing: constant worker churn;
- ``stall-heartbeat[:RATE[:SECONDS]]`` -- with per-(point, attempt)
  probability RATE the worker stops heartbeating and stalls before
  simulating, so its lease expires and the point is re-leased while the
  stalled worker is fenced out;
- ``torn-write[:RATE]``        -- the worker writes a truncated result
  directly to the cache slot (bypassing the crash-atomic writer) and
  SIGKILLs itself: the corrupt-entry path must swallow it;
- ``slow[:RATE[:SECONDS]]``    -- the worker sleeps before simulating
  while *keeping* its heartbeat: leases must be extended, not expired.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.exec.cache import ResultCache
from repro.exec.runner import CHAOS_ENV, _simulate_guarded
from repro.telemetry.live import shard_of

QUEUE_META = "queue.json"
SPECS_FILE = "specs.pkl"
EVENTS_FILE = "events.jsonl"
LEASES_DIR = "leases"
RESULTS_DIR = "results"
WORKERS_DIR = "workers"
STATE_FILE = "state.json"

#: Fabric metric names pre-registered on every instrumented coordinator
#: run, so a churn-free sweep still renders them (as zeros).
FABRIC_COUNTER_HELP = {
    "fabric_lease_claims_total": "Lease claims appended to the queue.",
    "fabric_lease_expired_total": "Leases reclaimed after their deadline.",
    "fabric_requeued_total": "Points made claimable again after a lease "
                             "expiry.",
    "fabric_done_duplicates_total": "Duplicate completions (at-least-once "
                                    "execution), deduplicated.",
    "fabric_worker_errors_total": "Point attempts that raised inside a "
                                  "fabric worker.",
    "fabric_worker_spawns_total": "Local worker processes launched.",
    "fabric_worker_deaths_total": "Local worker processes that died "
                                  "without draining.",
    "fabric_quarantined_total": "Points quarantined after repeated "
                                "worker deaths.",
    "fabric_recovered_total": "Points recovered from an orphaned result "
                              "(done event lost with its worker).",
}

#: Fabric gauges, pre-registered alongside the counters so they render
#: (as zeros) before their first ``set`` -- without this a churn-free
#: sweep's snapshot is missing the series a churny one has, and merged
#: snapshots change shape run to run.
FABRIC_GAUGE_HELP = {
    "fabric_workers_alive": "Live local fabric worker processes.",
    "fabric_leases_active": "Leases currently held by workers.",
}


class QueueError(RuntimeError):
    """The queue directory is absent, foreign, or belongs to another sweep."""


@dataclass(frozen=True)
class FabricConfig:
    """Knobs for one fabric-mode sweep (``SweepRunner(fabric=...)``)."""

    queue_dir: str
    workers: int = 2                  # local worker processes (0: external only)
    lease_ttl_s: float = 10.0         # heartbeat-extended claim lifetime
    heartbeat_s: float | None = None  # default: lease_ttl_s / 3
    quarantine_after: int = 3         # distinct dead/erroring workers per point
    poll_s: float = 0.05              # coordinator/worker scan period
    respawn: bool = True              # keep the local pool at `workers`
    drain_timeout_s: float = 30.0     # grace for in-flight points on drain
    shards: int = 8                   # content-derived buckets for live views

    def __post_init__(self):
        if self.workers < 0:
            raise ValueError("fabric workers must be >= 0")
        if self.lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be positive")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")

    def for_batch(self, fingerprint: str) -> "FabricConfig":
        """The same knobs bound to a per-batch queue subdirectory.

        A fabric queue directory belongs to exactly one sweep (the
        coordinator stamps and audits it), so a long-lived owner -- the
        service front door dispatching many batches over one configured
        fabric -- derives a fresh queue per batch from the batch's
        content fingerprint instead of reusing one directory serially.
        """
        return dataclasses.replace(
            self, queue_dir=os.path.join(self.queue_dir, f"batch-{fingerprint[:16]}")
        )


# ----------------------------------------------------------------------
# chaos
# ----------------------------------------------------------------------
def chaos_coin(key: str, attempt: int) -> float:
    """Deterministic uniform coin for one (point, attempt) pair."""
    digest = hashlib.sha256(f"{key}#{attempt}".encode("utf-8")).hexdigest()
    return int(digest[:8], 16) / float(0xFFFFFFFF)


@dataclass(frozen=True)
class ChaosPlan:
    """Parsed ``REPRO_SWEEP_CHAOS`` recipe (fabric-level modes only)."""

    mode: str
    args: tuple[str, ...] = ()

    @classmethod
    def from_env(cls) -> "ChaosPlan | None":
        recipe = os.environ.get(CHAOS_ENV, "").strip()
        if not recipe:
            return None
        parts = recipe.split(":")
        return cls(parts[0], tuple(parts[1:]))

    def num(self, index: int, default: float) -> float:
        try:
            return float(self.args[index])
        except (IndexError, ValueError):
            return default


# ----------------------------------------------------------------------
# the lease table: every filesystem primitive the fabric is built on
# ----------------------------------------------------------------------
def _write_json_atomic(path: Path, payload, fsync: bool = True) -> None:
    """Write JSON so a crash at any instant leaves the old or new file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _read_json(path: Path):
    """Parse a JSON file; ``None`` when absent or torn."""
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


class LeaseTable:
    """The durable state of one queue directory.

    Stateless between calls except for the loaded queue metadata: any
    number of :class:`LeaseTable` instances (one per worker process, one
    in the coordinator) operate on the same directory concurrently.
    Events are appended with a single ``write(2)`` on an ``O_APPEND``
    descriptor (whole lines, never interleaved bytes); leases and
    snapshots are atomic ``os.replace`` writes.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.meta: dict | None = None

    # paths ------------------------------------------------------------
    @property
    def meta_path(self) -> Path:
        return self.directory / QUEUE_META

    @property
    def events_path(self) -> Path:
        return self.directory / EVENTS_FILE

    @property
    def leases_dir(self) -> Path:
        return self.directory / LEASES_DIR

    def lease_path(self, key: str) -> Path:
        return self.leases_dir / f"{key}.json"

    # queue lifecycle ---------------------------------------------------
    def seed(self, pending: list[tuple[str, object]], *, fingerprint: str,
             results_dir: str, settings: dict) -> bool:
        """Create the queue, or adopt an existing one for the same sweep.

        Returns ``True`` when an existing queue was adopted (a resume
        after a dead coordinator).  A queue directory holding a
        *different* sweep raises :class:`QueueError` instead of silently
        mixing two point sets.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        self.leases_dir.mkdir(exist_ok=True)
        (self.directory / WORKERS_DIR).mkdir(exist_ok=True)
        existing = _read_json(self.meta_path)
        if existing is not None:
            if existing.get("fingerprint") != fingerprint:
                raise QueueError(
                    f"queue {self.directory} already holds a different sweep "
                    f"(fingerprint {existing.get('fingerprint')!r}); use a "
                    f"fresh --fabric directory"
                )
            self.meta = existing
            self._extend_specs(pending)
            return True
        specs = {key: spec for key, spec in pending}
        self._write_specs(specs)
        self.meta = {
            "version": 1,
            "fingerprint": fingerprint,
            "keys": [key for key, _ in pending],
            "total": len(pending),
            "results_dir": os.path.abspath(results_dir),
            "settings": settings,
            "created": time.time(),
        }
        _write_json_atomic(self.meta_path, self.meta)
        self.append({"ev": "seed", "total": len(pending)})
        return False

    def _write_specs(self, specs: dict) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(self.directory), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(specs, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.directory / SPECS_FILE)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _extend_specs(self, pending: list[tuple[str, object]]) -> None:
        """On adoption: make sure every currently-pending spec is present."""
        specs = self.specs()
        missing = [(k, s) for k, s in pending if k not in specs]
        if missing:
            specs.update(dict(missing))
            self._write_specs(specs)
            keys = list(self.meta.get("keys", ()))
            keys.extend(k for k, _ in missing if k not in keys)
            self.meta = dict(self.meta, keys=keys, total=len(keys))
            _write_json_atomic(self.meta_path, self.meta)

    def load(self) -> dict:
        """Read the queue metadata (raises :class:`QueueError` if absent)."""
        meta = _read_json(self.meta_path)
        if meta is None or "keys" not in meta:
            raise QueueError(f"no sweep queue at {self.directory} "
                             f"(missing or unreadable {QUEUE_META})")
        self.meta = meta
        return meta

    def specs(self) -> dict:
        """The pickled key -> spec map seeded by the coordinator."""
        try:
            with open(self.directory / SPECS_FILE, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as err:
            raise QueueError(f"unreadable {SPECS_FILE} in {self.directory}: "
                             f"{err}") from err

    @property
    def settings(self) -> dict:
        return (self.meta or {}).get("settings", {})

    def shard(self, key: str) -> int:
        """The content-derived shard id of one point (for live views)."""
        return shard_of(key, int(self.settings.get("shards") or 0))

    # event log ---------------------------------------------------------
    def append(self, event: dict) -> None:
        """Append one event as a whole line (O_APPEND, single write)."""
        payload = dict(event)
        payload.setdefault("ts", round(time.time(), 4))
        line = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")) + "\n"
        fd = os.open(self.events_path,
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    def read_events(self, offset: int = 0) -> tuple[list[dict], int]:
        """Complete events after byte ``offset``, plus the new offset.

        Tolerates a torn tail (a writer caught mid-append): only lines
        terminated by a newline are parsed; the offset never advances
        past an incomplete line.
        """
        try:
            with open(self.events_path, "rb") as handle:
                handle.seek(offset)
                blob = handle.read()
        except OSError:
            return [], offset
        end = blob.rfind(b"\n")
        if end < 0:
            return [], offset
        events = []
        for line in blob[:end + 1].splitlines():
            if not line.strip():
                continue
            try:
                events.append(json.loads(line.decode("utf-8")))
            except (ValueError, UnicodeDecodeError):
                continue  # foreign or damaged line: tolerate
        return events, offset + end + 1

    # leases -------------------------------------------------------------
    def claim(self, key: str, worker: str, attempt: int) -> dict | None:
        """Claim ``key`` under a time-bounded lease; None when already held."""
        ttl = float(self.settings.get("lease_ttl_s", 10.0))
        payload = {
            "key": key,
            "worker": worker,
            "attempt": attempt,
            "nonce": uuid.uuid4().hex[:12],
            "deadline": time.time() + ttl,
        }
        path = self.lease_path(key)
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return None
        except OSError:
            return None
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        self.append({"ev": "claim", "key": key, "worker": worker,
                     "attempt": attempt, "nonce": payload["nonce"],
                     "shard": self.shard(key)})
        return payload

    def read_lease(self, key: str) -> dict | None:
        return _read_json(self.lease_path(key))

    def lease_exists(self, key: str) -> bool:
        return self.lease_path(key).exists()

    def heartbeat(self, key: str, worker: str, nonce: str) -> bool:
        """Extend our lease; ``False`` when fenced out (lease reclaimed
        or re-claimed by another worker)."""
        current = self.read_lease(key)
        if (not current or current.get("worker") != worker
                or current.get("nonce") != nonce):
            return False
        ttl = float(self.settings.get("lease_ttl_s", 10.0))
        current["deadline"] = time.time() + ttl
        try:
            _write_json_atomic(self.lease_path(key), current, fsync=False)
        except OSError:
            return False
        return True

    def release(self, key: str, worker: str, nonce: str) -> None:
        """Drop our lease (a no-op when it is no longer ours)."""
        current = self.read_lease(key)
        if (current and current.get("worker") == worker
                and current.get("nonce") == nonce):
            try:
                os.unlink(self.lease_path(key))
            except OSError:
                pass

    def reclaim_expired(self, now: float | None = None) -> list[dict]:
        """Expire every lease whose deadline has passed (coordinator only).

        An unreadable lease file (a claimer killed mid-write) is expired
        by its mtime.  Each reclamation appends an ``expired`` event and
        unlinks the lease, making the point claimable again.
        """
        now = time.time() if now is None else now
        ttl = float(self.settings.get("lease_ttl_s", 10.0))
        reclaimed = []
        try:
            entries = list(os.scandir(self.leases_dir))
        except OSError:
            return reclaimed
        for entry in entries:
            if not entry.name.endswith(".json"):
                continue
            lease = _read_json(Path(entry.path))
            if lease is None:
                try:
                    if entry.stat().st_mtime + ttl > now:
                        continue  # probably mid-write: give it a grace ttl
                except OSError:
                    continue
                lease = {"key": entry.name[:-len(".json")],
                         "worker": "unknown", "attempt": 0, "nonce": "torn"}
            elif float(lease.get("deadline", 0.0)) > now:
                continue
            self.append({"ev": "expired", "key": lease["key"],
                         "worker": lease.get("worker", "unknown"),
                         "attempt": lease.get("attempt", 0),
                         "nonce": lease.get("nonce", "")})
            try:
                os.unlink(entry.path)
            except OSError:
                pass
            reclaimed.append(lease)
        return reclaimed

    def reclaim_worker(self, worker: str) -> list[dict]:
        """Immediately expire every lease held by a worker known to be
        dead (the coordinator reaped its process), without waiting for
        the deadline."""
        reclaimed = []
        try:
            entries = list(os.scandir(self.leases_dir))
        except OSError:
            return reclaimed
        for entry in entries:
            lease = _read_json(Path(entry.path))
            if not lease or lease.get("worker") != worker:
                continue
            self.append({"ev": "expired", "key": lease["key"],
                         "worker": worker,
                         "attempt": lease.get("attempt", 0),
                         "nonce": lease.get("nonce", ""), "fast": True})
            try:
                os.unlink(entry.path)
            except OSError:
                pass
            reclaimed.append(lease)
        return reclaimed

    def active_leases(self) -> int:
        try:
            return sum(1 for entry in os.scandir(self.leases_dir)
                       if entry.name.endswith(".json"))
        except OSError:
            return 0


# ----------------------------------------------------------------------
# worker
# ----------------------------------------------------------------------
def _arm_kill9(chaos: ChaosPlan) -> None:
    """Chaos: schedule this worker's own SIGKILL (constant churn)."""
    delay = chaos.num(0, 0.5) + chaos.num(1, 0.5) * random.random()
    timer = threading.Timer(
        delay, lambda: os.kill(os.getpid(), signal.SIGKILL))
    timer.daemon = True
    timer.start()


class _Heartbeat:
    """Background lease renewal while a point simulates.

    Stops renewing (and flags ``fenced``) the moment the lease is no
    longer ours -- the coordinator reclaimed it and the point may be
    running elsewhere.
    """

    def __init__(self, table: LeaseTable, lease: dict, interval_s: float):
        self.table = table
        self.lease = lease
        self.interval_s = interval_s
        self.fenced = threading.Event()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            if not self.table.heartbeat(self.lease["key"],
                                        self.lease["worker"],
                                        self.lease["nonce"]):
                self.fenced.set()
                return

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()


def _torn_write(cache: ResultCache, key: str) -> None:
    """Chaos: emulate a pre-atomic writer dying mid-write, then die."""
    if cache.directory is None:
        os.kill(os.getpid(), signal.SIGKILL)
    path = os.path.join(cache.directory, f"{key}.pkl")
    with open(path, "wb") as handle:
        handle.write(pickle.dumps({"torn": True})[:7])  # truncated pickle
        handle.flush()
    os.kill(os.getpid(), signal.SIGKILL)


def worker_main(queue_dir: str, worker_id: str | None = None,
                poll_s: float = 0.05, wait_s: float = 10.0,
                log=None, generation: int = 0) -> int:
    """The fabric worker loop (``repro worker --queue DIR``).

    Joins the queue (waiting up to ``wait_s`` for a coordinator to seed
    it), then repeatedly claims an unleased, unfinished point, simulates
    it under a heartbeat-extended lease, writes the result
    crash-atomically to the shared cache and appends a ``done`` event.
    Exits 0 once the queue is drained / shut down, 2 when no queue
    appears.  SIGINT/SIGTERM drain gracefully: the in-flight point is
    finished and recorded before exiting.
    """
    emit = (log or print)
    table = LeaseTable(queue_dir)
    deadline = time.monotonic() + wait_s
    while True:
        try:
            meta = table.load()
            specs = table.specs()
            break
        except QueueError as err:
            if time.monotonic() >= deadline:
                emit(f"worker: {err}")
                return 2
            time.sleep(min(0.1, poll_s))
    worker = worker_id or f"w{os.getpid()}"
    cache = ResultCache(directory=meta["results_dir"])
    chaos = ChaosPlan.from_env()
    if chaos is not None and chaos.mode == "kill9":
        _arm_kill9(chaos)
    ttl = float(table.settings.get("lease_ttl_s", 10.0))
    heartbeat_s = float(table.settings.get("heartbeat_s") or ttl / 3.0)

    stop = threading.Event()

    def _graceful(signum, frame):
        stop.set()

    restore = {}
    try:
        for signum in (signal.SIGTERM, signal.SIGINT):
            restore[signum] = signal.signal(signum, _graceful)
    except ValueError:
        restore = {}  # not the main thread (in-process tests)

    table.append({"ev": "worker-start", "worker": worker, "pid": os.getpid(),
                  "generation": int(generation)})
    keys = list(meta["keys"])
    if keys:  # scan from a worker-specific offset to spread claim attempts
        start = int(hashlib.sha256(worker.encode()).hexdigest()[:8], 16)
        start %= len(keys)
        keys = keys[start:] + keys[:start]
    done: set[str] = set()
    quarantined: set[str] = set()
    claims_seen: dict[str, int] = {}
    offset = 0
    completed = 0
    halted = False
    while not stop.is_set() and not halted:
        events, offset = table.read_events(offset)
        for event in events:
            kind = event.get("ev")
            if kind == "done":
                done.add(event["key"])
            elif kind == "quarantine":
                quarantined.add(event["key"])
            elif kind == "claim":
                claims_seen[event["key"]] = claims_seen.get(event["key"], 0) + 1
            elif kind in ("drain", "shutdown"):
                halted = True
        if halted:
            break
        outstanding = [key for key in keys
                       if key not in done and key not in quarantined]
        if not outstanding:
            break
        claimed = None
        for key in outstanding:
            if table.lease_exists(key):
                continue
            attempt = claims_seen.get(key, 0) + 1
            claimed = table.claim(key, worker, attempt)
            if claimed is not None:
                break
        if claimed is None:
            time.sleep(poll_s)
            continue
        completed += _run_point(table, cache, specs, claimed, chaos,
                                heartbeat_s, ttl)
    for signum, handler in restore.items():
        signal.signal(signum, handler)
    reason = ("signal" if stop.is_set()
              else "halted" if halted else "drained")
    table.append({"ev": "worker-exit", "worker": worker,
                  "points": completed, "reason": reason})
    emit(f"worker {worker} exiting ({reason}): {completed} point(s) done")
    return 0


def _run_point(table: LeaseTable, cache: ResultCache, specs: dict,
               lease: dict, chaos: ChaosPlan | None,
               heartbeat_s: float, ttl: float) -> int:
    """Execute one leased point end to end; returns 1 on a ``done``."""
    key, worker, attempt = lease["key"], lease["worker"], lease["attempt"]
    shard = table.shard(key)

    # stall-heartbeat chaos: no renewals + a stall longer than the ttl,
    # so the lease expires mid-flight and the worker must find itself
    # fenced out instead of double-reporting.
    if (chaos is not None and chaos.mode == "stall-heartbeat"
            and chaos_coin(key, attempt) < chaos.num(0, 1.0)):
        time.sleep(chaos.num(1, 2.5 * ttl))
        current = table.read_lease(key)
        if (not current or current.get("nonce") != lease["nonce"]):
            table.append({"ev": "abandon", "key": key, "worker": worker,
                          "attempt": attempt, "reason": "fenced"})
            return 0
        # lease survived (nobody reclaimed yet): carry on normally

    heartbeat = _Heartbeat(table, lease, heartbeat_s)
    heartbeat.start()
    try:
        # a prior holder may have written the result and died before its
        # `done` event: recover the orphaned result instead of re-running
        orphan = cache.get(key)
        if orphan is not None:
            # cache-hit provenance: the result pre-existed (an orphaned
            # write, or a shared cache warmed by another sweep)
            table.append({"ev": "done", "key": key, "worker": worker,
                          "attempt": attempt, "elapsed": 0.0,
                          "recovered": True, "cached": True,
                          "shard": shard})
            return 1
        if chaos is not None and chaos.mode == "slow":
            if chaos_coin(key, attempt) < chaos.num(0, 1.0):
                time.sleep(chaos.num(1, 0.75))
        if chaos is not None and chaos.mode == "torn-write":
            if chaos_coin(key, attempt) < chaos.num(0, 1.0):
                _torn_write(cache, key)  # does not return
        status = _simulate_guarded(specs[key])
        if status[0] == "ok":
            _, result, elapsed, _payload = status
            cache.put(key, result)  # crash-atomic: whole entry or nothing
            table.append({"ev": "done", "key": key, "worker": worker,
                          "attempt": attempt,
                          "elapsed": round(elapsed, 6),
                          "shard": shard})
            return 1
        _, message, traceback_text, _elapsed, _payload = status
        table.append({"ev": "error", "key": key, "worker": worker,
                      "attempt": attempt, "error": message,
                      "tb": traceback_text, "shard": shard})
        return 0
    finally:
        heartbeat.stop()
        table.release(key, worker, lease["nonce"])


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------
@dataclass
class FabricStats:
    """Churn accounting for one fabric-mode sweep."""

    workers_spawned: int = 0
    worker_deaths: int = 0
    claims: int = 0
    expired: int = 0
    requeued: int = 0
    duplicates: int = 0
    errors: int = 0
    quarantined: int = 0
    recovered: int = 0
    per_worker: dict = field(default_factory=dict)  # worker -> points done

    def summary(self) -> str:
        workers = (f"{self.workers_spawned} local worker(s) spawned"
                   + (f", {self.worker_deaths} died" if self.worker_deaths
                      else ""))
        leases = (f"leases: {self.claims} claimed / {self.expired} expired "
                  f"/ {self.requeued} requeued")
        extras = []
        if self.duplicates:
            extras.append(f"{self.duplicates} duplicate completion(s) "
                          f"deduplicated")
        if self.recovered:
            extras.append(f"{self.recovered} orphaned result(s) recovered")
        if self.quarantined:
            extras.append(f"{self.quarantined} point(s) quarantined")
        line = f"fabric: {workers}; {leases}"
        if extras:
            line += "; " + ", ".join(extras)
        return line


class FabricCoordinator:
    """Seed, supervise and harvest one queue directory.

    Driven by :meth:`SweepRunner.run` in fabric mode: ``execute`` blocks
    until every pending point is done or quarantined (or a drain was
    requested via ``stop``), feeding completions and failures into the
    runner's ordinary accounting closures so fabric sweeps produce the
    same :class:`~repro.exec.runner.SweepReport` as pool sweeps.
    """

    def __init__(self, config: FabricConfig, telemetry=None):
        self.config = config
        self.telemetry = telemetry
        self.stats = FabricStats()

    # -- metrics helpers -------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name).inc(amount)

    def _gauge(self, name: str, value, help_text: str = "", **labels) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.gauge(name, help_text, **labels).set(value)

    # -- worker process management --------------------------------------
    def _spawn_worker(self, slot: int, generation: int):
        queue = self.config.queue_dir
        worker_id = f"w{slot}g{generation}"
        log_path = Path(queue) / WORKERS_DIR / f"{worker_id}.log"
        log_path.parent.mkdir(parents=True, exist_ok=True)
        log = open(log_path, "ab")
        import repro

        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--queue", str(queue),
             "--id", worker_id, "--wait", "30",
             "--generation", str(generation)],
            stdout=log, stderr=subprocess.STDOUT, env=env,
        )
        self.stats.workers_spawned += 1
        self._count("fabric_worker_spawns_total")
        return {"proc": proc, "id": worker_id, "log": log, "slot": slot,
                "generation": generation}

    # -- main loop -------------------------------------------------------
    def execute(self, pending, cache, complete, fail, stop,
                fingerprint: str | None = None) -> FabricStats:
        """Run every ``(key, spec)`` in ``pending`` through the fabric.

        ``complete(key, result, elapsed)`` / ``fail(key, kind, error, tb,
        attempts, history=...)`` are the runner's accounting closures;
        ``stop`` is a :class:`threading.Event` requesting a graceful
        drain (finish in-flight leases, then return with the remainder
        unrun).  ``fingerprint`` must identify the *whole* sweep (the
        runner passes its checkpoint-manifest fingerprint), not just the
        still-pending subset -- that is what lets a resumed sweep, whose
        pending set has shrunk, adopt the same queue directory.
        """
        config = self.config
        table = LeaseTable(config.queue_dir)
        from repro.noc.spec import stable_key

        keys = [key for key, _ in pending]
        results_dir = cache.directory or str(Path(config.queue_dir) / RESULTS_DIR)
        adopted = table.seed(
            pending,
            fingerprint=fingerprint or stable_key(tuple(sorted(keys))),
            results_dir=results_dir,
            settings={
                "lease_ttl_s": config.lease_ttl_s,
                "heartbeat_s": config.heartbeat_s,
                "quarantine_after": config.quarantine_after,
                "shards": config.shards,
            },
        )
        if adopted:
            # a previous coordinator died: stale leases (whose holders are
            # long gone) would otherwise block re-leasing for a full ttl
            table.reclaim_expired()
        transport = ResultCache(directory=table.meta["results_dir"])
        if self.telemetry is not None:
            self.telemetry.metrics.preregister(FABRIC_COUNTER_HELP,
                                               gauges=FABRIC_GAUGE_HELP)

        pending_keys = set(keys)
        completed: set[str] = set()
        failed: set[str] = set()
        history: dict[str, list] = {key: [] for key in keys}
        bad_workers: dict[str, set] = {key: set() for key in keys}
        offset = 0
        workers = [self._spawn_worker(slot, 0)
                   for slot in range(config.workers)]
        draining = False
        drain_deadline = None

        def ingest(event: dict) -> None:
            kind = event.get("ev")
            key = event.get("key")
            worker = event.get("worker", "?")
            if key is not None and key not in pending_keys:
                return  # an earlier incarnation's point, already served
            if kind == "claim":
                self.stats.claims += 1
                self._count("fabric_lease_claims_total")
                history[key].append({"event": "claim", "worker": worker,
                                     "attempt": event.get("attempt", 0),
                                     "ts": event.get("ts")})
            elif kind == "done":
                if key in completed:
                    self.stats.duplicates += 1
                    self._count("fabric_done_duplicates_total")
                    return
                result = transport.get(key)
                if result is None:
                    # done event without a loadable result (torn by chaos
                    # or a foreign writer): leave the point claimable
                    history[key].append({"event": "done-unreadable",
                                         "worker": worker,
                                         "ts": event.get("ts")})
                    return
                completed.add(key)
                if event.get("recovered"):
                    self.stats.recovered += 1
                    self._count("fabric_recovered_total")
                self.stats.per_worker[worker] = (
                    self.stats.per_worker.get(worker, 0) + 1)
                history[key].append({"event": "done", "worker": worker,
                                     "ts": event.get("ts")})
                complete(key, result, float(event.get("elapsed") or 0.0))
            elif kind == "error":
                self.stats.errors += 1
                self._count("fabric_worker_errors_total")
                bad_workers[key].add(worker)
                history[key].append({"event": "error", "worker": worker,
                                     "error": event.get("error"),
                                     "tb": event.get("tb"),
                                     "ts": event.get("ts")})
            elif kind == "expired":
                self.stats.expired += 1
                self._count("fabric_lease_expired_total")
                bad_workers[key].add(worker)
                history[key].append({"event": "expired", "worker": worker,
                                     "ts": event.get("ts")})
                if key not in completed and key not in failed:
                    self.stats.requeued += 1
                    self._count("fabric_requeued_total")
            elif kind == "abandon":
                history[key].append({"event": "abandon", "worker": worker,
                                     "ts": event.get("ts")})

        try:
            while True:
                events, offset = table.read_events(offset)
                for event in events:
                    ingest(event)

                # reap local workers; fast-reclaim their leases; respawn
                alive = []
                for info in workers:
                    code = info["proc"].poll()
                    if code is None:
                        alive.append(info)
                        continue
                    info["log"].close()
                    if code != 0:
                        self.stats.worker_deaths += 1
                        self._count("fabric_worker_deaths_total")
                        table.reclaim_worker(info["id"])
                    work_left = pending_keys - completed - failed
                    if (config.respawn and not draining and work_left
                            and not stop.is_set()):
                        alive.append(self._spawn_worker(
                            info["slot"], info["generation"] + 1))
                workers = alive

                table.reclaim_expired()

                # quarantine circuit breaker
                for key in list(pending_keys - completed - failed):
                    if len(bad_workers[key]) >= config.quarantine_after:
                        table.append({"ev": "quarantine", "key": key,
                                      "workers": sorted(bad_workers[key])})
                        failed.add(key)
                        self.stats.quarantined += 1
                        self._count("fabric_quarantined_total")
                        last_error = next(
                            (entry for entry in reversed(history[key])
                             if entry["event"] == "error"), None)
                        detail = (f": last error {last_error['error']}"
                                  if last_error else "")
                        fail(
                            key, "quarantined",
                            f"{len(bad_workers[key])} distinct worker(s) died "
                            f"or errored on this point{detail}",
                            last_error.get("tb") if last_error else None,
                            len([e for e in history[key]
                                 if e["event"] == "claim"]),
                            history=history[key],
                        )

                self._gauge("fabric_workers_alive", len(workers),
                            "Live local fabric worker processes.")
                self._gauge("fabric_leases_active", table.active_leases(),
                            "Leases currently held by workers.")

                if pending_keys <= completed | failed:
                    table.append({"ev": "shutdown"})
                    break
                if stop.is_set():
                    if not draining:
                        draining = True
                        table.append({"ev": "drain"})
                        drain_deadline = (time.monotonic()
                                          + config.drain_timeout_s)
                    if not workers and table.active_leases() == 0:
                        break
                    if time.monotonic() >= drain_deadline:
                        break
                time.sleep(config.poll_s)
            # final harvest: completions that landed while we were leaving
            events, offset = table.read_events(offset)
            for event in events:
                ingest(event)
        finally:
            for info in workers:
                proc = info["proc"]
                if proc.poll() is None:
                    proc.terminate()
            deadline = time.monotonic() + 5.0
            for info in workers:
                proc = info["proc"]
                try:
                    proc.wait(timeout=max(0.1, deadline - time.monotonic()))
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
                try:
                    info["log"].close()
                except OSError:
                    pass
            for worker, points in self.stats.per_worker.items():
                self._gauge("fabric_worker_points", points,
                            "Points completed, per fabric worker.",
                            worker=worker)
            try:
                _write_json_atomic(
                    Path(config.queue_dir) / STATE_FILE,
                    {
                        "completed": len(completed),
                        "quarantined": sorted(failed),
                        "stats": {
                            k: v for k, v in vars(self.stats).items()
                            if k != "per_worker"
                        },
                        "per_worker": self.stats.per_worker,
                        "updated": time.time(),
                    },
                )
            except OSError:
                pass
        return self.stats


# ----------------------------------------------------------------------
# invariant checker
# ----------------------------------------------------------------------
@dataclass
class FabricAudit:
    """Replay of a queue's event log against its results on disk."""

    total: int
    done: int
    quarantined: int
    duplicates: int
    expired: int
    active_leases: int
    problems: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def to_dict(self) -> dict:
        """The machine-readable verdict (``repro fabric audit --json``)."""
        return {
            "ok": self.ok,
            "total": self.total,
            "done": self.done,
            "quarantined": self.quarantined,
            "duplicates": self.duplicates,
            "expired": self.expired,
            "active_leases": self.active_leases,
            "problems": list(self.problems),
        }

    def summary(self) -> str:
        lines = [
            f"fabric audit: {self.total} point(s), {self.done} done, "
            f"{self.quarantined} quarantined",
            f"  churn: {self.expired} lease expiries, "
            f"{self.duplicates} duplicate completion(s) (deduplicated)",
        ]
        if self.problems:
            lines.append(f"  VIOLATIONS ({len(self.problems)}):")
            lines.extend(f"    - {problem}" for problem in self.problems)
        else:
            lines.append("  invariants hold: every point done or "
                         "quarantined exactly once, no live leases, "
                         "every result loadable")
        return "\n".join(lines)


def audit_queue(queue_dir: str | Path,
                expect_complete: bool = True) -> FabricAudit:
    """Prove the fabric's invariants for one queue directory.

    Replays ``events.jsonl`` and checks, per seeded point: it is done or
    quarantined (never lost), it is counted at most once (duplicates are
    tolerated but tallied), its result is actually loadable from the
    results cache, and no lease survived the sweep.  Raises
    :class:`QueueError` when the directory is not a queue.
    """
    table = LeaseTable(queue_dir)
    meta = table.load()
    keys = list(meta["keys"])
    events, _ = table.read_events(0)
    seeds = 0
    done_counts: dict[str, int] = {}
    quarantined: set[str] = set()
    expired = 0
    for event in events:
        kind = event.get("ev")
        if kind == "seed":
            seeds += 1
        elif kind == "done":
            done_counts[event["key"]] = done_counts.get(event["key"], 0) + 1
        elif kind == "quarantine":
            quarantined.add(event["key"])
        elif kind == "expired":
            expired += 1
    problems: list[str] = []
    if seeds != 1:
        problems.append(f"queue seeded {seeds} times (expected exactly once)")
    results_dir = meta.get("results_dir")
    for key in keys:
        is_done = key in done_counts
        if not is_done and key not in quarantined and expect_complete:
            problems.append(f"point {key[:12]} lost: neither done nor "
                            f"quarantined")
        if is_done and results_dir:
            path = os.path.join(results_dir, f"{key}.pkl")
            try:
                with open(path, "rb") as handle:
                    pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ValueError):
                problems.append(f"point {key[:12]} done but its result is "
                                f"missing or unreadable in {results_dir}")
    foreign = set(done_counts) - set(keys)
    if foreign:
        problems.append(f"{len(foreign)} completion(s) for keys never seeded")
    active = table.active_leases()
    if active and expect_complete:
        problems.append(f"{active} lease(s) still active after completion")
    return FabricAudit(
        total=len(keys),
        done=sum(1 for key in keys if key in done_counts),
        quarantined=len(quarantined & set(keys)),
        duplicates=sum(count - 1 for count in done_counts.values()
                       if count > 1),
        expired=expired,
        active_leases=active,
        problems=problems,
    )


__all__ = [
    "ChaosPlan",
    "FABRIC_COUNTER_HELP",
    "FABRIC_GAUGE_HELP",
    "FabricAudit",
    "FabricConfig",
    "FabricCoordinator",
    "FabricStats",
    "LeaseTable",
    "QueueError",
    "audit_queue",
    "chaos_coin",
    "worker_main",
]
