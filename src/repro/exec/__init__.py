"""Sweep-execution engine: parallel, cached evaluation of simulation specs.

Every paper figure and ablation is a sweep of independent
:class:`~repro.noc.spec.SimulationSpec` points.  This package executes
such sweeps fast and reproducibly:

- :class:`~repro.exec.runner.SweepRunner` -- fan specs out over a process
  pool (serial fallback) with deterministic per-point seeding, so parallel
  and serial runs are bit-identical;
- :class:`~repro.exec.cache.ResultCache` -- content-addressed result
  store (memory + optional disk) with hit/miss counters;
- :class:`~repro.exec.runner.SweepReport` -- per-point timing, cache
  statistics, failure records and a human-readable summary;
- :class:`~repro.exec.runner.FailedPoint` -- a point that exhausted its
  retries (error / timeout / worker crash / quarantine), with the captured
  traceback and, for fabric sweeps, the per-attempt history;
- :mod:`repro.exec.fabric` -- a durable, lease-based work queue
  (:class:`~repro.exec.fabric.FabricConfig` +
  :class:`~repro.exec.fabric.FabricCoordinator`, ``repro worker``) that
  decouples scheduling from execution so sweeps survive worker churn,
  with :func:`~repro.exec.fabric.audit_queue` proving the invariants.

See ``docs/execution.md`` for cache-key semantics and worker guidance,
and ``docs/robustness.md`` for the failure-isolation model and the
fabric's lease lifecycle.
"""

from repro.exec.cache import CacheClaim, CacheStats, ResultCache
from repro.exec.fabric import (
    FabricAudit,
    FabricConfig,
    FabricStats,
    QueueError,
    audit_queue,
    worker_main,
)
from repro.exec.runner import FailedPoint, SweepPoint, SweepReport, SweepRunner

__all__ = [
    "CacheClaim",
    "CacheStats",
    "FabricAudit",
    "FabricConfig",
    "FabricStats",
    "FailedPoint",
    "QueueError",
    "ResultCache",
    "SweepPoint",
    "SweepReport",
    "SweepRunner",
    "audit_queue",
    "worker_main",
]
