"""Sweep-execution engine: parallel, cached evaluation of simulation specs.

Every paper figure and ablation is a sweep of independent
:class:`~repro.noc.spec.SimulationSpec` points.  This package executes
such sweeps fast and reproducibly:

- :class:`~repro.exec.runner.SweepRunner` -- fan specs out over a process
  pool (serial fallback) with deterministic per-point seeding, so parallel
  and serial runs are bit-identical;
- :class:`~repro.exec.cache.ResultCache` -- content-addressed result
  store (memory + optional disk) with hit/miss counters;
- :class:`~repro.exec.runner.SweepReport` -- per-point timing, cache
  statistics, failure records and a human-readable summary;
- :class:`~repro.exec.runner.FailedPoint` -- a point that exhausted its
  retries (error / timeout / worker crash), with the captured traceback.

See ``docs/execution.md`` for cache-key semantics and worker guidance,
and ``docs/robustness.md`` for the failure-isolation model.
"""

from repro.exec.cache import CacheStats, ResultCache
from repro.exec.runner import FailedPoint, SweepPoint, SweepReport, SweepRunner

__all__ = [
    "CacheStats",
    "FailedPoint",
    "ResultCache",
    "SweepPoint",
    "SweepReport",
    "SweepRunner",
]
