"""Content-addressed result cache for simulation sweeps.

Two layers: an in-memory dict for the lifetime of a process, and an
optional on-disk directory of pickle files so repeated sweeps across
processes (CLI invocations, benchmark re-runs) never re-simulate a point.
Keys are the canonical content hashes produced by
:func:`repro.noc.spec.stable_key`, so any change to a topology, traffic
spec, ``NoCConfig`` field, routing algorithm or simulation window yields a
different key -- a cache hit is a guarantee of an identical run.

The cache never evicts silently mid-sweep; :meth:`ResultCache.clear`
empties the memory layer explicitly.  A *corrupt* on-disk entry (torn
write, truncation, foreign bytes) is counted, deleted, and treated as a
miss -- the sweep re-simulates the point instead of raising mid-run.
Hit/miss/corruption/byte counters live on :class:`CacheStats`
(``cache.counters`` accumulates in place, :meth:`ResultCache.stats`
returns a frozen snapshot) and feed the sweep observability report and
the telemetry metrics registry.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import threading
import time
from dataclasses import dataclass, field

#: Gauge names exported by :meth:`ResultCache.export_metrics`,
#: pre-registered on instrumented sweeps so a hit-free run still renders
#: the full series (zeros), keeping snapshot merges shape-stable.
CACHE_GAUGE_HELP = {
    "result_cache_hits": "Result-cache lookups served from cache.",
    "result_cache_misses": "Result-cache lookups that missed.",
    "result_cache_stores": "Results written to the cache.",
    "result_cache_corrupt_entries": "Unreadable on-disk entries dropped "
                                    "and re-run.",
    "result_cache_bytes_read": "Pickle bytes served from disk.",
    "result_cache_bytes_written": "Pickle bytes persisted to disk.",
    "result_cache_hit_rate": "Fraction of lookups served from cache.",
}


@dataclass
class CacheStats:
    """Hit/miss/byte counters for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    corrupt: int = 0  # unreadable on-disk entries (counted, deleted, re-run)
    bytes_read: int = 0  # pickle bytes served from disk
    bytes_written: int = 0  # pickle bytes persisted to disk

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            stores=self.stores,
            memory_hits=self.memory_hits,
            disk_hits=self.disk_hits,
            corrupt=self.corrupt,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
        )

    def as_dict(self) -> dict:
        """A JSON-ready rendering, including the derived hit rate."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "corrupt": self.corrupt,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "hit_rate": round(self.hit_rate, 6),
        }


#: A claim file untouched for this long is presumed orphaned (its holder
#: crashed before releasing) and may be taken over by the next claimant.
DEFAULT_CLAIM_TTL_S = 600.0


@dataclass
class CacheClaim:
    """The exclusive right to compute one cache key.

    Returned by :meth:`ResultCache.get_or_begin` to exactly one claimant
    per key at a time, so request coalescing can never race two writers
    for the same slot.  The holder must end the claim exactly one way:

    - :meth:`complete` -- publish the computed value and release, or
    - :meth:`release` -- release without writing (the value was stored
      through another path, e.g. a sweep runner that writes the cache
      itself), or
    - :meth:`abandon` -- the computation failed; release so another
      claimant may retry.

    All three are idempotent after the first call.
    """

    cache: "ResultCache"
    key: str
    _ended: bool = field(default=False, repr=False)

    def complete(self, value) -> None:
        """Publish ``value`` under the claimed key and release the claim."""
        self.cache.put(self.key, value)
        self.release()

    def release(self) -> None:
        """End the claim without writing a value."""
        if self._ended:
            return
        self._ended = True
        self.cache._release_claim(self.key)

    def abandon(self) -> None:
        """End a failed claim so another claimant may retry the key."""
        self.release()


@dataclass
class ResultCache:
    """In-memory + optional on-disk store of simulation results by key.

    ``directory=None`` keeps the cache purely in memory.  With a directory,
    entries are pickled to ``<directory>/<key>.pkl`` (written atomically via
    a temp file + rename) and disk hits are promoted into memory.
    """

    directory: str | None = None
    counters: CacheStats = field(default_factory=CacheStats)
    _memory: dict = field(default_factory=dict, repr=False)
    _claims: set = field(default_factory=set, repr=False, compare=False)
    _claims_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)

    def stats(self) -> CacheStats:
        """A point-in-time snapshot of the hit/miss/bytes counters."""
        return self.counters.snapshot()

    def export_metrics(self, registry) -> CacheStats:
        """Set the ``result_cache_*`` gauges on a metrics registry.

        Returns the :class:`CacheStats` snapshot the gauges were read
        from, so callers (the sweep runner, the watch exporter) reuse
        one consistent reading instead of sampling twice.
        """
        stats = self.stats()
        registry.preregister(gauges=CACHE_GAUGE_HELP)
        gauge = registry.gauge
        gauge("result_cache_hits").set(stats.hits)
        gauge("result_cache_misses").set(stats.misses)
        gauge("result_cache_stores").set(stats.stores)
        gauge("result_cache_corrupt_entries").set(stats.corrupt)
        gauge("result_cache_bytes_read").set(stats.bytes_read)
        gauge("result_cache_bytes_written").set(stats.bytes_written)
        gauge("result_cache_hit_rate").set(round(stats.hit_rate, 6))
        return stats

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"{key}.pkl")

    def get(self, key: str):
        """The cached value for ``key``, or ``None`` on a miss.

        A corrupt disk entry is *not* an error: it is counted on
        ``counters.corrupt``, deleted so the slot can be rewritten, and
        reported as a miss -- the caller simply re-simulates the point.
        """
        if key in self._memory:
            self.counters.hits += 1
            self.counters.memory_hits += 1
            return self._memory[key]
        if self.directory is not None:
            path = self._path(key)
            if os.path.exists(path):
                try:
                    with open(path, "rb") as handle:
                        blob = handle.read()
                    value = pickle.loads(blob)
                except Exception:
                    # torn write / truncation / foreign bytes: a pickle of
                    # hostile provenance can raise nearly anything, so the
                    # broad except is deliberate -- count, drop, re-run
                    self.counters.corrupt += 1
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                else:
                    self._memory[key] = value
                    self.counters.hits += 1
                    self.counters.disk_hits += 1
                    self.counters.bytes_read += len(blob)
                    return value
        self.counters.misses += 1
        return None

    def put(self, key: str, value) -> None:
        """Store a value under ``key`` in every layer.

        The disk write is *crash-atomic*: the pickle is written to a temp
        file in the same directory, flushed and fsynced, then published
        with ``os.replace``.  A writer killed (even SIGKILLed) at any
        instant leaves either the previous entry or the complete new one
        -- never a truncated pickle for the corrupt-entry counter to
        find.  An unwritable disk degrades to memory-only (the sweep
        continues); non-I/O errors (an unpicklable value) propagate.
        """
        self._memory[key] = value
        self.counters.stores += 1
        if self.directory is not None:
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle)
                    handle.flush()
                    os.fsync(handle.fileno())
                self.counters.bytes_written += os.path.getsize(tmp)
                os.replace(tmp, self._path(key))
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            except BaseException:
                # e.g. an unpicklable value: don't leak the temp file,
                # but do surface the caller's bug
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    # ------------------------------------------------------------------
    # JSON side-records (sweep checkpoint manifests): human-readable
    # metadata living next to the pickled results, outside the hit/miss
    # accounting so manifests never skew sweep observability
    # ------------------------------------------------------------------
    def get_json(self, name: str):
        """A JSON side-record by name, or ``None`` when absent/unreadable."""
        memo_key = f"__json__:{name}"
        if memo_key in self._memory:
            return self._memory[memo_key]
        if self.directory is not None:
            path = os.path.join(self.directory, f"{name}.json")
            if os.path.exists(path):
                try:
                    with open(path, encoding="utf-8") as handle:
                        value = json.load(handle)
                except (OSError, ValueError):
                    return None  # torn write: treat as absent
                self._memory[memo_key] = value
                return value
        return None

    def put_json(self, name: str, value) -> None:
        """Store a JSON side-record (crash-atomically when disk-backed,
        same temp-file + fsync + ``os.replace`` discipline as :meth:`put`)."""
        self._memory[f"__json__:{name}"] = value
        if self.directory is not None:
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(value, handle, indent=1, sort_keys=True)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, os.path.join(self.directory, f"{name}.json"))
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    # ------------------------------------------------------------------
    # claims (singleflight): at most one computer per key at a time
    # ------------------------------------------------------------------
    def _claim_path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"{key}.claim")

    def get_or_begin(
        self, key: str, *, claim_ttl_s: float = DEFAULT_CLAIM_TTL_S
    ) -> tuple:
        """Look up ``key``; on a miss, try to claim the right to compute it.

        Three-way return contract:

        - ``(value, None)`` -- cache hit, nothing to compute;
        - ``(None, claim)`` -- miss and *this caller* won the
          :class:`CacheClaim`: compute the value, then
          ``claim.complete(value)`` (or :meth:`CacheClaim.abandon` on
          failure);
        - ``(None, None)`` -- miss but another claimant (thread or
          process) already holds the claim: poll :meth:`get` / re-call
          ``get_or_begin`` until the value lands or the claim clears.

        Disk-backed caches arbitrate across processes with an
        ``O_CREAT | O_EXCL`` claim file (the same primitive as the sweep
        fabric's leases); memory-only caches arbitrate across threads
        with an internal set.  A claim file older than ``claim_ttl_s``
        is presumed orphaned by a crashed holder and is taken over.
        """
        value = self.get(key)
        if value is not None:
            return value, None
        if self.directory is None:
            with self._claims_lock:
                if key in self._claims:
                    return None, None
                self._claims.add(key)
            claim = CacheClaim(self, key)
        else:
            claim = self._begin_disk_claim(key, claim_ttl_s)
            if claim is None:
                return None, None
        # close the miss -> claim window: a competitor may have completed
        # (and released) between our miss and our claim win
        value = self.get(key)
        if value is not None:
            claim.release()
            return value, None
        return None, claim

    def _begin_disk_claim(self, key: str, claim_ttl_s: float):
        path = self._claim_path(key)
        for attempt in (0, 1):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                try:
                    age = time.time() - os.path.getmtime(path)
                except OSError:
                    continue  # released between open and stat: retry once
                if attempt == 0 and age > claim_ttl_s:
                    # orphaned claim (holder crashed): take it over
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                    continue
                return None
            except OSError:
                return None  # unwritable directory: nobody claims
            try:
                os.write(fd, json.dumps(
                    {"pid": os.getpid(), "ts": time.time()}
                ).encode("utf-8"))
            finally:
                os.close(fd)
            with self._claims_lock:
                self._claims.add(key)
            return CacheClaim(self, key)
        return None

    def _release_claim(self, key: str) -> None:
        with self._claims_lock:
            self._claims.discard(key)
        if self.directory is not None:
            try:
                os.unlink(self._claim_path(key))
            except OSError:
                pass

    def has_claim(self, key: str) -> bool:
        """True while some claimant (any thread/process) holds ``key``."""
        with self._claims_lock:
            if key in self._claims:
                return True
        return (self.directory is not None
                and os.path.exists(self._claim_path(key)))

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self.directory is not None and os.path.exists(self._path(key))

    def __len__(self) -> int:
        return len(self._memory)

    def clear(self) -> None:
        """Drop the in-memory layer (on-disk entries are kept)."""
        self._memory.clear()


__all__ = [
    "CACHE_GAUGE_HELP",
    "CacheClaim",
    "CacheStats",
    "DEFAULT_CLAIM_TTL_S",
    "ResultCache",
]
