"""Parallel sweep execution over simulation specs.

:class:`SweepRunner` takes a list of :class:`~repro.noc.spec.SimulationSpec`
values -- an injection-rate x pattern x sprint-level grid, a PARSEC
scheme comparison, any batch of independent runs -- and executes them:

1. **cache lookup** -- points whose content hash is already in the
   :class:`~repro.exec.cache.ResultCache` are returned without simulating;
2. **dedup** -- identical specs appearing more than once in a sweep are
   simulated exactly once;
3. **fan-out** -- remaining points run on a ``ProcessPoolExecutor`` when
   ``workers > 1`` (with a transparent serial fallback when the pool is
   unavailable, e.g. on restricted platforms), or serially otherwise.

Because a spec carries its own traffic seed and every worker rebuilds the
generator from the spec, parallel and serial execution produce
*bit-identical* :class:`~repro.noc.sim.SimulationResult` values -- the
ordering of the returned points always matches the order of the input
specs, never completion order.

The fan-out is failure-isolated: each point is submitted as its own
future, so one point raising, hanging past ``point_timeout``, or killing
its worker outright (``BrokenProcessPool``) costs only that point.
Survivors are returned as usual while the casualties come back as
:class:`FailedPoint` records (with the worker's traceback) on
``SweepReport.failures``; ``max_retries`` re-attempts flaky points with
exponential backoff.  Every completed point is written to the cache the
moment it finishes, so an interrupted sweep resumes from its checkpoint:
re-running the same spec list against the same cache re-simulates only
the unfinished points.
"""

from __future__ import annotations

import inspect
import os
import signal
import threading
import time
import traceback as _tb
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.exec.cache import CacheStats, ResultCache
from repro.noc.sim import SimulationResult, simulate
from repro.noc.spec import SimulationSpec, stable_key
from repro.telemetry import Telemetry, TelemetryContext
from repro.telemetry import active as _active_telemetry
from repro.telemetry.ledger import Ledger, RunRecord, result_headline

#: Environment hook for fault-injecting the harness itself (CI smoke tests
#: and the runner's own test suite).  Recipes, applied per point with a
#: deterministic coin derived from the spec's content hash:
#:
#:   ``raise[:RATE]``               -- raise inside the worker
#:   ``exit[:RATE]``                -- kill the worker process (os._exit)
#:   ``hang[:RATE[:SECONDS]]``      -- sleep, triggering the point timeout
#:   ``exit-once:RATE:DIR``         -- kill the worker the *first* time each
#:                                     point runs (marker files in DIR), so
#:                                     a retry succeeds
CHAOS_ENV = "REPRO_SWEEP_CHAOS"


def _maybe_inject_chaos(spec: SimulationSpec) -> None:
    recipe = os.environ.get(CHAOS_ENV)
    if not recipe:
        return
    parts = recipe.split(":")
    mode = parts[0]
    rate = float(parts[1]) if len(parts) > 1 else 1.0
    coin = int(spec.cache_key()[:8], 16) / float(0xFFFFFFFF)
    if coin >= rate:
        return
    if mode == "raise":
        raise RuntimeError("chaos: injected simulation fault")
    if mode == "hang":
        time.sleep(float(parts[2]) if len(parts) > 2 else 3600.0)
    elif mode == "exit":
        os._exit(17)
    elif mode == "exit-once":
        marker = os.path.join(parts[2], spec.cache_key()[:16] + ".chaos")
        try:
            os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return  # this point already crashed once: let the retry succeed
        os._exit(17)


def _simulate_guarded(spec: SimulationSpec, tel_ctx: TelemetryContext | None = None):
    """Worker entry point: run one spec, never let an exception escape.

    Returns ``("ok", result, seconds, payload)`` or ``("err", message,
    traceback, seconds, payload)`` -- the scheduler turns the latter into a
    retry or a :class:`FailedPoint` with the worker-side traceback attached.
    ``payload`` is the worker's drained :meth:`Telemetry.payload` (its spans
    and metrics, shipped back for the parent to absorb), or ``None`` when
    the sweep runs uninstrumented.
    """
    tel = Telemetry.from_context(tel_ctx)
    start = time.perf_counter()
    try:
        _maybe_inject_chaos(spec)
        result = simulate(spec, telemetry=tel)
    except Exception as exc:
        elapsed = time.perf_counter() - start
        payload = tel.payload() if tel is not None else None
        return ("err", f"{type(exc).__name__}: {exc}", _tb.format_exc(),
                elapsed, payload)
    elapsed = time.perf_counter() - start
    payload = tel.payload() if tel is not None else None
    return ("ok", result, elapsed, payload)


def _simulate_timed(spec: SimulationSpec) -> tuple[SimulationResult, float]:
    """Back-compat wrapper: run one spec and report its wall-clock time."""
    status = _simulate_guarded(spec)
    if status[0] == "ok":
        return status[1], status[2]
    raise RuntimeError(status[1])


#: Sweep-level metric names pre-registered at the start of every
#: instrumented run, so a clean sweep still renders them (as zeros) in the
#: Prometheus dump instead of omitting them.
_SWEEP_COUNTER_HELP = {
    "sweep_cache_hits_total": "Points served from the result cache.",
    "sweep_cache_misses_total": "Points that had to be simulated.",
    "sweep_simulated_total": "Simulations that completed successfully.",
    "sweep_retries_total": "Point attempts re-scheduled after a failure.",
    "sweep_errors_total": "Point attempts that raised inside the worker.",
    "sweep_timeouts_total": "Point attempts that exceeded point_timeout.",
    "sweep_crashes_total": "Point attempts that killed their worker process.",
    "sweep_failures_total": "Points abandoned after exhausting retries.",
}

#: FailedPoint.kind -> per-attempt failure counter.
_KIND_COUNTER = {
    "error": "sweep_errors_total",
    "timeout": "sweep_timeouts_total",
    "crash": "sweep_crashes_total",
}


def _progress_accepts_outcome(progress) -> bool:
    """True when a progress callback takes the 4th ``outcome`` argument.

    Legacy callbacks are ``progress(done, total, point)``; new-style ones
    add ``outcome`` and are additionally invoked for failed points.  The
    arity sniff keeps every pre-existing 3-argument callback working.
    """
    try:
        signature = inspect.signature(progress)
    except (TypeError, ValueError):
        return False
    positional = 0
    for param in signature.parameters.values():
        if param.kind in (param.POSITIONAL_ONLY, param.POSITIONAL_OR_KEYWORD):
            positional += 1
        elif param.kind == param.VAR_POSITIONAL:
            return True
    return positional >= 4


def _ignore_sigint() -> None:
    """Pool-worker initializer: the parent owns Ctrl-C.

    A terminal SIGINT goes to the whole foreground process group; if the
    pool children raised ``KeyboardInterrupt`` mid-simulation the graceful
    drain (finish in-flight points, checkpoint, resume hint) would race a
    pile of broken futures.  Workers ignore the signal; the parent decides.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass  # not the main thread of the worker (exotic start methods)


def _kill_pool(pool) -> None:
    """Tear a process pool down *now*, including hung workers.

    ``shutdown(cancel_futures=True)`` only cancels queued work; a worker
    stuck inside a simulation must be terminated out from under it first.
    The shutdown then waits: with every worker dead the join is immediate,
    and leaving the manager thread running would race the interpreter's
    atexit hook (spurious ``Bad file descriptor`` noise at exit).
    """
    processes = getattr(pool, "_processes", None)
    for proc in list(processes.values()) if processes else []:
        try:
            proc.terminate()
        except (OSError, ValueError, AttributeError):
            pass
    pool.shutdown(wait=True, cancel_futures=True)


@dataclass
class SweepPoint:
    """One executed (or cache-served) point of a sweep."""

    index: int
    spec: SimulationSpec
    result: SimulationResult
    wall_time_s: float
    cached: bool

    @property
    def key(self) -> str:
        return self.spec.cache_key()


@dataclass
class FailedPoint:
    """One sweep point that produced no result despite every retry."""

    index: int
    spec: SimulationSpec
    kind: str  # "error" | "timeout" | "crash" | "quarantined"
    error: str
    traceback: str | None
    attempts: int
    #: Per-attempt event trail (fabric sweeps): dicts with at least an
    #: ``event`` ("claim"/"error"/"expired"/...) and a ``worker``, so a
    #: quarantined point is diagnosable from the terminal.
    history: tuple = ()

    @property
    def key(self) -> str:
        return self.spec.cache_key()

    def describe(self) -> str:
        """The one-line summary the CLI prints per failure."""
        return (
            f"point {self.index} [{self.kind}] after {self.attempts} "
            f"attempt(s): {self.error}"
        )

    def history_lines(self) -> list[str]:
        """One line per recorded attempt event (empty for pool sweeps)."""
        lines = []
        for entry in self.history:
            event = entry.get("event", "?")
            worker = entry.get("worker", "?")
            if event == "claim":
                lines.append(f"leased to {worker} "
                             f"(attempt {entry.get('attempt', '?')})")
            elif event == "expired":
                lines.append(f"lease expired on {worker} "
                             f"(worker died or stalled)")
            elif event == "error":
                lines.append(f"{worker} raised: {entry.get('error')}")
            elif event == "abandon":
                lines.append(f"{worker} abandoned the point (fenced out)")
            else:
                lines.append(f"{event} on {worker}")
        return lines


@dataclass
class SweepReport:
    """Results plus observability for one :meth:`SweepRunner.run` call."""

    points: list[SweepPoint]
    wall_time_s: float
    workers: int
    parallel: bool
    cache_hits: int
    cache_misses: int
    simulated: int
    deduplicated: int
    cache_stats: CacheStats | None = field(default=None, repr=False)
    failures: list[FailedPoint] = field(default_factory=list)
    resumed: int = 0  # cache hits recognized as a resumed earlier sweep
    run_record: RunRecord | None = field(default=None, repr=False)
    interrupted: bool = False  # drained early on SIGINT/SIGTERM
    fabric: object | None = field(default=None, repr=False)  # FabricStats

    @property
    def results(self) -> list[SimulationResult]:
        """Simulation results of the surviving points, in input-spec order."""
        return [point.result for point in self.points]

    @property
    def total_points(self) -> int:
        return len(self.points) + len(self.failures)

    @property
    def ok(self) -> bool:
        """True when every point produced a result."""
        return not self.failures

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total_points if self.total_points else 0.0

    @property
    def sim_time_s(self) -> float:
        """Summed per-point simulation time (> wall time when parallel)."""
        return sum(p.wall_time_s for p in self.points if not p.cached)

    def failure_lines(self) -> list[str]:
        """One line per failed point, for logs and the CLI."""
        return [failure.describe() for failure in self.failures]

    def summary(self) -> str:
        """One-paragraph human-readable sweep report."""
        mode = f"{self.workers} workers" if self.parallel else "serial"
        lines = [
            f"sweep: {self.total_points} points in {self.wall_time_s:.2f}s ({mode})",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({100.0 * self.hit_rate:.0f}% hit rate), "
            f"{self.simulated} simulated, {self.deduplicated} deduplicated",
        ]
        if self.resumed:
            lines.append(f"resumed: {self.resumed} points from an earlier run")
        if self.fabric is not None:
            lines.append(self.fabric.summary())
        if self.interrupted:
            finished = len(self.points) + len(self.failures)
            lines.append(
                f"INTERRUPTED: drained after {finished} point(s); "
                f"checkpoint written -- re-run against the same cache to "
                f"resume the remainder"
            )
        timed = [p.wall_time_s for p in self.points if not p.cached]
        if timed:
            lines.append(
                f"per-point sim time: mean {sum(timed) / len(timed):.3f}s, "
                f"max {max(timed):.3f}s, total {sum(timed):.2f}s"
            )
        if self.failures:
            lines.append(f"FAILED: {len(self.failures)} of {self.total_points} points")
            lines.extend("  " + line for line in self.failure_lines())
        return "\n".join(lines)


class SweepRunner:
    """Execute batches of independent simulation specs, cached and parallel.

    ``workers=1`` (the default) runs serially; ``workers>1`` fans out over a
    process pool, one future per point.  ``cache=None`` gives the runner a
    private in-memory cache; pass a shared :class:`ResultCache` to reuse
    results across runners, benchmarks and CLI invocations.  ``progress``
    (if given) is called the moment each point completes -- cache hits
    first (in input order), simulated points in completion order.  A
    callback accepting four positional arguments is called as
    ``progress(done, total, point, outcome)`` with ``outcome`` one of
    ``"cached"``, ``"simulated"`` or ``"failed"`` (``point`` is a
    :class:`FailedPoint` for failures), so a progress bar can render
    failures as they happen.  A legacy three-argument callback keeps the
    old contract: failed points advance ``done`` without a callback.

    ``telemetry`` (a :class:`~repro.telemetry.Telemetry` bundle) adds a
    ``sweep`` span with one child ``point`` span per unique simulated spec,
    absorbs each worker's spans/metrics under its point span, and fills the
    ``sweep_*`` counters plus the ``sweep_point_sim_seconds`` histogram and
    ``result_cache_*`` gauges.  ``None`` (the default) costs nothing.

    Failure policy: a point that raises is retried up to ``max_retries``
    times with exponential backoff (``retry_backoff_s`` doubling per
    attempt); one that runs past ``point_timeout`` seconds or kills its
    worker is isolated, charged an attempt and retried likewise.  Points
    that exhaust their attempts are reported on ``SweepReport.failures``
    instead of poisoning the sweep.  Serial runs cannot preempt a hung
    simulation, so ``point_timeout`` is only enforced when ``workers > 1``.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        progress: Callable[[int, int, SweepPoint], None] | None = None,
        max_retries: int = 0,
        point_timeout: float | None = None,
        retry_backoff_s: float = 0.05,
        telemetry: Telemetry | None = None,
        ledger: Ledger | None = None,
        ledger_label: str | None = None,
        ledger_kind: str = "sweep",
        fabric=None,
    ):
        # fabric mode (a FabricConfig): execution is delegated to the
        # lease-based work queue, whose local worker count lives on the
        # config -- `workers=0` is then legal (external workers only)
        if fabric is not None:
            if workers < 0:
                raise ValueError("workers must be >= 0 in fabric mode")
        elif workers < 1:
            raise ValueError("workers must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if point_timeout is not None and point_timeout <= 0:
            raise ValueError("point_timeout must be positive (or None)")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        self.workers = workers
        self.cache = cache if cache is not None else ResultCache()
        self.progress = progress
        self._progress_outcome = (
            progress is not None and _progress_accepts_outcome(progress)
        )
        self.max_retries = max_retries
        self.point_timeout = point_timeout
        self.retry_backoff_s = retry_backoff_s
        self.telemetry = telemetry
        # every run leaves one RunRecord in the ledger (None: the default
        # env-configured ledger; Ledger.disabled() opts a runner out, e.g.
        # a nested runner whose owner records the enclosing run instead)
        self.ledger = ledger if ledger is not None else Ledger()
        self.ledger_label = ledger_label
        # what kind the RunRecord is filed under -- "sweep" for direct
        # runs, "service" when the HTTP front door executes the batch
        self.ledger_kind = ledger_kind
        self.fabric = fabric
        self._stop = threading.Event()

    def request_stop(self) -> None:
        """Ask the in-flight :meth:`run` to drain gracefully.

        Safe to call from a signal handler or another thread: no more
        points are dispatched, in-flight points are finished and
        checkpointed, and the returned report carries
        ``interrupted=True``.  A no-op when nothing is running.
        """
        self._stop.set()

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[SimulationSpec]) -> SweepReport:
        """Run every spec, returning surviving points in input order."""
        start = time.perf_counter()
        cpu_start = time.process_time()
        self._stop.clear()
        specs = list(specs)
        total = len(specs)
        keys = [spec.cache_key() for spec in specs]

        # the checkpoint manifest: a sweep is identified by the content
        # hashes of its points, so re-running the same spec list against
        # the same cache is recognized as a resume
        manifest_name = "sweep-" + stable_key(tuple(keys))[:32]
        prior_manifest = self.cache.get_json(manifest_name)
        self.cache.put_json(manifest_name, {"total": total, "keys": keys})

        tel = _active_telemetry(self.telemetry)
        tracer = tel.tracer if tel is not None else None
        sweep_span = None
        if tel is not None:
            tel.metrics.preregister(_SWEEP_COUNTER_HELP)
            tel.metrics.histogram(
                "sweep_point_sim_seconds",
                "Per-point simulation wall time (successful attempts).",
            )
            sweep_span = tracer.span(
                "sweep", points=total, workers=self.workers,
                max_retries=self.max_retries,
            )
        point_spans: dict[str, object] = {}

        def point_span(key: str):
            """The (lazily opened) span covering every attempt of a point."""
            span = point_spans.get(key)
            if span is None:
                span = tracer.span("point", parent=sweep_span.id, key=key[:12])
                point_spans[key] = span
            return span

        def worker_ctx(key: str, attempt: int) -> TelemetryContext | None:
            if tel is None:
                return None
            # attempt-qualified prefix: each retry's worker restarts its
            # span serial at 1, so the prefix must differ per attempt
            return tel.worker_context(f"{point_span(key).id}.a{attempt}.")

        def absorb(key: str, payload) -> None:
            if tel is not None and payload:
                tel.absorb(payload, point_span(key).id)

        def notify(done: int, total: int, point, outcome: str) -> None:
            if self.progress is None:
                return
            if self._progress_outcome:
                self.progress(done, total, point, outcome)
            elif outcome != "failed":
                self.progress(done, total, point)

        points: dict[int, SweepPoint] = {}
        failures: dict[int, FailedPoint] = {}
        pending: dict[str, list[int]] = {}  # key -> input indices needing it
        hits = 0
        done = 0
        for index, (spec, key) in enumerate(zip(specs, keys)):
            cached = self.cache.get(key)
            if cached is not None:
                point = SweepPoint(index, spec, cached, 0.0, cached=True)
                points[index] = point
                hits += 1
                done += 1
                notify(done, total, point, "cached")
            else:
                pending.setdefault(key, []).append(index)

        unique = [(key, specs[indices[0]]) for key, indices in pending.items()]
        deduplicated = sum(len(ix) - 1 for ix in pending.values())
        succeeded: set[str] = set()

        def complete(key: str, result: SimulationResult, elapsed: float,
                     payload=None) -> None:
            nonlocal done
            self.cache.put(key, result)  # checkpoint: resumable immediately
            succeeded.add(key)
            absorb(key, payload)
            if tel is not None:
                tel.metrics.counter("sweep_simulated_total").inc()
                tel.metrics.histogram("sweep_point_sim_seconds").observe(elapsed)
                span = point_spans.pop(key, None)
                if span is not None:
                    span.annotate(outcome="simulated",
                                  sim_seconds=round(elapsed, 6))
                    span.end()
            for extra, index in enumerate(pending[key]):
                point = SweepPoint(
                    index,
                    specs[index],
                    result,
                    elapsed if extra == 0 else 0.0,
                    cached=extra > 0,
                )
                points[index] = point
                done += 1
                notify(done, total, point, "cached" if extra else "simulated")

        def fail(key: str, kind: str, error: str, tb, attempts: int,
                 payload=None, history=()) -> None:
            nonlocal done
            absorb(key, payload)
            if tel is not None:
                span = point_spans.pop(key, None)
                if span is not None:
                    span.annotate(outcome="failed", kind=kind,
                                  attempts=attempts)
                    span.end()
            for index in pending[key]:
                failed = FailedPoint(
                    index, specs[index], kind, error, tb, attempts,
                    history=tuple(history),
                )
                failures[index] = failed
                done += 1
                if tel is not None:
                    tel.metrics.counter("sweep_failures_total").inc()
                notify(done, total, failed, "failed")

        def attempt_failed(kind: str, retrying: bool) -> None:
            """Count one failed attempt (and the retry it earned, if any)."""
            if tel is None:
                return
            tel.metrics.counter(_KIND_COUNTER[kind]).inc()
            if retrying:
                tel.metrics.counter("sweep_retries_total").inc()

        fabric_stats = None
        if self.fabric is not None and unique:
            parallel = True  # separate worker processes, even when external
            fabric_stats = self._run_fabric(unique, complete, fail, tel,
                                            stable_key(tuple(keys)))
        else:
            parallel = self.workers > 1 and len(unique) > 1
            if parallel:
                if not self._run_parallel(unique, complete, fail, worker_ctx,
                                          absorb, attempt_failed):
                    parallel = False  # pool unavailable: transparent fallback
                    self._run_serial(unique, complete, fail, worker_ctx,
                                     absorb, attempt_failed)
            else:
                self._run_serial(unique, complete, fail, worker_ctx,
                                 absorb, attempt_failed)

        interrupted = self._stop.is_set() and done < total
        if interrupted:
            # re-stamp the manifest so a later run (and a human reading the
            # cache directory) can see the sweep was drained mid-flight
            self.cache.put_json(manifest_name, {
                "total": total, "keys": keys, "interrupted": True,
                "completed": done,
            })

        dedup_served = sum(len(pending[k]) - 1 for k in succeeded)
        if tel is not None:
            tel.metrics.counter("sweep_cache_hits_total").inc(hits + dedup_served)
            tel.metrics.counter("sweep_cache_misses_total").inc(len(unique))
            self.cache.export_metrics(tel.metrics)
            sweep_span.annotate(
                cache_hits=hits + dedup_served,
                simulated=len(succeeded),
                failures=len(failures),
                parallel=parallel,
            )
            sweep_span.end()
        report = SweepReport(
            points=[points[i] for i in sorted(points)],
            wall_time_s=time.perf_counter() - start,
            workers=self.workers,
            parallel=parallel,
            cache_hits=hits + dedup_served,
            cache_misses=len(unique),
            simulated=len(succeeded),
            deduplicated=deduplicated,
            cache_stats=self.cache.stats(),
            failures=[failures[i] for i in sorted(failures)],
            resumed=hits if prior_manifest is not None else 0,
            interrupted=interrupted,
            fabric=fabric_stats,
        )
        report.run_record = self._record_run(
            report, specs, keys, tel, time.process_time() - cpu_start
        )
        return report

    def _record_run(self, report: SweepReport, specs, keys, tel,
                    cpu_s: float) -> RunRecord | None:
        """Append this sweep's RunRecord to the ledger (best-effort)."""
        if not self.ledger.enabled:
            return None
        point_payload: dict[str, dict] = {}
        for point in report.points:
            point_payload.setdefault(point.key, result_headline(point.result))
        headline: dict[str, float] = {}
        if point_payload:
            for metric in ("avg_latency", "p95_latency", "throughput"):
                values = [m[metric] for m in point_payload.values()]
                headline[metric] = sum(values) / len(values)
        headline["failures"] = float(len(report.failures))
        # record the *resolved* engine so ledger entries for backend="auto"
        # runs are unambiguous about what actually executed them
        backends = {spec.resolved_backend() for spec in specs}
        return self.ledger.record(
            self.ledger_kind,
            label=self.ledger_label,
            backend=(backends.pop() if len(backends) == 1
                     else "mixed" if backends else None),
            spec_keys=keys,
            wall_s=report.wall_time_s,
            cpu_s=cpu_s,
            points=point_payload,
            headline=headline,
            metrics=tel.metrics.snapshot() if tel is not None else None,
            fingerprint=stable_key(tuple(keys)),
        )

    # ------------------------------------------------------------------
    def _backoff(self, attempts: int) -> float:
        return self.retry_backoff_s * (2 ** max(0, attempts - 1))

    def _run_fabric(self, unique, complete, fail, tel, fingerprint):
        """Delegate execution to the lease-based work-queue fabric.

        The fingerprint covers the *full* spec list (it matches the
        checkpoint manifest), so a resume whose pending set has shrunk
        still adopts the same queue directory.
        """
        from repro.exec.fabric import FabricCoordinator

        coordinator = FabricCoordinator(self.fabric, telemetry=tel)
        return coordinator.execute(unique, self.cache, complete, fail,
                                   self._stop, fingerprint=fingerprint)

    def _run_serial(self, unique, complete, fail, worker_ctx,
                    absorb, attempt_failed) -> None:
        # in-process execution cannot preempt a hung simulation, so
        # point_timeout is not enforced here; exceptions are still
        # isolated and retried per point
        for key, spec in unique:
            if self._stop.is_set():
                return  # graceful drain: unfinished points stay pending
            attempts = 0
            while True:
                attempts += 1
                status = _simulate_guarded(spec, worker_ctx(key, attempts))
                if status[0] == "ok":
                    complete(key, status[1], status[2], status[3])
                    break
                if attempts > self.max_retries:
                    attempt_failed("error", retrying=False)
                    fail(key, "error", status[1], status[2], attempts,
                         status[4])
                    break
                attempt_failed("error", retrying=True)
                absorb(key, status[4])
                time.sleep(self._backoff(attempts))

    def _run_parallel(self, unique, complete, fail, worker_ctx,
                      absorb, attempt_failed) -> bool:
        """Per-future fan-out; returns False when no pool exists at all."""
        try:
            import concurrent.futures as cf
            from concurrent.futures.process import BrokenProcessPool
        except ImportError:
            return False
        try:
            pool = cf.ProcessPoolExecutor(max_workers=self.workers,
                                          initializer=_ignore_sigint)
        except (ImportError, OSError, ValueError, RuntimeError):
            return False  # e.g. no os.fork / sem_open on this platform

        tasks = {key: {"spec": spec, "attempts": 0} for key, spec in unique}
        ready = deque(key for key, _ in unique)
        delayed: list[tuple[float, str]] = []  # (resume-at, key) backoffs
        running: dict = {}  # future -> (key, deadline | None)

        def rebuild_pool():
            nonlocal pool
            _kill_pool(pool)
            pool = cf.ProcessPoolExecutor(max_workers=self.workers,
                                          initializer=_ignore_sigint)

        def retry_or_fail(key: str, kind: str, error: str, tb,
                          payload=None) -> None:
            task = tasks[key]
            absorb(key, payload)  # keep the failed attempt's spans/metrics
            if task["attempts"] > self.max_retries:
                attempt_failed(kind, retrying=False)
                fail(key, kind, error, tb, task["attempts"])
            else:
                attempt_failed(kind, retrying=True)
                delayed.append(
                    (time.monotonic() + self._backoff(task["attempts"]), key)
                )

        def probe(key: str) -> None:
            """Re-run a pool-break suspect alone, for exact attribution.

            When the shared pool breaks, every in-flight future fails with
            ``BrokenProcessPool`` -- the crasher and its innocent
            bystanders are indistinguishable.  A fresh single-worker pool
            answers the question per point: if it breaks again the point
            really kills its worker; if it completes, the point was
            collateral damage (and its result is used, uncharged).
            """
            task = tasks[key]
            iso = cf.ProcessPoolExecutor(max_workers=1,
                                         initializer=_ignore_sigint)
            try:
                future = iso.submit(
                    _simulate_guarded, task["spec"],
                    worker_ctx(key, task["attempts"]),
                )
                try:
                    status = future.result(timeout=self.point_timeout)
                except BrokenProcessPool:
                    retry_or_fail(
                        key, "crash",
                        "worker process died (BrokenProcessPool)", None,
                    )
                    return
                except cf.TimeoutError:
                    retry_or_fail(
                        key, "timeout",
                        f"no result within point_timeout={self.point_timeout}s",
                        None,
                    )
                    return
                if status[0] == "ok":
                    complete(key, status[1], status[2], status[3])
                else:
                    retry_or_fail(key, "error", status[1], status[2],
                                  status[4])
            finally:
                _kill_pool(iso)

        def handle_break(first_suspects: list) -> None:
            suspects = first_suspects + [key for key, _ in running.values()]
            running.clear()
            rebuild_pool()
            for key in suspects:
                probe(key)

        try:
            while ready or delayed or running:
                if self._stop.is_set():
                    # graceful drain: dispatch nothing more, but let every
                    # in-flight point finish and checkpoint normally
                    ready.clear()
                    delayed = []
                    if not running:
                        break
                now = time.monotonic()
                if delayed:  # promote backoffs whose delay has elapsed
                    still = [(t, k) for t, k in delayed if t > now]
                    for t, k in delayed:
                        if t <= now:
                            ready.append(k)
                    delayed = still
                while ready and len(running) < self.workers:
                    key = ready.popleft()
                    task = tasks[key]
                    task["attempts"] += 1
                    try:
                        future = pool.submit(
                            _simulate_guarded, task["spec"],
                            worker_ctx(key, task["attempts"]),
                        )
                    except BrokenProcessPool:
                        task["attempts"] -= 1  # never actually ran
                        ready.appendleft(key)
                        handle_break([])
                        continue
                    deadline = (
                        now + self.point_timeout if self.point_timeout else None
                    )
                    running[future] = (key, deadline)
                if not running:
                    if delayed:  # everything is backing off
                        time.sleep(max(0.0, min(t for t, _ in delayed) - now))
                    continue

                wake_ups = [d for _, d in running.values() if d is not None]
                wake_ups.extend(t for t, _ in delayed)
                wait_timeout = (
                    max(0.0, min(wake_ups) - now) + 1e-3 if wake_ups else None
                )
                finished, _ = cf.wait(
                    set(running), timeout=wait_timeout,
                    return_when=cf.FIRST_COMPLETED,
                )

                broken_suspects = []
                for future in finished:
                    key, _ = running.pop(future)
                    try:
                        status = future.result()
                    except BrokenProcessPool:
                        broken_suspects.append(key)
                        continue
                    except Exception as exc:  # e.g. result unpickling
                        retry_or_fail(
                            key, "error", f"{type(exc).__name__}: {exc}", None
                        )
                        continue
                    if status[0] == "ok":
                        complete(key, status[1], status[2], status[3])
                    else:
                        retry_or_fail(key, "error", status[1], status[2],
                                      status[4])
                if broken_suspects:
                    handle_break(broken_suspects)
                    continue

                now = time.monotonic()
                overdue = [
                    (future, key)
                    for future, (key, deadline) in running.items()
                    if deadline is not None and deadline <= now
                    and not future.done()
                ]
                if overdue:
                    # a hung worker cannot be cancelled: tear the pool down,
                    # charge the overdue points, resubmit the innocent
                    # in-flight points uncharged
                    victims = {future for future, _ in overdue}
                    innocents = [
                        key
                        for future, (key, _) in running.items()
                        if future not in victims
                    ]
                    running.clear()
                    rebuild_pool()
                    for _, key in overdue:
                        retry_or_fail(
                            key, "timeout",
                            f"exceeded point_timeout={self.point_timeout}s",
                            None,
                        )
                    for key in innocents:
                        tasks[key]["attempts"] -= 1
                        ready.append(key)
        finally:
            _kill_pool(pool)
        return True


__all__ = ["FailedPoint", "SweepPoint", "SweepReport", "SweepRunner", "CHAOS_ENV"]
