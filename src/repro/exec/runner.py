"""Parallel sweep execution over simulation specs.

:class:`SweepRunner` takes a list of :class:`~repro.noc.spec.SimulationSpec`
values -- an injection-rate x pattern x sprint-level grid, a PARSEC
scheme comparison, any batch of independent runs -- and executes them:

1. **cache lookup** -- points whose content hash is already in the
   :class:`~repro.exec.cache.ResultCache` are returned without simulating;
2. **dedup** -- identical specs appearing more than once in a sweep are
   simulated exactly once;
3. **fan-out** -- remaining points run on a ``ProcessPoolExecutor`` when
   ``workers > 1`` (with a transparent serial fallback when the pool is
   unavailable, e.g. on restricted platforms), or serially otherwise.

Because a spec carries its own traffic seed and every worker rebuilds the
generator from the spec, parallel and serial execution produce
*bit-identical* :class:`~repro.noc.sim.SimulationResult` values -- the
ordering of the returned points always matches the order of the input
specs, never completion order.

The fan-out is failure-isolated: each point is submitted as its own
future, so one point raising, hanging past ``point_timeout``, or killing
its worker outright (``BrokenProcessPool``) costs only that point.
Survivors are returned as usual while the casualties come back as
:class:`FailedPoint` records (with the worker's traceback) on
``SweepReport.failures``; ``max_retries`` re-attempts flaky points with
exponential backoff.  Every completed point is written to the cache the
moment it finishes, so an interrupted sweep resumes from its checkpoint:
re-running the same spec list against the same cache re-simulates only
the unfinished points.
"""

from __future__ import annotations

import os
import time
import traceback as _tb
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.exec.cache import CacheStats, ResultCache
from repro.noc.sim import SimulationResult, simulate
from repro.noc.spec import SimulationSpec, stable_key

#: Environment hook for fault-injecting the harness itself (CI smoke tests
#: and the runner's own test suite).  Recipes, applied per point with a
#: deterministic coin derived from the spec's content hash:
#:
#:   ``raise[:RATE]``               -- raise inside the worker
#:   ``exit[:RATE]``                -- kill the worker process (os._exit)
#:   ``hang[:RATE[:SECONDS]]``      -- sleep, triggering the point timeout
#:   ``exit-once:RATE:DIR``         -- kill the worker the *first* time each
#:                                     point runs (marker files in DIR), so
#:                                     a retry succeeds
CHAOS_ENV = "REPRO_SWEEP_CHAOS"


def _maybe_inject_chaos(spec: SimulationSpec) -> None:
    recipe = os.environ.get(CHAOS_ENV)
    if not recipe:
        return
    parts = recipe.split(":")
    mode = parts[0]
    rate = float(parts[1]) if len(parts) > 1 else 1.0
    coin = int(spec.cache_key()[:8], 16) / float(0xFFFFFFFF)
    if coin >= rate:
        return
    if mode == "raise":
        raise RuntimeError("chaos: injected simulation fault")
    if mode == "hang":
        time.sleep(float(parts[2]) if len(parts) > 2 else 3600.0)
    elif mode == "exit":
        os._exit(17)
    elif mode == "exit-once":
        marker = os.path.join(parts[2], spec.cache_key()[:16] + ".chaos")
        try:
            os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return  # this point already crashed once: let the retry succeed
        os._exit(17)


def _simulate_guarded(spec: SimulationSpec):
    """Worker entry point: run one spec, never let an exception escape.

    Returns ``("ok", result, seconds)`` or ``("err", message, traceback,
    seconds)`` -- the scheduler turns the latter into a retry or a
    :class:`FailedPoint` with the worker-side traceback attached.
    """
    start = time.perf_counter()
    try:
        _maybe_inject_chaos(spec)
        result = simulate(spec)
    except Exception as exc:
        elapsed = time.perf_counter() - start
        return ("err", f"{type(exc).__name__}: {exc}", _tb.format_exc(), elapsed)
    return ("ok", result, time.perf_counter() - start)


def _simulate_timed(spec: SimulationSpec) -> tuple[SimulationResult, float]:
    """Back-compat wrapper: run one spec and report its wall-clock time."""
    status = _simulate_guarded(spec)
    if status[0] == "ok":
        return status[1], status[2]
    raise RuntimeError(status[1])


def _kill_pool(pool) -> None:
    """Tear a process pool down *now*, including hung workers.

    ``shutdown(cancel_futures=True)`` only cancels queued work; a worker
    stuck inside a simulation must be terminated out from under it first.
    The shutdown then waits: with every worker dead the join is immediate,
    and leaving the manager thread running would race the interpreter's
    atexit hook (spurious ``Bad file descriptor`` noise at exit).
    """
    processes = getattr(pool, "_processes", None)
    for proc in list(processes.values()) if processes else []:
        try:
            proc.terminate()
        except (OSError, ValueError, AttributeError):
            pass
    pool.shutdown(wait=True, cancel_futures=True)


@dataclass
class SweepPoint:
    """One executed (or cache-served) point of a sweep."""

    index: int
    spec: SimulationSpec
    result: SimulationResult
    wall_time_s: float
    cached: bool

    @property
    def key(self) -> str:
        return self.spec.cache_key()


@dataclass
class FailedPoint:
    """One sweep point that produced no result despite every retry."""

    index: int
    spec: SimulationSpec
    kind: str  # "error" | "timeout" | "crash"
    error: str
    traceback: str | None
    attempts: int

    @property
    def key(self) -> str:
        return self.spec.cache_key()

    def describe(self) -> str:
        """The one-line summary the CLI prints per failure."""
        return (
            f"point {self.index} [{self.kind}] after {self.attempts} "
            f"attempt(s): {self.error}"
        )


@dataclass
class SweepReport:
    """Results plus observability for one :meth:`SweepRunner.run` call."""

    points: list[SweepPoint]
    wall_time_s: float
    workers: int
    parallel: bool
    cache_hits: int
    cache_misses: int
    simulated: int
    deduplicated: int
    cache_stats: CacheStats | None = field(default=None, repr=False)
    failures: list[FailedPoint] = field(default_factory=list)
    resumed: int = 0  # cache hits recognized as a resumed earlier sweep

    @property
    def results(self) -> list[SimulationResult]:
        """Simulation results of the surviving points, in input-spec order."""
        return [point.result for point in self.points]

    @property
    def total_points(self) -> int:
        return len(self.points) + len(self.failures)

    @property
    def ok(self) -> bool:
        """True when every point produced a result."""
        return not self.failures

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total_points if self.total_points else 0.0

    @property
    def sim_time_s(self) -> float:
        """Summed per-point simulation time (> wall time when parallel)."""
        return sum(p.wall_time_s for p in self.points if not p.cached)

    def failure_lines(self) -> list[str]:
        """One line per failed point, for logs and the CLI."""
        return [failure.describe() for failure in self.failures]

    def summary(self) -> str:
        """One-paragraph human-readable sweep report."""
        mode = f"{self.workers} workers" if self.parallel else "serial"
        lines = [
            f"sweep: {self.total_points} points in {self.wall_time_s:.2f}s ({mode})",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({100.0 * self.hit_rate:.0f}% hit rate), "
            f"{self.simulated} simulated, {self.deduplicated} deduplicated",
        ]
        if self.resumed:
            lines.append(f"resumed: {self.resumed} points from an earlier run")
        timed = [p.wall_time_s for p in self.points if not p.cached]
        if timed:
            lines.append(
                f"per-point sim time: mean {sum(timed) / len(timed):.3f}s, "
                f"max {max(timed):.3f}s, total {sum(timed):.2f}s"
            )
        if self.failures:
            lines.append(f"FAILED: {len(self.failures)} of {self.total_points} points")
            lines.extend("  " + line for line in self.failure_lines())
        return "\n".join(lines)


class SweepRunner:
    """Execute batches of independent simulation specs, cached and parallel.

    ``workers=1`` (the default) runs serially; ``workers>1`` fans out over a
    process pool, one future per point.  ``cache=None`` gives the runner a
    private in-memory cache; pass a shared :class:`ResultCache` to reuse
    results across runners, benchmarks and CLI invocations.  ``progress``
    (if given) is called as ``progress(done, total, point)`` the moment each
    point completes -- cache hits first (in input order), simulated points
    in completion order; failed points advance ``done`` without a callback.

    Failure policy: a point that raises is retried up to ``max_retries``
    times with exponential backoff (``retry_backoff_s`` doubling per
    attempt); one that runs past ``point_timeout`` seconds or kills its
    worker is isolated, charged an attempt and retried likewise.  Points
    that exhaust their attempts are reported on ``SweepReport.failures``
    instead of poisoning the sweep.  Serial runs cannot preempt a hung
    simulation, so ``point_timeout`` is only enforced when ``workers > 1``.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        progress: Callable[[int, int, SweepPoint], None] | None = None,
        max_retries: int = 0,
        point_timeout: float | None = None,
        retry_backoff_s: float = 0.05,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if point_timeout is not None and point_timeout <= 0:
            raise ValueError("point_timeout must be positive (or None)")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        self.workers = workers
        self.cache = cache if cache is not None else ResultCache()
        self.progress = progress
        self.max_retries = max_retries
        self.point_timeout = point_timeout
        self.retry_backoff_s = retry_backoff_s

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[SimulationSpec]) -> SweepReport:
        """Run every spec, returning surviving points in input order."""
        start = time.perf_counter()
        specs = list(specs)
        total = len(specs)
        keys = [spec.cache_key() for spec in specs]

        # the checkpoint manifest: a sweep is identified by the content
        # hashes of its points, so re-running the same spec list against
        # the same cache is recognized as a resume
        manifest_name = "sweep-" + stable_key(tuple(keys))[:32]
        prior_manifest = self.cache.get_json(manifest_name)
        self.cache.put_json(manifest_name, {"total": total, "keys": keys})

        points: dict[int, SweepPoint] = {}
        failures: dict[int, FailedPoint] = {}
        pending: dict[str, list[int]] = {}  # key -> input indices needing it
        hits = 0
        done = 0
        for index, (spec, key) in enumerate(zip(specs, keys)):
            cached = self.cache.get(key)
            if cached is not None:
                point = SweepPoint(index, spec, cached, 0.0, cached=True)
                points[index] = point
                hits += 1
                done += 1
                if self.progress is not None:
                    self.progress(done, total, point)
            else:
                pending.setdefault(key, []).append(index)

        unique = [(key, specs[indices[0]]) for key, indices in pending.items()]
        deduplicated = sum(len(ix) - 1 for ix in pending.values())
        succeeded: set[str] = set()

        def complete(key: str, result: SimulationResult, elapsed: float) -> None:
            nonlocal done
            self.cache.put(key, result)  # checkpoint: resumable immediately
            succeeded.add(key)
            for extra, index in enumerate(pending[key]):
                point = SweepPoint(
                    index,
                    specs[index],
                    result,
                    elapsed if extra == 0 else 0.0,
                    cached=extra > 0,
                )
                points[index] = point
                done += 1
                if self.progress is not None:
                    self.progress(done, total, point)

        def fail(key: str, kind: str, error: str, tb, attempts: int) -> None:
            nonlocal done
            for index in pending[key]:
                failures[index] = FailedPoint(
                    index, specs[index], kind, error, tb, attempts
                )
                done += 1

        parallel = self.workers > 1 and len(unique) > 1
        if parallel:
            if not self._run_parallel(unique, complete, fail):
                parallel = False  # pool unavailable: transparent fallback
                self._run_serial(unique, complete, fail)
        else:
            self._run_serial(unique, complete, fail)

        dedup_served = sum(len(pending[k]) - 1 for k in succeeded)
        return SweepReport(
            points=[points[i] for i in sorted(points)],
            wall_time_s=time.perf_counter() - start,
            workers=self.workers,
            parallel=parallel,
            cache_hits=hits + dedup_served,
            cache_misses=len(unique),
            simulated=len(succeeded),
            deduplicated=deduplicated,
            cache_stats=self.cache.stats.snapshot(),
            failures=[failures[i] for i in sorted(failures)],
            resumed=hits if prior_manifest is not None else 0,
        )

    # ------------------------------------------------------------------
    def _backoff(self, attempts: int) -> float:
        return self.retry_backoff_s * (2 ** max(0, attempts - 1))

    def _run_serial(self, unique, complete, fail) -> None:
        # in-process execution cannot preempt a hung simulation, so
        # point_timeout is not enforced here; exceptions are still
        # isolated and retried per point
        for key, spec in unique:
            attempts = 0
            while True:
                attempts += 1
                status = _simulate_guarded(spec)
                if status[0] == "ok":
                    complete(key, status[1], status[2])
                    break
                if attempts > self.max_retries:
                    fail(key, "error", status[1], status[2], attempts)
                    break
                time.sleep(self._backoff(attempts))

    def _run_parallel(self, unique, complete, fail) -> bool:
        """Per-future fan-out; returns False when no pool exists at all."""
        try:
            import concurrent.futures as cf
            from concurrent.futures.process import BrokenProcessPool
        except ImportError:
            return False
        try:
            pool = cf.ProcessPoolExecutor(max_workers=self.workers)
        except (ImportError, OSError, ValueError, RuntimeError):
            return False  # e.g. no os.fork / sem_open on this platform

        tasks = {key: {"spec": spec, "attempts": 0} for key, spec in unique}
        ready = deque(key for key, _ in unique)
        delayed: list[tuple[float, str]] = []  # (resume-at, key) backoffs
        running: dict = {}  # future -> (key, deadline | None)

        def rebuild_pool():
            nonlocal pool
            _kill_pool(pool)
            pool = cf.ProcessPoolExecutor(max_workers=self.workers)

        def retry_or_fail(key: str, kind: str, error: str, tb) -> None:
            task = tasks[key]
            if task["attempts"] > self.max_retries:
                fail(key, kind, error, tb, task["attempts"])
            else:
                delayed.append(
                    (time.monotonic() + self._backoff(task["attempts"]), key)
                )

        def probe(key: str) -> None:
            """Re-run a pool-break suspect alone, for exact attribution.

            When the shared pool breaks, every in-flight future fails with
            ``BrokenProcessPool`` -- the crasher and its innocent
            bystanders are indistinguishable.  A fresh single-worker pool
            answers the question per point: if it breaks again the point
            really kills its worker; if it completes, the point was
            collateral damage (and its result is used, uncharged).
            """
            task = tasks[key]
            iso = cf.ProcessPoolExecutor(max_workers=1)
            try:
                future = iso.submit(_simulate_guarded, task["spec"])
                try:
                    status = future.result(timeout=self.point_timeout)
                except BrokenProcessPool:
                    retry_or_fail(
                        key, "crash",
                        "worker process died (BrokenProcessPool)", None,
                    )
                    return
                except cf.TimeoutError:
                    retry_or_fail(
                        key, "timeout",
                        f"no result within point_timeout={self.point_timeout}s",
                        None,
                    )
                    return
                if status[0] == "ok":
                    complete(key, status[1], status[2])
                else:
                    retry_or_fail(key, "error", status[1], status[2])
            finally:
                _kill_pool(iso)

        def handle_break(first_suspects: list) -> None:
            suspects = first_suspects + [key for key, _ in running.values()]
            running.clear()
            rebuild_pool()
            for key in suspects:
                probe(key)

        try:
            while ready or delayed or running:
                now = time.monotonic()
                if delayed:  # promote backoffs whose delay has elapsed
                    still = [(t, k) for t, k in delayed if t > now]
                    for t, k in delayed:
                        if t <= now:
                            ready.append(k)
                    delayed = still
                while ready and len(running) < self.workers:
                    key = ready.popleft()
                    task = tasks[key]
                    task["attempts"] += 1
                    try:
                        future = pool.submit(_simulate_guarded, task["spec"])
                    except BrokenProcessPool:
                        task["attempts"] -= 1  # never actually ran
                        ready.appendleft(key)
                        handle_break([])
                        continue
                    deadline = (
                        now + self.point_timeout if self.point_timeout else None
                    )
                    running[future] = (key, deadline)
                if not running:
                    if delayed:  # everything is backing off
                        time.sleep(max(0.0, min(t for t, _ in delayed) - now))
                    continue

                wake_ups = [d for _, d in running.values() if d is not None]
                wake_ups.extend(t for t, _ in delayed)
                wait_timeout = (
                    max(0.0, min(wake_ups) - now) + 1e-3 if wake_ups else None
                )
                finished, _ = cf.wait(
                    set(running), timeout=wait_timeout,
                    return_when=cf.FIRST_COMPLETED,
                )

                broken_suspects = []
                for future in finished:
                    key, _ = running.pop(future)
                    try:
                        status = future.result()
                    except BrokenProcessPool:
                        broken_suspects.append(key)
                        continue
                    except Exception as exc:  # e.g. result unpickling
                        retry_or_fail(
                            key, "error", f"{type(exc).__name__}: {exc}", None
                        )
                        continue
                    if status[0] == "ok":
                        complete(key, status[1], status[2])
                    else:
                        retry_or_fail(key, "error", status[1], status[2])
                if broken_suspects:
                    handle_break(broken_suspects)
                    continue

                now = time.monotonic()
                overdue = [
                    (future, key)
                    for future, (key, deadline) in running.items()
                    if deadline is not None and deadline <= now
                    and not future.done()
                ]
                if overdue:
                    # a hung worker cannot be cancelled: tear the pool down,
                    # charge the overdue points, resubmit the innocent
                    # in-flight points uncharged
                    victims = {future for future, _ in overdue}
                    innocents = [
                        key
                        for future, (key, _) in running.items()
                        if future not in victims
                    ]
                    running.clear()
                    rebuild_pool()
                    for _, key in overdue:
                        retry_or_fail(
                            key, "timeout",
                            f"exceeded point_timeout={self.point_timeout}s",
                            None,
                        )
                    for key in innocents:
                        tasks[key]["attempts"] -= 1
                        ready.append(key)
        finally:
            _kill_pool(pool)
        return True


__all__ = ["FailedPoint", "SweepPoint", "SweepReport", "SweepRunner", "CHAOS_ENV"]
