"""Parallel sweep execution over simulation specs.

:class:`SweepRunner` takes a list of :class:`~repro.noc.spec.SimulationSpec`
values -- an injection-rate x pattern x sprint-level grid, a PARSEC
scheme comparison, any batch of independent runs -- and executes them:

1. **cache lookup** -- points whose content hash is already in the
   :class:`~repro.exec.cache.ResultCache` are returned without simulating;
2. **dedup** -- identical specs appearing more than once in a sweep are
   simulated exactly once;
3. **fan-out** -- remaining points run on a ``ProcessPoolExecutor`` when
   ``workers > 1`` (with a transparent serial fallback when the pool is
   unavailable, e.g. on restricted platforms), or serially otherwise.

Because a spec carries its own traffic seed and every worker rebuilds the
generator from the spec, parallel and serial execution produce
*bit-identical* :class:`~repro.noc.sim.SimulationResult` values -- the
ordering of the returned points always matches the order of the input
specs, never completion order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.exec.cache import CacheStats, ResultCache
from repro.noc.sim import SimulationResult, simulate
from repro.noc.spec import SimulationSpec


def _simulate_timed(spec: SimulationSpec) -> tuple[SimulationResult, float]:
    """Worker entry point: run one spec and report its wall-clock time."""
    start = time.perf_counter()
    result = simulate(spec)
    return result, time.perf_counter() - start


@dataclass
class SweepPoint:
    """One executed (or cache-served) point of a sweep."""

    index: int
    spec: SimulationSpec
    result: SimulationResult
    wall_time_s: float
    cached: bool

    @property
    def key(self) -> str:
        return self.spec.cache_key()


@dataclass
class SweepReport:
    """Results plus observability for one :meth:`SweepRunner.run` call."""

    points: list[SweepPoint]
    wall_time_s: float
    workers: int
    parallel: bool
    cache_hits: int
    cache_misses: int
    simulated: int
    deduplicated: int
    cache_stats: CacheStats | None = field(default=None, repr=False)

    @property
    def results(self) -> list[SimulationResult]:
        """Simulation results in input-spec order."""
        return [point.result for point in self.points]

    @property
    def total_points(self) -> int:
        return len(self.points)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total_points if self.points else 0.0

    @property
    def sim_time_s(self) -> float:
        """Summed per-point simulation time (> wall time when parallel)."""
        return sum(p.wall_time_s for p in self.points if not p.cached)

    def summary(self) -> str:
        """One-paragraph human-readable sweep report."""
        mode = f"{self.workers} workers" if self.parallel else "serial"
        lines = [
            f"sweep: {self.total_points} points in {self.wall_time_s:.2f}s ({mode})",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({100.0 * self.hit_rate:.0f}% hit rate), "
            f"{self.simulated} simulated, {self.deduplicated} deduplicated",
        ]
        timed = [p.wall_time_s for p in self.points if not p.cached]
        if timed:
            lines.append(
                f"per-point sim time: mean {sum(timed) / len(timed):.3f}s, "
                f"max {max(timed):.3f}s, total {sum(timed):.2f}s"
            )
        return "\n".join(lines)


class SweepRunner:
    """Execute batches of independent simulation specs, cached and parallel.

    ``workers=1`` (the default) runs serially; ``workers>1`` fans out over a
    process pool.  ``cache=None`` gives the runner a private in-memory
    cache; pass a shared :class:`ResultCache` to reuse results across
    runners, benchmarks and CLI invocations.  ``progress`` (if given) is
    called as ``progress(done, total, point)`` after every completed point.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        progress: Callable[[int, int, SweepPoint], None] | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.cache = cache if cache is not None else ResultCache()
        self.progress = progress

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[SimulationSpec]) -> SweepReport:
        """Run every spec, returning points in input order."""
        start = time.perf_counter()
        specs = list(specs)
        keys = [spec.cache_key() for spec in specs]

        points: dict[int, SweepPoint] = {}
        pending: dict[str, list[int]] = {}  # key -> input indices needing it
        hits = 0
        for index, (spec, key) in enumerate(zip(specs, keys)):
            cached = self.cache.get(key)
            if cached is not None:
                points[index] = SweepPoint(index, spec, cached, 0.0, cached=True)
                hits += 1
            else:
                pending.setdefault(key, []).append(index)

        unique = [(key, specs[indices[0]]) for key, indices in pending.items()]
        deduplicated = sum(len(ix) - 1 for ix in pending.values())
        parallel = self.workers > 1 and len(unique) > 1
        outcomes = (
            self._run_parallel(unique) if parallel else self._run_serial(unique)
        )
        if outcomes is None:  # pool unavailable: transparent serial fallback
            parallel = False
            outcomes = self._run_serial(unique)

        for (key, _), (result, elapsed) in zip(unique, outcomes):
            self.cache.put(key, result)
            for extra, index in enumerate(pending[key]):
                points[index] = SweepPoint(
                    index,
                    specs[index],
                    result,
                    elapsed if extra == 0 else 0.0,
                    cached=extra > 0,
                )

        ordered = [points[i] for i in range(len(specs))]
        if self.progress is not None:
            for done, point in enumerate(ordered, start=1):
                self.progress(done, len(ordered), point)
        return SweepReport(
            points=ordered,
            wall_time_s=time.perf_counter() - start,
            workers=self.workers,
            parallel=parallel,
            cache_hits=hits + deduplicated,
            cache_misses=len(unique),
            simulated=len(unique),
            deduplicated=deduplicated,
            cache_stats=self.cache.stats.snapshot(),
        )

    # ------------------------------------------------------------------
    def _run_serial(self, unique):
        return [_simulate_timed(spec) for _, spec in unique]

    def _run_parallel(self, unique):
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                return list(pool.map(_simulate_timed, (spec for _, spec in unique)))
        except (ImportError, OSError, ValueError, RuntimeError):
            return None  # e.g. no os.fork / sem_open on this platform


__all__ = ["SweepPoint", "SweepReport", "SweepRunner"]
