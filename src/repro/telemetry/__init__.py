"""Unified telemetry: structured tracing, metrics, and profiling hooks.

The paper's evaluation watches *internal* signals -- per-router power
states, latency under gating, PCM headroom during a sprint -- so the
reproduction needs more than end-of-run aggregates.  This zero-dependency
package provides the three instruments the rest of the stack shares:

- :class:`~repro.telemetry.metrics.MetricsRegistry` -- counters, gauges
  and histograms with Prometheus text output; a true no-op when disabled;
- :class:`~repro.telemetry.tracer.Tracer` -- span-based structured
  tracing to JSONL (span begin/end, wall+CPU time, parent ids), nesting
  from a whole sweep down to individual simulation phases;
- periodic in-simulation sampling (wired in :mod:`repro.noc.sim`) of
  per-router flit counts, buffer occupancy, gated cycles, and PCM
  headroom (wired in :mod:`repro.thermal.transient_sprint`).

:class:`Telemetry` bundles one registry + one tracer + the sampling
interval and defines the *cross-process aggregation contract*: a sweep
worker builds its own bundle from a picklable :class:`TelemetryContext`,
runs, and returns :meth:`Telemetry.payload`; the parent calls
:meth:`Telemetry.absorb` to graft the worker's spans under the point span
and fold its metrics in.  Sharding work can reuse the same contract.

Everything degrades to ~zero cost when off: instrumented code holds
either ``None`` (skip entirely) or a disabled bundle whose instruments
are shared no-op singletons -- no allocation on the hot path (guarded by
``benchmarks/bench_extension_telemetry.py``).  See docs/observability.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.telemetry.compare import Comparison, MetricPolicy, compare_runs
from repro.telemetry.ledger import Ledger, RunRecord
from repro.telemetry.live import (
    LiveAggregator,
    LiveMetricsExporter,
    MetricsServer,
    ProgressLine,
    QueueWatcher,
    RateEstimator,
    SweepView,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
)
from repro.telemetry.tracer import NULL_SPAN, Span, Tracer


@dataclass(frozen=True)
class TelemetryContext:
    """The picklable recipe a worker process rebuilds its bundle from."""

    enabled: bool = True
    sample_interval: int = 0
    id_prefix: str = ""


class Telemetry:
    """One metrics registry + one tracer + the sampling configuration.

    ``sample_interval`` is the in-simulation sampling period in cycles
    (0 disables periodic sampling; spans and metrics still work).
    """

    def __init__(self, enabled: bool = True, sample_interval: int = 0,
                 id_prefix: str = ""):
        if sample_interval < 0:
            raise ValueError("sample_interval must be >= 0 cycles")
        self.enabled = enabled
        self.sample_interval = sample_interval
        self.metrics = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(enabled=enabled, id_prefix=id_prefix)

    @classmethod
    def disabled(cls) -> "Telemetry":
        """A bundle whose instruments are all no-ops."""
        return cls(enabled=False)

    # ------------------------------------------------------------------
    # cross-process aggregation
    # ------------------------------------------------------------------
    def worker_context(self, id_prefix: str) -> TelemetryContext | None:
        """The context to ship to a worker (None when disabled: workers
        skip instrumentation entirely rather than carrying a dead bundle)."""
        if not self.enabled:
            return None
        return TelemetryContext(
            enabled=True,
            sample_interval=self.sample_interval,
            id_prefix=id_prefix,
        )

    @classmethod
    def from_context(cls, context: TelemetryContext | None) -> "Telemetry | None":
        if context is None:
            return None
        return cls(
            enabled=context.enabled,
            sample_interval=context.sample_interval,
            id_prefix=context.id_prefix,
        )

    def payload(self) -> tuple[list[dict], dict]:
        """Drain this bundle for shipment back to the parent process."""
        return (self.tracer.drain(), self.metrics.snapshot())

    def absorb(self, payload: tuple[list[dict], dict] | None,
               parent_span_id: str | None = None) -> None:
        """Merge a worker's :meth:`payload`: spans graft under
        ``parent_span_id``, metrics fold into the registry."""
        if not payload:
            return
        events, snapshot = payload
        self.tracer.graft(events, parent_span_id)
        self.metrics.merge(snapshot)

    # ------------------------------------------------------------------
    def save(self, trace_path: str | Path | None = None,
             metrics_path: str | Path | None = None) -> None:
        """Persist the trace (JSONL, metrics snapshot embedded as the
        final event) and/or the Prometheus text dump."""
        if trace_path is not None:
            snapshot = self.metrics.snapshot()
            if snapshot["metrics"]:
                self.tracer.events.append({"ev": "metrics", "data": snapshot})
            self.tracer.save(trace_path)
        if metrics_path is not None:
            Path(metrics_path).write_text(
                self.metrics.render_prometheus(), encoding="utf-8"
            )


def active(telemetry: "Telemetry | None") -> "Telemetry | None":
    """Collapse ``None`` and disabled bundles to ``None`` -- the single
    check instrumented code performs before touching telemetry."""
    if telemetry is not None and telemetry.enabled:
        return telemetry
    return None


__all__ = [
    "Comparison",
    "Counter",
    "Gauge",
    "Histogram",
    "Ledger",
    "LiveAggregator",
    "LiveMetricsExporter",
    "MetricPolicy",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_INSTRUMENT",
    "NULL_SPAN",
    "ProgressLine",
    "QueueWatcher",
    "RateEstimator",
    "RunRecord",
    "Span",
    "SweepView",
    "Telemetry",
    "TelemetryContext",
    "Tracer",
    "active",
    "compare_runs",
]
