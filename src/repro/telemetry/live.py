"""Live sweep observability: one streaming view over a running sweep.

``repro report`` is strictly post-hoc and the fabric's ``events.jsonl``
is raw; this module is the piece in between -- a streaming aggregator
that folds the fabric's torn-tail-tolerant event stream (via
:meth:`repro.exec.fabric.LeaseTable.read_events` offsets, so a watcher
never skips or double-counts an event across partial lines) and the
local-pool :class:`~repro.exec.runner.SweepRunner` progress callbacks
into one :class:`SweepView` snapshot:

- per-worker and per-shard throughput (rolling-window points/s),
- lease health (live / expiring / reclaimed / quarantined),
- retry and chaos counters (errors, expiries, duplicates, recoveries),
- :class:`~repro.exec.cache.ResultCache` hit rate,
- an ETA from a least-squares regression of the completion rate.

The view is surfaced three ways, all stdlib-only:

- :func:`render_terminal` -- the ``repro watch QUEUE_DIR`` ANSI
  dashboard (``--once`` / ``--json`` for scripts and CI);
- :func:`render_html` / :func:`write_html_atomic` -- a self-refreshing
  single-file HTML dashboard written atomically next to the queue;
- :class:`MetricsServer` + :class:`LiveMetricsExporter` -- a long-lived
  Prometheus exposition endpoint (``repro watch --serve :PORT``) built
  on ``http.server`` and the existing
  :class:`~repro.telemetry.metrics.MetricsRegistry` text render.

Everything here is read-only with respect to the queue directory: a
watcher can attach to any sweep -- local pool, fabric, fabric under
chaos -- without perturbing it (the <2 % attach overhead is gated by
``benchmarks/bench_extension_fabric.py``).
"""

from __future__ import annotations

import html as _html
import os
import tempfile
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry.metrics import MetricsRegistry

#: Gauges exported by the watch surfaces, pre-registered so a scrape of
#: a freshly attached watcher renders every series (as zeros) instead of
#: omitting them -- an absent metric is indistinguishable from a broken
#: exporter, a zero is an answer.
WATCH_GAUGE_HELP = {
    "watch_points_total": "Points in the watched sweep.",
    "watch_points_done": "Points completed (first done event per key).",
    "watch_points_failed": "Points failed or quarantined.",
    "watch_points_pending": "Points neither done nor failed yet.",
    "watch_rate_points_per_second": "Rolling-window completion rate.",
    "watch_eta_seconds": "Estimated seconds until the sweep completes "
                         "(-1 when unknown).",
    "watch_leases_live": "Leases currently held and not near expiry.",
    "watch_leases_expiring": "Held leases within a third of their ttl.",
    "watch_workers_active": "Workers seen alive in the rolling window.",
    "watch_cache_hit_rate": "Fraction of completions served from cache "
                            "(recovered/orphaned results).",
    "watch_sweep_complete": "1 once the sweep has shut down, else 0.",
}

#: Cumulative event counts re-exported as counters on the scrape
#: endpoint (names shared with the coordinator's own telemetry, so one
#: Grafana board covers both in-process and attached monitoring).
WATCH_COUNTER_HELP = {
    "fabric_lease_claims_total": "Lease claims observed in the event log.",
    "fabric_lease_expired_total": "Lease expiries observed.",
    "fabric_requeued_total": "Expiries that re-queued an unfinished point.",
    "fabric_done_duplicates_total": "Duplicate completions observed.",
    "fabric_worker_errors_total": "Worker errors observed.",
    "fabric_worker_spawns_total": "worker-start events observed.",
    "fabric_quarantined_total": "Quarantine events observed.",
    "fabric_recovered_total": "Completions recovered from orphaned results.",
}


def shard_of(key: str, shards: int) -> int:
    """Stable content-derived shard id for one point key.

    Every party (workers emitting events, watchers replaying them)
    computes the same shard for the same key with no coordination; hex
    content-hash keys take the fast path, anything else falls back to a
    CRC so foreign key shapes still shard deterministically.
    """
    if shards <= 1:
        return 0
    try:
        return int(key[:8], 16) % shards
    except (ValueError, TypeError):
        return zlib.crc32(str(key).encode("utf-8")) % shards


def _fmt_duration(seconds: float | None) -> str:
    if seconds is None or seconds < 0:
        return "?"
    seconds = float(seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"{int(seconds // 3600)}h{int(seconds % 3600 // 60):02d}m"


# ----------------------------------------------------------------------
# rate + ETA estimation
# ----------------------------------------------------------------------
class RateEstimator:
    """Completion-rate and ETA from a rolling window of (t, done) samples.

    The instantaneous rate is the least-squares slope of ``done`` against
    time over the trailing ``window_s`` seconds -- a regression, not a
    two-point difference, so bursty fabric completions (several workers
    landing at once) do not whipsaw the ETA.  The overall rate
    (first-to-last sample) is kept as a fallback for windows with too
    little signal.
    """

    def __init__(self, window_s: float = 30.0):
        self.window_s = float(window_s)
        self._samples: deque[tuple[float, int]] = deque()
        self._first: tuple[float, int] | None = None

    def observe(self, now: float, done: int) -> None:
        if self._first is None:
            self._first = (now, done)
        samples = self._samples
        if samples and samples[-1][0] >= now and samples[-1][1] >= done:
            return  # duplicate / out-of-order sample: nothing new
        samples.append((now, done))
        horizon = now - self.window_s
        while len(samples) > 2 and samples[1][0] <= horizon:
            samples.popleft()

    def rate(self) -> float:
        """Points per second over the rolling window (0.0 without signal)."""
        samples = self._samples
        if len(samples) < 2:
            return 0.0
        t_mean = sum(t for t, _ in samples) / len(samples)
        d_mean = sum(d for _, d in samples) / len(samples)
        var = sum((t - t_mean) ** 2 for t, _ in samples)
        if var <= 0.0:
            return 0.0
        cov = sum((t - t_mean) * (d - d_mean) for t, d in samples)
        return max(0.0, cov / var)

    def overall_rate(self) -> float:
        """Points per second from the first sample to the latest."""
        if self._first is None or not self._samples:
            return 0.0
        t0, d0 = self._first
        t1, d1 = self._samples[-1]
        if t1 <= t0:
            return 0.0
        return max(0.0, (d1 - d0) / (t1 - t0))

    def eta_s(self, remaining: int) -> float | None:
        """Seconds until ``remaining`` more points complete (None: unknown)."""
        if remaining <= 0:
            return 0.0
        slope = self.rate() or self.overall_rate()
        if slope <= 0.0:
            return None
        return remaining / slope


# ----------------------------------------------------------------------
# the view model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerView:
    """One worker's slice of a :class:`SweepView`."""

    name: str
    generation: int
    points: int
    rate_pps: float
    last_seen_s: float | None  # seconds since its last event (None: never)


@dataclass(frozen=True)
class ShardView:
    """One shard's slice of a :class:`SweepView`."""

    shard: int
    total: int
    done: int
    rate_pps: float


@dataclass(frozen=True)
class LeaseHealth:
    """Lease buckets at one instant plus cumulative churn."""

    live: int = 0
    expiring: int = 0       # within a third of the ttl of their deadline
    reclaimed: int = 0      # cumulative expired events
    quarantined: int = 0    # points written off by the circuit breaker


@dataclass(frozen=True)
class SweepView:
    """A frozen snapshot of one sweep's progress, renderer-agnostic.

    ``done``/``failed`` count unique point keys and match the
    coordinator's accounting exactly: the first ``done`` event per key
    wins, later duplicates only bump ``duplicates`` -- so a finished
    fabric sweep's view totals equal its
    :class:`~repro.exec.runner.SweepReport`, chaos or not.
    """

    source: str                      # "fabric" | "pool"
    queue_dir: str | None
    total: int
    done: int
    failed: int
    pending: int
    in_flight: int                   # leases currently held
    cache_hits: int                  # recovered / cache-served completions
    cache_hit_rate: float
    duplicates: int
    errors: int
    expired: int
    requeued: int
    claims: int
    worker_spawns: int
    worker_exits: int
    rate_pps: float
    overall_rate_pps: float
    eta_s: float | None
    elapsed_s: float
    complete: bool
    draining: bool
    leases: LeaseHealth = field(default_factory=LeaseHealth)
    workers: tuple[WorkerView, ...] = ()
    shards: tuple[ShardView, ...] = ()
    updated_ts: float = 0.0

    @property
    def quarantined(self) -> int:
        return self.leases.quarantined

    def to_dict(self) -> dict:
        """A JSON-ready rendering (``repro watch --json`` schema)."""
        return {
            "source": self.source,
            "queue_dir": self.queue_dir,
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "pending": self.pending,
            "in_flight": self.in_flight,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": round(self.cache_hit_rate, 6),
            "duplicates": self.duplicates,
            "errors": self.errors,
            "expired": self.expired,
            "requeued": self.requeued,
            "claims": self.claims,
            "worker_spawns": self.worker_spawns,
            "worker_exits": self.worker_exits,
            "rate_pps": round(self.rate_pps, 4),
            "overall_rate_pps": round(self.overall_rate_pps, 4),
            "eta_s": (None if self.eta_s is None else round(self.eta_s, 2)),
            "elapsed_s": round(self.elapsed_s, 3),
            "complete": self.complete,
            "draining": self.draining,
            "leases": {
                "live": self.leases.live,
                "expiring": self.leases.expiring,
                "reclaimed": self.leases.reclaimed,
                "quarantined": self.leases.quarantined,
            },
            "workers": [
                {
                    "name": w.name,
                    "generation": w.generation,
                    "points": w.points,
                    "rate_pps": round(w.rate_pps, 4),
                    "last_seen_s": (None if w.last_seen_s is None
                                    else round(w.last_seen_s, 2)),
                }
                for w in self.workers
            ],
            "shards": [
                {"shard": s.shard, "total": s.total, "done": s.done,
                 "rate_pps": round(s.rate_pps, 4)}
                for s in self.shards
            ],
            "updated_ts": round(self.updated_ts, 4),
        }


# ----------------------------------------------------------------------
# the streaming aggregator
# ----------------------------------------------------------------------
class LiveAggregator:
    """Fold sweep events / progress callbacks into :class:`SweepView`\\ s.

    Fabric path: feed raw ``events.jsonl`` dicts through :meth:`fold`
    (the caller owns the ``read_events`` offset, so delivery is
    exactly-once by construction).  Pool path: hand
    :meth:`observe_progress` to :class:`~repro.exec.runner.SweepRunner`
    as its 4-argument progress callback.  Both paths produce the same
    view model, so every renderer covers every execution mode.
    """

    def __init__(self, *, total: int = 0, keys: tuple[str, ...] = (),
                 shards: int = 0, lease_ttl_s: float = 10.0,
                 window_s: float = 30.0, source: str = "fabric",
                 queue_dir: str | None = None):
        self.source = source
        self.queue_dir = queue_dir
        self.total = int(total)
        self.shards = int(shards)
        self.lease_ttl_s = float(lease_ttl_s)
        self.window_s = float(window_s)
        self._shard_totals: dict[int, int] = {}
        for key in keys:
            shard = shard_of(key, self.shards)
            self._shard_totals[shard] = self._shard_totals.get(shard, 0) + 1
        self._done: set[str] = set()
        self._quarantined: set[str] = set()
        self._pool_done = 0
        self._pool_failed = 0
        self.cache_hits = 0
        self.duplicates = 0
        self.errors = 0
        self.expired = 0
        self.requeued = 0
        self.claims = 0
        self.worker_spawns = 0
        self.worker_exits = 0
        self.complete = False
        self.draining = False
        self._per_worker: dict[str, dict] = {}
        self._per_shard: dict[int, dict] = {}
        self._lease_live = 0
        self._lease_expiring = 0
        self._in_flight = 0
        self._first_ts: float | None = None
        self._last_ts: float | None = None
        self.estimator = RateEstimator(window_s=window_s)

    # -- shared helpers -------------------------------------------------
    def _touch(self, ts: float) -> None:
        if self._first_ts is None or ts < self._first_ts:
            self._first_ts = ts
        if self._last_ts is None or ts > self._last_ts:
            self._last_ts = ts

    def _worker(self, name: str) -> dict:
        entry = self._per_worker.get(name)
        if entry is None:
            entry = {"points": 0, "generation": 0, "last_ts": None,
                     "stamps": deque()}
            self._per_worker[name] = entry
        return entry

    def _stamp(self, stamps: deque, ts: float) -> None:
        stamps.append(ts)
        horizon = ts - self.window_s
        while stamps and stamps[0] < horizon:
            stamps.popleft()

    # -- fabric path ----------------------------------------------------
    def fold(self, event: dict) -> None:
        """Ingest one event (same accounting as the coordinator)."""
        kind = event.get("ev")
        ts = float(event.get("ts") or time.time())
        self._touch(ts)
        key = event.get("key")
        worker = event.get("worker")
        if worker:
            entry = self._worker(worker)
            entry["last_ts"] = ts
        if kind == "seed":
            self.total = max(self.total, int(event.get("total") or 0))
        elif kind == "worker-start":
            self.worker_spawns += 1
            entry = self._worker(worker or "?")
            entry["generation"] = int(event.get("generation") or 0)
        elif kind == "worker-exit":
            self.worker_exits += 1
        elif kind == "claim":
            self.claims += 1
        elif kind == "done":
            if key in self._done:
                self.duplicates += 1
                return
            self._done.add(key)
            if event.get("recovered") or event.get("cached"):
                self.cache_hits += 1
            entry = self._worker(worker or "?")
            entry["points"] += 1
            self._stamp(entry["stamps"], ts)
            shard = event.get("shard")
            if shard is None:
                shard = shard_of(key or "", self.shards)
            sentry = self._per_shard.setdefault(
                int(shard), {"done": 0, "stamps": deque()})
            sentry["done"] += 1
            self._stamp(sentry["stamps"], ts)
            self.estimator.observe(ts, len(self._done))
        elif kind == "error":
            self.errors += 1
        elif kind == "expired":
            self.expired += 1
            if key is not None and key not in self._done \
                    and key not in self._quarantined:
                self.requeued += 1
        elif kind == "quarantine":
            if key is not None:
                self._quarantined.add(key)
        elif kind == "drain":
            self.draining = True
        elif kind == "shutdown":
            self.complete = True

    def fold_many(self, events) -> None:
        for event in events:
            self.fold(event)

    # -- pool path ------------------------------------------------------
    def observe_progress(self, done: int, total: int, point, outcome: str,
                         now: float | None = None) -> None:
        """A 4-argument ``SweepRunner`` progress callback."""
        now = time.time() if now is None else now
        self._touch(now)
        self.total = max(self.total, int(total))
        if outcome == "failed":
            self._pool_failed += 1
        else:
            self._pool_done += 1
            if outcome == "cached":
                self.cache_hits += 1
            self.estimator.observe(now, self._pool_done)
        if self._pool_done + self._pool_failed >= self.total:
            self.complete = True

    # -- lease health (fabric only; fed by the watcher's lease scan) ----
    def lease_scan(self, leases, now: float | None = None) -> None:
        """Bucket the currently held leases into live vs expiring."""
        now = time.time() if now is None else now
        margin = self.lease_ttl_s / 3.0
        live = expiring = 0
        for lease in leases:
            deadline = float(lease.get("deadline") or 0.0)
            if deadline - now <= margin:
                expiring += 1
            else:
                live += 1
        self._lease_live = live
        self._lease_expiring = expiring
        self._in_flight = live + expiring

    # -- snapshot -------------------------------------------------------
    def snapshot(self, now: float | None = None) -> SweepView:
        now = time.time() if now is None else now
        if self.source == "pool":
            done, failed = self._pool_done, self._pool_failed
        else:
            done = len(self._done)
            failed = len(self._quarantined - self._done)
        pending = max(0, self.total - done - failed)
        complete = self.complete or (self.total > 0 and pending == 0)
        elapsed = 0.0
        if self._first_ts is not None:
            last = self._last_ts if complete else max(
                self._last_ts or now, now)
            elapsed = max(0.0, last - self._first_ts)

        def _rate(stamps: deque) -> float:
            if len(stamps) < 2:
                return 0.0
            span = max(stamps[-1] - stamps[0], 1e-9)
            return (len(stamps) - 1) / span

        workers = tuple(
            WorkerView(
                name=name,
                generation=entry["generation"],
                points=entry["points"],
                rate_pps=_rate(entry["stamps"]),
                last_seen_s=(None if entry["last_ts"] is None
                             else max(0.0, now - entry["last_ts"])),
            )
            for name, entry in sorted(self._per_worker.items())
        )
        shard_ids = sorted(set(self._shard_totals) | set(self._per_shard))
        shards = tuple(
            ShardView(
                shard=shard,
                total=self._shard_totals.get(shard, 0),
                done=self._per_shard.get(shard, {}).get("done", 0),
                rate_pps=_rate(self._per_shard.get(
                    shard, {}).get("stamps", deque())),
            )
            for shard in shard_ids
        )
        return SweepView(
            source=self.source,
            queue_dir=self.queue_dir,
            total=self.total,
            done=done,
            failed=failed,
            pending=pending,
            in_flight=self._in_flight,
            cache_hits=self.cache_hits,
            cache_hit_rate=(self.cache_hits / done if done else 0.0),
            duplicates=self.duplicates,
            errors=self.errors,
            expired=self.expired,
            requeued=self.requeued,
            claims=self.claims,
            worker_spawns=self.worker_spawns,
            worker_exits=self.worker_exits,
            rate_pps=self.estimator.rate(),
            overall_rate_pps=self.estimator.overall_rate(),
            eta_s=(0.0 if complete else self.estimator.eta_s(pending)),
            elapsed_s=elapsed,
            complete=complete,
            draining=self.draining,
            leases=LeaseHealth(
                live=self._lease_live,
                expiring=self._lease_expiring,
                reclaimed=self.expired,
                quarantined=len(self._quarantined),
            ),
            workers=workers,
            shards=shards,
            updated_ts=now,
        )


# ----------------------------------------------------------------------
# the queue watcher: LeaseTable tailing + lease scanning
# ----------------------------------------------------------------------
class QueueWatcher:
    """Incrementally tail one queue directory into live views.

    Read-only: tails ``events.jsonl`` from a persistent byte offset
    (torn tails never advance it -- the partial line is re-read whole on
    the next refresh) and scans the lease directory for health.  Safe to
    attach to a sweep in flight, from any process, at any time.
    """

    def __init__(self, queue_dir: str | Path, window_s: float = 30.0):
        from repro.exec.fabric import LeaseTable  # lazy: avoid exec<->telemetry cycle
        self.table = LeaseTable(queue_dir)
        self.window_s = window_s
        self.offset = 0
        self.aggregator: LiveAggregator | None = None

    def _load(self) -> LiveAggregator:
        meta = self.table.load()  # raises QueueError when no queue yet
        settings = meta.get("settings", {})
        self.aggregator = LiveAggregator(
            total=int(meta.get("total") or 0),
            keys=tuple(meta.get("keys", ())),
            shards=int(settings.get("shards") or 0),
            lease_ttl_s=float(settings.get("lease_ttl_s") or 10.0),
            window_s=self.window_s,
            source="fabric",
            queue_dir=str(self.table.directory),
        )
        return self.aggregator

    def _scan_leases(self) -> list[dict]:
        from repro.exec.fabric import _read_json
        leases = []
        try:
            entries = list(os.scandir(self.table.leases_dir))
        except OSError:
            return leases
        for entry in entries:
            if not entry.name.endswith(".json"):
                continue
            lease = _read_json(Path(entry.path))
            if lease is not None:
                leases.append(lease)
        return leases

    def refresh(self, now: float | None = None) -> SweepView:
        """Ingest everything new and return the current view."""
        aggregator = self.aggregator or self._load()
        events, self.offset = self.table.read_events(self.offset)
        aggregator.fold_many(events)
        aggregator.lease_scan(self._scan_leases(), now)
        return aggregator.snapshot(now)


# ----------------------------------------------------------------------
# renderers
# ----------------------------------------------------------------------
_ANSI_HOME = "\x1b[H\x1b[J"


def _bar(done: int, failed: int, total: int, width: int = 32) -> str:
    if total <= 0:
        return "." * width
    ok = int(width * done / total)
    bad = int(round(width * failed / total))
    bad = min(bad, width - ok)
    return "#" * ok + "x" * bad + "." * (width - ok - bad)


def render_terminal(view: SweepView, *, color: bool = True) -> str:
    """The multi-line text dashboard (no cursor control; caller repaints)."""

    def paint(text: str, code: str) -> str:
        return f"\x1b[{code}m{text}\x1b[0m" if color else text

    state = ("DONE" if view.complete
             else "DRAINING" if view.draining else "RUNNING")
    state = paint(state, "32" if view.complete and not view.failed
                  else "31" if view.failed else "33")
    where = view.queue_dir or "local pool"
    lines = [
        f"sweep @ {where} -- {state}   "
        f"(updated {time.strftime('%H:%M:%S', time.localtime(view.updated_ts))})",
        f"  [{_bar(view.done, view.failed, view.total)}] "
        f"{view.done}/{view.total} done"
        + (f", {paint(str(view.failed) + ' failed', '31')}" if view.failed
           else "")
        + f", {view.pending} pending"
        + (f" ({view.in_flight} in flight)" if view.in_flight else ""),
        f"  rate  {view.rate_pps:.2f} pts/s (window), "
        f"{view.overall_rate_pps:.2f} pts/s overall, "
        f"eta {_fmt_duration(view.eta_s)}, elapsed {_fmt_duration(view.elapsed_s)}",
        f"  leases  {view.leases.live} live / {view.leases.expiring} expiring "
        f"/ {view.leases.reclaimed} reclaimed / "
        f"{view.leases.quarantined} quarantined",
        f"  churn  {view.claims} claims, {view.errors} errors, "
        f"{view.requeued} requeued, {view.duplicates} duplicates, "
        f"{view.cache_hits} cache hits ({100.0 * view.cache_hit_rate:.0f}%)",
        f"  workers  {view.worker_spawns} started / {view.worker_exits} exited",
    ]
    for worker in view.workers:
        if worker.points == 0 and worker.last_seen_s is None:
            continue
        seen = ("never" if worker.last_seen_s is None
                else f"{worker.last_seen_s:.1f}s ago")
        lines.append(
            f"    {worker.name:<12} gen {worker.generation:<3} "
            f"{worker.points:>4} done  {worker.rate_pps:6.2f} pts/s  "
            f"seen {seen}"
        )
    active_shards = [s for s in view.shards if s.total or s.done]
    if active_shards:
        lines.append("  shards")
        for shard in active_shards:
            lines.append(
                f"    s{shard.shard:<3} {shard.done:>4}/{shard.total:<4} "
                f"{shard.rate_pps:6.2f} pts/s"
            )
    return "\n".join(lines)


_HTML_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="{refresh}">
<title>repro watch -- {where}</title>
<style>
  body {{ font-family: -apple-system, "Segoe UI", sans-serif; margin: 2em;
         background: #fafafa; color: #1a1a1a; }}
  h1 {{ font-size: 1.25em; }}
  .state {{ padding: 2px 10px; border-radius: 4px; color: white;
           background: {state_color}; }}
  .bar {{ width: 100%; max-width: 640px; height: 22px; background: #e0e0e0;
         border-radius: 4px; overflow: hidden; display: flex; }}
  .bar .ok {{ background: #2e7d32; height: 100%; width: {ok_pct:.2f}%; }}
  .bar .bad {{ background: #c62828; height: 100%; width: {bad_pct:.2f}%; }}
  table {{ border-collapse: collapse; margin-top: 1em; }}
  th, td {{ text-align: left; padding: 3px 14px 3px 0;
           border-bottom: 1px solid #ddd; font-size: 0.9em; }}
  .muted {{ color: #777; }}
</style>
</head>
<body>
<h1>repro watch -- {where} <span class="state">{state}</span></h1>
<div class="bar"><div class="ok"></div><div class="bad"></div></div>
<p>{done}/{total} done{failed_text}, {pending} pending ({in_flight} in flight)
&middot; {rate:.2f} pts/s &middot; eta {eta} &middot; elapsed {elapsed}</p>
<p class="muted">leases: {lease_live} live / {lease_expiring} expiring /
{lease_reclaimed} reclaimed / {lease_quarantined} quarantined &middot;
{claims} claims, {errors} errors, {requeued} requeued, {duplicates} duplicates,
{cache_hits} cache hits ({cache_hit_rate:.0f}%)</p>
{worker_table}
{shard_table}
<p class="muted">updated {updated} &middot; written atomically by
<code>repro watch</code>; this page refreshes itself every
{refresh}&nbsp;s.</p>
</body>
</html>
"""


def _html_table(title: str, headers, rows) -> str:
    if not rows:
        return ""
    head = "".join(f"<th>{_html.escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_html.escape(str(cell))}</td>"
                         for cell in row) + "</tr>"
        for row in rows
    )
    return (f"<h2 style='font-size:1em'>{_html.escape(title)}</h2>"
            f"<table><tr>{head}</tr>{body}</table>")


def render_html(view: SweepView, refresh_s: float = 2.0) -> str:
    """A self-contained, self-refreshing HTML dashboard (stdlib only)."""
    total = max(view.total, 1)
    state = ("done" if view.complete
             else "draining" if view.draining else "running")
    state_color = ("#c62828" if view.failed
                   else "#2e7d32" if view.complete else "#ef6c00")
    worker_rows = [
        (w.name, w.generation, w.points, f"{w.rate_pps:.2f}",
         "never" if w.last_seen_s is None else f"{w.last_seen_s:.1f}s ago")
        for w in view.workers if w.points or w.last_seen_s is not None
    ]
    shard_rows = [
        (f"s{s.shard}", f"{s.done}/{s.total}", f"{s.rate_pps:.2f}")
        for s in view.shards if s.total or s.done
    ]
    return _HTML_TEMPLATE.format(
        refresh=int(max(1, refresh_s)),
        where=_html.escape(view.queue_dir or "local pool"),
        state=_html.escape(state),
        state_color=state_color,
        ok_pct=100.0 * view.done / total,
        bad_pct=100.0 * view.failed / total,
        done=view.done,
        total=view.total,
        failed_text=(f", <b style='color:#c62828'>{view.failed} failed</b>"
                     if view.failed else ""),
        pending=view.pending,
        in_flight=view.in_flight,
        rate=view.rate_pps,
        eta=_fmt_duration(view.eta_s),
        elapsed=_fmt_duration(view.elapsed_s),
        lease_live=view.leases.live,
        lease_expiring=view.leases.expiring,
        lease_reclaimed=view.leases.reclaimed,
        lease_quarantined=view.leases.quarantined,
        claims=view.claims,
        errors=view.errors,
        requeued=view.requeued,
        duplicates=view.duplicates,
        cache_hits=view.cache_hits,
        cache_hit_rate=100.0 * view.cache_hit_rate,
        worker_table=_html_table(
            "workers", ("worker", "gen", "done", "pts/s", "last seen"),
            worker_rows),
        shard_table=_html_table(
            "shards", ("shard", "done", "pts/s"), shard_rows),
        updated=time.strftime("%H:%M:%S", time.localtime(view.updated_ts)),
    )


def write_html_atomic(path: str | Path, text: str) -> None:
    """Publish the dashboard page with a whole-file ``os.replace``.

    A reader (the browser's refresh) never observes a torn page, the
    same discipline as every other snapshot file in the queue.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class LiveMetricsExporter:
    """Project :class:`SweepView` snapshots into a scrapable registry.

    Pre-registers every ``watch_*`` gauge and the cumulative fabric
    counters at construction, so the very first scrape renders the full
    series set (zeros, not absences).  Thread-safe: :meth:`update` (the
    watch loop) and :meth:`render` (the HTTP handler) share one lock.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry or MetricsRegistry()
        self._lock = threading.Lock()
        self.registry.preregister(WATCH_COUNTER_HELP,
                                  gauges=WATCH_GAUGE_HELP)

    def update(self, view: SweepView) -> None:
        with self._lock:
            gauge = self.registry.gauge
            gauge("watch_points_total").set(view.total)
            gauge("watch_points_done").set(view.done)
            gauge("watch_points_failed").set(view.failed)
            gauge("watch_points_pending").set(view.pending)
            gauge("watch_rate_points_per_second").set(round(view.rate_pps, 6))
            gauge("watch_eta_seconds").set(
                -1.0 if view.eta_s is None else round(view.eta_s, 3))
            gauge("watch_leases_live").set(view.leases.live)
            gauge("watch_leases_expiring").set(view.leases.expiring)
            gauge("watch_workers_active").set(
                sum(1 for w in view.workers
                    if w.last_seen_s is not None
                    and w.last_seen_s <= _WORKER_LIVENESS_S))
            gauge("watch_cache_hit_rate").set(round(view.cache_hit_rate, 6))
            gauge("watch_sweep_complete").set(1 if view.complete else 0)
            for name, value in (
                ("fabric_lease_claims_total", view.claims),
                ("fabric_lease_expired_total", view.expired),
                ("fabric_requeued_total", view.requeued),
                ("fabric_done_duplicates_total", view.duplicates),
                ("fabric_worker_errors_total", view.errors),
                ("fabric_worker_spawns_total", view.worker_spawns),
                ("fabric_quarantined_total", view.leases.quarantined),
                ("fabric_recovered_total", view.cache_hits),
            ):
                counter = self.registry.counter(name)
                # cumulative event-log replays, not in-process increments:
                # publish the absolute count
                counter.value = value

    def render(self) -> str:
        with self._lock:
            return self.registry.render_prometheus()


#: A worker silent longer than this no longer counts as active.
_WORKER_LIVENESS_S = 30.0


class MetricsServer:
    """A minimal, threaded ``/metrics`` endpoint over ``http.server``.

    ``port=0`` binds an ephemeral port (``server.port`` reports it);
    requests are served from a daemon thread so a hung scraper can never
    stall the watch loop.  Only ``GET /metrics`` (and a bare ``/`` index
    pointing at it) exist -- this is an exposition endpoint, not a web
    app.
    """

    def __init__(self, render, host: str = "127.0.0.1", port: int = 0):
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (http.server API)
                path = self.path.split("?", 1)[0].rstrip("/")
                if path == "/metrics":
                    body = outer._render().encode("utf-8")
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "":
                    body = b"repro watch metrics endpoint; scrape /metrics\n"
                    ctype = "text/plain; charset=utf-8"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # quiet: the dashboard owns stdout
                pass

        self._render = render
        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        daemon=True)

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def address(self) -> str:
        """``host:port`` the server is bound to (port resolved when 0)."""
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    def start(self) -> "MetricsServer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()


def parse_serve_address(text: str) -> tuple[str, int]:
    """``:9095`` / ``9095`` / ``0.0.0.0:9095`` -> (host, port)."""
    text = str(text).strip()
    host, sep, port = text.rpartition(":")
    if not sep:
        host, port = "", text
    try:
        port_num = int(port)
    except ValueError as err:
        raise ValueError(f"invalid --serve address {text!r} "
                         f"(expected [HOST]:PORT)") from err
    return (host or "127.0.0.1", port_num)


# ----------------------------------------------------------------------
# the sweep progress line (pool + fabric CLI sweeps)
# ----------------------------------------------------------------------
class ProgressLine:
    """A ``SweepRunner`` progress callback rendering rate + ETA in place.

    Accepts the 4-argument ``(done, total, point, outcome)`` contract,
    drives the same :class:`RateEstimator` as the watch dashboard, and
    repaints a single carriage-returned line (throttled to
    ``min_interval_s``) so large sweeps do not drown their own output.
    Call :meth:`finish` once the sweep returns to terminate the line.
    """

    def __init__(self, total: int | None = None, stream=None,
                 min_interval_s: float = 0.1, window_s: float = 30.0,
                 clock=time.monotonic):
        import sys

        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self.clock = clock
        self.total = total
        self.failed = 0
        self.estimator = RateEstimator(window_s=window_s)
        self._completed = 0
        self._last_paint = None
        self._dirty = False

    def __call__(self, done: int, total: int, point, outcome: str) -> None:
        now = self.clock()
        self.total = total
        if outcome == "failed":
            self.failed += 1
        else:
            self._completed += 1
            self.estimator.observe(now, self._completed)
        if (self._last_paint is not None
                and now - self._last_paint < self.min_interval_s
                and done < total):
            return
        self._last_paint = now
        rate = self.estimator.rate() or self.estimator.overall_rate()
        eta = (0.0 if done >= total
               else self.estimator.eta_s(total - done - self.failed))
        line = (f"  [{done}/{total}] {rate:.2f} pts/s, "
                f"eta {_fmt_duration(eta)}")
        if self.failed:
            line += f", {self.failed} failed"
        try:
            self.stream.write("\r\x1b[K" + line)
            self.stream.flush()
        except (OSError, ValueError):
            return
        self._dirty = True

    def finish(self) -> None:
        """End the in-place line (newline) if anything was painted."""
        if self._dirty:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except (OSError, ValueError):
                pass
            self._dirty = False


__all__ = [
    "LiveAggregator",
    "LiveMetricsExporter",
    "MetricsServer",
    "ProgressLine",
    "QueueWatcher",
    "RateEstimator",
    "ShardView",
    "SweepView",
    "LeaseHealth",
    "WorkerView",
    "WATCH_COUNTER_HELP",
    "WATCH_GAUGE_HELP",
    "parse_serve_address",
    "render_html",
    "render_terminal",
    "shard_of",
    "write_html_atomic",
]
