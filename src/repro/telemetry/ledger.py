"""Persistent, append-only run ledger: every run leaves a record.

The paper's claims are comparative -- fine-grained vs. all-or-nothing
sprinting, CDOR vs. baseline mesh -- so results are only useful when
there is something to compare them *against*.  The ledger gives every
sweep / evaluation / benchmark run a durable, content-addressed record:
one JSON line per run under ``.repro/ledger/runs.jsonl`` carrying the
spec cache keys, the backend, the git revision, a configuration
fingerprint, wall/CPU time, per-point headline results (average latency,
throughput, ...) and the merged :class:`~repro.telemetry.MetricsRegistry`
snapshot.  :mod:`repro.telemetry.compare` diffs two such records;
``repro regress`` gates CI on the diff.

Durability model
----------------

Records are appended with a single ``os.write`` on an ``O_APPEND`` file
descriptor, so concurrent writers (parallel benchmark sessions, two
``SweepRunner`` processes sharing a ledger directory) interleave whole
lines, never bytes: the ledger stays valid JSONL without locking.
:meth:`Ledger.query` skips unparsable lines, so a reader racing a writer
mid-append sees every committed record and ignores the torn tail.

Recording is best-effort and *never* fails the run it observes: any
``OSError`` (read-only filesystem, quota, ...) is swallowed and the run
simply goes unrecorded.  Set ``REPRO_LEDGER=0`` to disable recording
entirely, ``REPRO_LEDGER_DIR`` to relocate the ledger directory.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

LEDGER_ENV = "REPRO_LEDGER"
LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"
DEFAULT_LEDGER_DIR = os.path.join(".repro", "ledger")
_LEDGER_FILENAME = "runs.jsonl"


@functools.lru_cache(maxsize=8)
def git_revision(start: str = ".") -> str | None:
    """The current commit hash, read straight from ``.git`` (no subprocess).

    Walks up from ``start`` to the nearest ``.git/HEAD``; resolves a
    symbolic ref through loose refs and ``packed-refs``.  Returns ``None``
    outside a git checkout -- ledger records are still written, just
    without provenance.
    """
    try:
        root = Path(start).resolve()
    except OSError:
        return None
    for candidate in (root, *root.parents):
        git_dir = candidate / ".git"
        head = git_dir / "HEAD"
        try:
            text = head.read_text(encoding="utf-8").strip()
        except OSError:
            continue
        if not text.startswith("ref:"):
            return text or None
        ref = text.split(None, 1)[1].strip()
        try:
            return (git_dir / ref).read_text(encoding="utf-8").strip() or None
        except OSError:
            pass
        try:
            for line in (git_dir / "packed-refs").read_text(encoding="utf-8").splitlines():
                if line.endswith(" " + ref):
                    return line.split(" ", 1)[0]
        except OSError:
            pass
        return None
    return None


def result_headline(result) -> dict[str, float]:
    """The per-point headline metrics a :class:`SimulationResult` contributes.

    Every value is a plain float so records survive a JSON round trip
    bit-for-bit; the metric names are the vocabulary
    :mod:`repro.telemetry.compare` applies its direction-aware policies to.
    """
    return {
        "avg_latency": float(result.avg_latency),
        "p95_latency": float(result.p95_latency),
        "throughput": float(result.accepted_flits_per_cycle),
        "packets_measured": float(result.packets_measured),
        "saturated": float(bool(result.saturated)),
    }


@dataclass(frozen=True)
class RunRecord:
    """One immutable ledger entry describing a completed run.

    ``points`` maps each spec cache key to that point's headline metrics
    (see :func:`result_headline`); ``headline`` carries run-level
    aggregates.  ``run_id`` is a content hash over the whole record body
    (timestamp included), so two byte-identical re-runs still get
    distinct, individually addressable ids.
    """

    run_id: str
    ts: float
    kind: str  # "sweep" | "evaluate" | "benchmark" | ad-hoc
    label: str | None = None
    backend: str | None = None
    git_rev: str | None = None
    fingerprint: str | None = None
    spec_keys: tuple[str, ...] = ()
    wall_s: float = 0.0
    cpu_s: float = 0.0
    points: dict = field(default_factory=dict)
    headline: dict = field(default_factory=dict)
    metrics: dict | None = None

    def to_json(self) -> dict:
        payload = {
            "run_id": self.run_id,
            "ts": self.ts,
            "kind": self.kind,
            "label": self.label,
            "backend": self.backend,
            "git_rev": self.git_rev,
            "fingerprint": self.fingerprint,
            "spec_keys": list(self.spec_keys),
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "points": self.points,
            "headline": self.headline,
            "metrics": self.metrics,
        }
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "RunRecord":
        return cls(
            run_id=str(payload["run_id"]),
            ts=float(payload["ts"]),
            kind=str(payload["kind"]),
            label=payload.get("label"),
            backend=payload.get("backend"),
            git_rev=payload.get("git_rev"),
            fingerprint=payload.get("fingerprint"),
            spec_keys=tuple(payload.get("spec_keys") or ()),
            wall_s=float(payload.get("wall_s") or 0.0),
            cpu_s=float(payload.get("cpu_s") or 0.0),
            points=dict(payload.get("points") or {}),
            headline=dict(payload.get("headline") or {}),
            metrics=payload.get("metrics"),
        )


class Ledger:
    """Append-only run history under one directory (default ``.repro/ledger``).

    >>> ledger = Ledger()
    >>> rec = ledger.record("sweep", spec_keys=keys, points=points, wall_s=dt)
    >>> base = ledger.baseline("nightly")          # newest record labelled so
    >>> last = ledger.latest(kind="sweep")
    """

    def __init__(self, directory: str | Path | None = None,
                 enabled: bool | None = None):
        if enabled is None:
            flag = os.environ.get(LEDGER_ENV, "1").strip().lower()
            enabled = flag not in ("0", "false", "no", "off")
        if directory is None:
            directory = os.environ.get(LEDGER_DIR_ENV) or DEFAULT_LEDGER_DIR
        self.directory = Path(directory)
        self.enabled = enabled

    @classmethod
    def disabled(cls) -> "Ledger":
        """A ledger that records nothing (for nested/internal runners)."""
        return cls(enabled=False)

    @property
    def path(self) -> Path:
        return self.directory / _LEDGER_FILENAME

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def record(self, kind: str, *, label: str | None = None,
               backend: str | None = None, spec_keys=(),
               wall_s: float = 0.0, cpu_s: float = 0.0,
               points: dict | None = None, headline: dict | None = None,
               metrics: dict | None = None, fingerprint: str | None = None,
               git_rev: str | None = None,
               ts: float | None = None) -> RunRecord | None:
        """Append one run record; returns it, or ``None`` when disabled.

        Best-effort: an unwritable ledger directory silently drops the
        record rather than failing the run being observed.
        """
        if not self.enabled:
            return None
        if ts is None:
            ts = time.time()
        if git_rev is None:
            git_rev = git_revision()
        body = {
            "ts": ts,
            "kind": kind,
            "label": label,
            "backend": backend,
            "git_rev": git_rev,
            "fingerprint": fingerprint,
            "spec_keys": list(spec_keys),
            "wall_s": wall_s,
            "cpu_s": cpu_s,
            "points": points or {},
            "headline": headline or {},
            "metrics": metrics,
        }
        blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
        run_id = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
        record = RunRecord.from_json(dict(body, run_id=run_id))
        line = json.dumps(record.to_json(), sort_keys=True,
                          separators=(",", ":")) + "\n"
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            # O_APPEND + a single write(2): POSIX appends the whole line
            # atomically, so concurrent recorders never interleave bytes.
            fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, line.encode("utf-8"))
            finally:
                os.close(fd)
        except OSError:
            return None
        return record

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def query(self, kind: str | None = None, label: str | None = None,
              backend: str | None = None,
              limit: int | None = None) -> list[RunRecord]:
        """Records in append order, oldest first, optionally filtered.

        Unparsable lines (a torn tail from a writer caught mid-append) are
        skipped, not raised.
        """
        try:
            raw = self.path.read_bytes()
        except OSError:
            return []
        records: list[RunRecord] = []
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                payload = json.loads(line.decode("utf-8"))
                record = RunRecord.from_json(payload)
            except (ValueError, KeyError, TypeError):
                continue  # torn or foreign line: tolerate, don't fail
            if kind is not None and record.kind != kind:
                continue
            if label is not None and record.label != label:
                continue
            if backend is not None and record.backend != backend:
                continue
            records.append(record)
        if limit is not None:
            records = records[-limit:]
        return records

    def latest(self, kind: str | None = None, label: str | None = None,
               backend: str | None = None) -> RunRecord | None:
        """The newest matching record, or ``None``."""
        records = self.query(kind=kind, label=label, backend=backend)
        return records[-1] if records else None

    def get(self, ref: str) -> RunRecord | None:
        """The record whose ``run_id`` matches ``ref`` exactly or uniquely
        by prefix (newest wins on an ambiguous prefix)."""
        if not ref:
            return None
        match = None
        for record in self.query():
            if record.run_id == ref:
                return record
            if record.run_id.startswith(ref):
                match = record  # keep scanning: newest prefix match wins
        return match

    def latest_with_point(self, key: str,
                          kind: str | None = None) -> RunRecord | None:
        """The newest record whose ``points`` payload contains ``key``.

        The service front door uses this as the durable fallback for
        ``GET /v1/results/{cache_key}``: even after the result cache is
        wiped (or the server restarts memory-only), the per-point
        headline metrics recorded at run time remain retrievable.
        """
        for record in reversed(self.query(kind=kind)):
            if key in record.points:
                return record
        return None

    def baseline(self, ref: str | None = None,
                 kind: str | None = None) -> RunRecord | None:
        """Resolve a baseline reference to a record.

        ``ref`` may be ``None`` / ``"latest"`` (the newest record), a run
        id or unique id prefix, or a label (the newest record carrying
        it).  Returns ``None`` when nothing matches.
        """
        if ref is None or ref == "latest":
            return self.latest(kind=kind)
        record = self.get(ref)
        if record is not None:
            return record
        return self.latest(kind=kind, label=ref)


__all__ = [
    "DEFAULT_LEDGER_DIR",
    "LEDGER_DIR_ENV",
    "LEDGER_ENV",
    "Ledger",
    "RunRecord",
    "git_revision",
    "result_headline",
]
