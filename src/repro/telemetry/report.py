"""Trace-file analysis: span trees, top time sinks, metrics dumps.

Backs the ``repro report <trace.jsonl>`` CLI command.  Consumes the JSONL
schema documented in :mod:`repro.telemetry.tracer` and renders:

- the span tree (nesting, wall/CPU time, per-span sample/event counts);
- the top time sinks by *self* wall time (own time minus children);
- the Prometheus metrics dump embedded in the trace (if present).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry.metrics import MetricsRegistry


@dataclass
class SpanNode:
    """One reconstructed span of a trace."""

    id: str
    name: str
    parent: str | None
    attrs: dict = field(default_factory=dict)
    wall_s: float = 0.0
    cpu_s: float = 0.0
    ended: bool = False
    children: list["SpanNode"] = field(default_factory=list)
    events: int = 0
    samples: int = 0

    @property
    def child_wall_s(self) -> float:
        return sum(child.wall_s for child in self.children)

    @property
    def self_wall_s(self) -> float:
        """Wall time not accounted to child spans (clipped at zero:
        parallel children can sum past the parent's wall clock)."""
        return max(0.0, self.wall_s - self.child_wall_s)


def load_trace(path: str | Path) -> list[dict]:
    """Read a JSONL trace file into a list of event dicts."""
    events = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as err:
                raise ValueError(
                    f"{path}:{line_number}: not a JSON trace line ({err})"
                ) from None
    return events


def build_tree(events: list[dict]) -> list[SpanNode]:
    """Reconstruct the span forest (roots in file order) from events.

    Tolerant of truncated traces: spans with no end event keep zero
    wall time and are marked unfinished; orphaned children (parent id
    never seen, e.g. a lost worker payload) are promoted to roots.
    """
    spans: dict[str, SpanNode] = {}
    roots: list[SpanNode] = []
    for event in events:
        kind = event.get("ev")
        if kind == "begin":
            node = SpanNode(
                id=event["id"],
                name=event.get("name", "?"),
                parent=event.get("parent"),
                attrs=dict(event.get("attrs") or {}),
            )
            spans[node.id] = node
        elif kind == "end":
            node = spans.get(event.get("id"))
            if node is not None:
                node.wall_s = float(event.get("wall_s", 0.0))
                node.cpu_s = float(event.get("cpu_s", 0.0))
                node.attrs.update(event.get("attrs") or {})
                node.ended = True
        elif kind == "annot":
            node = spans.get(event.get("span"))
            if node is not None:
                node.events += 1
        elif kind == "sample":
            node = spans.get(event.get("span"))
            if node is not None:
                node.samples += 1
    for node in spans.values():
        parent = spans.get(node.parent) if node.parent is not None else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    return roots


def _format_attrs(attrs: dict, limit: int = 4) -> str:
    if not attrs:
        return ""
    shown = list(attrs.items())[:limit]
    body = ", ".join(f"{k}={v}" for k, v in shown)
    if len(attrs) > limit:
        body += ", ..."
    return f" ({body})"


def render_span_tree(
    roots: list[SpanNode], max_children: int = 24, indent: str = "  "
) -> str:
    """An indented text rendering of the span forest."""
    lines: list[str] = []

    def visit(node: SpanNode, depth: int) -> None:
        timing = (
            f"{node.wall_s * 1e3:.1f} ms wall, {node.cpu_s * 1e3:.1f} ms cpu"
            if node.ended
            else "unfinished"
        )
        extras = ""
        if node.samples:
            extras += f" [{node.samples} samples]"
        if node.events:
            extras += f" [{node.events} events]"
        lines.append(
            f"{indent * depth}{node.name}  {timing}"
            f"{extras}{_format_attrs(node.attrs)}"
        )
        shown = node.children[:max_children]
        for child in shown:
            visit(child, depth + 1)
        hidden = len(node.children) - len(shown)
        if hidden > 0:
            hidden_wall = sum(c.wall_s for c in node.children[max_children:])
            lines.append(
                f"{indent * (depth + 1)}... ({hidden} more children, "
                f"{hidden_wall * 1e3:.1f} ms wall)"
            )

    for root in roots:
        visit(root, 0)
    return "\n".join(lines)


def top_sinks(roots: list[SpanNode], limit: int = 10) -> list[tuple[str, float, float, int]]:
    """``(name, self_wall_s, total_wall_s, count)`` aggregated by span name,
    sorted by summed self time descending."""
    totals: dict[str, list[float]] = {}
    stack = list(roots)
    while stack:
        node = stack.pop()
        entry = totals.setdefault(node.name, [0.0, 0.0, 0])
        entry[0] += node.self_wall_s
        entry[1] += node.wall_s
        entry[2] += 1
        stack.extend(node.children)
    ranked = sorted(totals.items(), key=lambda item: -item[1][0])
    return [
        (name, self_s, total_s, count)
        for name, (self_s, total_s, count) in ranked[:limit]
    ]


def metrics_snapshot(events: list[dict]) -> dict | None:
    """The last embedded metrics snapshot of a trace (or None)."""
    snapshot = None
    for event in events:
        if event.get("ev") == "metrics":
            snapshot = event.get("data")
    return snapshot


def render_metrics(snapshot: dict) -> str:
    """Render an embedded metrics snapshot as Prometheus text."""
    registry = MetricsRegistry(enabled=True)
    registry.merge(snapshot)
    return registry.render_prometheus()


def render_report(path: str | Path, sink_limit: int = 10) -> str:
    """The full ``repro report`` output for one trace file."""
    events = load_trace(path)
    roots = build_tree(events)
    sections: list[str] = []
    if roots:
        sections.append("span tree\n---------")
        sections.append(render_span_tree(roots))
        sinks = top_sinks(roots, limit=sink_limit)
        if sinks:
            width = max(len(name) for name, *_ in sinks)
            rows = [
                f"{name.ljust(width)}  self {self_s * 1e3:9.1f} ms   "
                f"total {total_s * 1e3:9.1f} ms   x{count}"
                for name, self_s, total_s, count in sinks
            ]
            sections.append("top time sinks (self wall time)\n"
                            "-------------------------------")
            sections.append("\n".join(rows))
    else:
        sections.append(f"no spans in {path}")
    snapshot = metrics_snapshot(events)
    if snapshot:
        sections.append("metrics (prometheus text)\n-------------------------")
        sections.append(render_metrics(snapshot).rstrip("\n"))
    return "\n\n".join(sections)


__all__ = [
    "SpanNode",
    "build_tree",
    "load_trace",
    "metrics_snapshot",
    "render_metrics",
    "render_report",
    "render_span_tree",
    "top_sinks",
]
