"""Trace-file analysis: span trees, top time sinks, metrics dumps.

Backs the ``repro report <trace.jsonl>`` CLI command.  Consumes the JSONL
schema documented in :mod:`repro.telemetry.tracer` and renders:

- the span tree (nesting, wall/CPU time, per-span sample/event counts);
- the top time sinks by *self* wall time (own time minus children);
- the Prometheus metrics dump embedded in the trace (if present).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry.metrics import MetricsRegistry


@dataclass
class SpanNode:
    """One reconstructed span of a trace."""

    id: str
    name: str
    parent: str | None
    attrs: dict = field(default_factory=dict)
    wall_s: float = 0.0
    cpu_s: float = 0.0
    ended: bool = False
    children: list["SpanNode"] = field(default_factory=list)
    events: int = 0
    samples: int = 0

    @property
    def child_wall_s(self) -> float:
        return sum(child.wall_s for child in self.children)

    @property
    def self_wall_s(self) -> float:
        """Wall time not accounted to child spans (clipped at zero:
        parallel children can sum past the parent's wall clock)."""
        return max(0.0, self.wall_s - self.child_wall_s)


def load_trace(path: str | Path) -> list[dict]:
    """Read a JSONL trace file into a list of event dicts."""
    events = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as err:
                raise ValueError(
                    f"{path}:{line_number}: not a JSON trace line ({err})"
                ) from None
    return events


def build_tree(events: list[dict]) -> list[SpanNode]:
    """Reconstruct the span forest (roots in file order) from events.

    Tolerant of truncated traces: spans with no end event keep zero
    wall time and are marked unfinished; orphaned children (parent id
    never seen, e.g. a lost worker payload) are promoted to roots.
    """
    spans: dict[str, SpanNode] = {}
    roots: list[SpanNode] = []
    for event in events:
        kind = event.get("ev")
        if kind == "begin":
            node = SpanNode(
                id=event["id"],
                name=event.get("name", "?"),
                parent=event.get("parent"),
                attrs=dict(event.get("attrs") or {}),
            )
            spans[node.id] = node
        elif kind == "end":
            node = spans.get(event.get("id"))
            if node is not None:
                node.wall_s = float(event.get("wall_s", 0.0))
                node.cpu_s = float(event.get("cpu_s", 0.0))
                node.attrs.update(event.get("attrs") or {})
                node.ended = True
        elif kind == "annot":
            node = spans.get(event.get("span"))
            if node is not None:
                node.events += 1
        elif kind == "sample":
            node = spans.get(event.get("span"))
            if node is not None:
                node.samples += 1
    for node in spans.values():
        parent = spans.get(node.parent) if node.parent is not None else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    return roots


def _format_attrs(attrs: dict, limit: int = 4) -> str:
    if not attrs:
        return ""
    shown = list(attrs.items())[:limit]
    body = ", ".join(f"{k}={v}" for k, v in shown)
    if len(attrs) > limit:
        body += ", ..."
    return f" ({body})"


def describe_span(node: SpanNode) -> str:
    """The default one-line description of a span (timing + attrs)."""
    timing = (
        f"{node.wall_s * 1e3:.1f} ms wall, {node.cpu_s * 1e3:.1f} ms cpu"
        if node.ended
        else "unfinished"
    )
    extras = ""
    if node.samples:
        extras += f" [{node.samples} samples]"
    if node.events:
        extras += f" [{node.events} events]"
    return f"{node.name}  {timing}{extras}{_format_attrs(node.attrs)}"


def render_span_tree(
    roots: list[SpanNode], max_children: int = 24, indent: str = "  ",
    describe=None,
) -> str:
    """An indented text rendering of the span forest.

    ``describe`` maps a node to its line body (defaults to
    :func:`describe_span`); other consumers -- e.g. the cross-run
    drill-down in :mod:`repro.telemetry.compare` -- reuse the tree walk
    with their own formatting.
    """
    lines: list[str] = []
    fmt = describe if describe is not None else describe_span

    def visit(node: SpanNode, depth: int) -> None:
        lines.append(f"{indent * depth}{fmt(node)}")
        shown = node.children[:max_children]
        for child in shown:
            visit(child, depth + 1)
        hidden = len(node.children) - len(shown)
        if hidden > 0:
            hidden_wall = sum(c.wall_s for c in node.children[max_children:])
            lines.append(
                f"{indent * (depth + 1)}... ({hidden} more children, "
                f"{hidden_wall * 1e3:.1f} ms wall)"
            )

    for root in roots:
        visit(root, 0)
    return "\n".join(lines)


def top_sinks(roots: list[SpanNode], limit: int = 10) -> list[tuple[str, float, float, int]]:
    """``(name, self_wall_s, total_wall_s, count)`` aggregated by span name,
    sorted by summed self time descending."""
    totals: dict[str, list[float]] = {}
    stack = list(roots)
    while stack:
        node = stack.pop()
        entry = totals.setdefault(node.name, [0.0, 0.0, 0])
        entry[0] += node.self_wall_s
        entry[1] += node.wall_s
        entry[2] += 1
        stack.extend(node.children)
    ranked = sorted(totals.items(), key=lambda item: -item[1][0])
    return [
        (name, self_s, total_s, count)
        for name, (self_s, total_s, count) in ranked[:limit]
    ]


def metrics_snapshot(events: list[dict]) -> dict | None:
    """The last embedded metrics snapshot of a trace (or None)."""
    snapshot = None
    for event in events:
        if event.get("ev") == "metrics":
            snapshot = event.get("data")
    return snapshot


_LABEL_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="([^"]*)"')


def parse_prometheus(text: str) -> dict:
    """Parse Prometheus text exposition back into a mergeable snapshot.

    The inverse of :meth:`MetricsRegistry.render_prometheus` for the
    subset that renderer emits, so a ``.prom`` sidecar written by
    ``Telemetry.save`` can be re-read by ``repro report --metrics`` (and
    merged into a registry like any worker snapshot).  Histogram series
    (``_bucket``/``_sum``/``_count``) are folded back into one histogram
    state; unknown comment lines are ignored.
    """
    kinds: dict[str, str] = {}
    help_text: dict[str, str] = {}
    scalars: dict[tuple, float] = {}
    hists: dict[tuple, dict] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                kinds[parts[2]] = parts[3].strip()
            elif len(parts) >= 4 and parts[1] == "HELP":
                help_text[parts[2]] = parts[3]
            continue
        left, _, value_text = line.rpartition(" ")
        if not left:
            continue
        try:
            value = float(value_text)
        except ValueError:
            continue
        if left.endswith("}") and "{" in left:
            name, _, label_body = left.partition("{")
            labels = dict(_LABEL_RE.findall(label_body[:-1]))
        else:
            name, labels = left, {}
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)]
            if name.endswith(suffix) and kinds.get(base) == "histogram":
                le = labels.pop("le", None)
                key = (base, tuple(sorted(labels.items())))
                state = hists.setdefault(key, {"le": {}, "sum": 0.0, "count": 0})
                if suffix == "_bucket":
                    if le is not None and le != "+Inf":
                        state["le"][float(le)] = int(value)
                elif suffix == "_sum":
                    state["sum"] = value
                else:
                    state["count"] = int(value)
                break
        else:
            key = (name, tuple(sorted(labels.items())))
            scalars[key] = value
    metrics = []
    for (name, label_key), value in scalars.items():
        kind = kinds.get(name, "gauge")
        if value == int(value):
            value = int(value)  # "8" -> 8, so a re-render matches the source
        metrics.append((name, label_key, kind, value))
    for (name, label_key), state in hists.items():
        buckets = tuple(sorted(state["le"]))
        counts, previous = [], 0
        for bound in buckets:
            cumulative = state["le"][bound]
            counts.append(cumulative - previous)
            previous = cumulative
        counts.append(max(0, state["count"] - previous))  # +Inf overflow
        metrics.append((name, label_key, "histogram",
                        (buckets, tuple(counts), state["count"], state["sum"])))
    return {"metrics": metrics, "help": help_text}


def estimate_quantile(buckets, counts, count: int, q: float) -> float:
    """Prometheus-style quantile estimate from cumulative-bucket counts.

    Linear interpolation inside the bucket the target rank falls in;
    ranks landing in the ``+Inf`` overflow bucket are clamped to the
    highest finite bound.
    """
    if count <= 0:
        return 0.0
    target = q * count
    cumulative, lower = 0, 0.0
    for bound, bucket_count in zip(buckets, counts):
        if bucket_count > 0 and cumulative + bucket_count >= target:
            fraction = (target - cumulative) / bucket_count
            return lower + (float(bound) - lower) * fraction
        cumulative += bucket_count
        lower = float(bound)
    return float(buckets[-1]) if buckets else 0.0


def _label_suffix(label_key: tuple) -> str:
    if not label_key:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in label_key) + "}"


def render_metrics(snapshot: dict) -> str:
    """Render a metrics snapshot for humans.

    Counters and gauges keep the Prometheus text form; histograms are
    summarized as p50/p95/p99 quantile estimates (with count and sum)
    instead of raw cumulative-bucket dumps.
    """
    registry = MetricsRegistry(enabled=True)
    registry.merge(snapshot)
    merged = registry.snapshot()
    scalars = MetricsRegistry(enabled=True)
    scalar_items, histogram_lines = [], []
    for name, label_key, kind, state in sorted(
        merged["metrics"], key=lambda item: (item[0], item[1])
    ):
        if kind == "histogram":
            buckets, counts, count, total = state
            quantiles = "  ".join(
                f"p{int(q * 100)}={estimate_quantile(buckets, counts, count, q):.3g}"
                for q in (0.50, 0.95, 0.99)
            )
            histogram_lines.append(
                f"{name}{_label_suffix(label_key)}  {quantiles}  "
                f"(count={count}, sum={total:.6g})"
            )
        else:
            scalar_items.append((name, label_key, kind, state))
    scalars.merge({"metrics": scalar_items, "help": merged.get("help", {})})
    sections = []
    text = scalars.render_prometheus().rstrip("\n")
    if text:
        sections.append(text)
    if histogram_lines:
        sections.append("# histograms (quantile estimates)\n"
                        + "\n".join(histogram_lines))
    return "\n".join(sections) + "\n"


def render_report(path: str | Path, sink_limit: int = 10,
                  metrics_path: str | Path | None = None) -> str:
    """The full ``repro report`` output for one trace file.

    ``metrics_path`` names a Prometheus ``.prom`` sidecar (as written by
    ``Telemetry.save`` / ``repro sweep --metrics``); when given it is the
    source of the metrics section, replacing the snapshot embedded in the
    trace (they describe the same run, so merging would double-count).
    """
    events = load_trace(path)
    roots = build_tree(events)
    sections: list[str] = []
    if roots:
        sections.append("span tree\n---------")
        sections.append(render_span_tree(roots))
        sinks = top_sinks(roots, limit=sink_limit)
        if sinks:
            width = max(len(name) for name, *_ in sinks)
            rows = [
                f"{name.ljust(width)}  self {self_s * 1e3:9.1f} ms   "
                f"total {total_s * 1e3:9.1f} ms   x{count}"
                for name, self_s, total_s, count in sinks
            ]
            sections.append("top time sinks (self wall time)\n"
                            "-------------------------------")
            sections.append("\n".join(rows))
    else:
        sections.append(f"no spans in {path}")
    if metrics_path is not None:
        snapshot = parse_prometheus(
            Path(metrics_path).read_text(encoding="utf-8")
        )
    else:
        snapshot = metrics_snapshot(events)
    if snapshot and snapshot.get("metrics"):
        sections.append("metrics (prometheus text)\n-------------------------")
        sections.append(render_metrics(snapshot).rstrip("\n"))
    return "\n\n".join(sections)


__all__ = [
    "SpanNode",
    "build_tree",
    "describe_span",
    "estimate_quantile",
    "load_trace",
    "metrics_snapshot",
    "parse_prometheus",
    "render_metrics",
    "render_report",
    "render_span_tree",
    "top_sinks",
]
