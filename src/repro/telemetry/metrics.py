"""Metrics registry: counters, gauges and histograms, no-op when disabled.

One :class:`MetricsRegistry` per process (or per experiment) hands out
instrument handles.  Callers hold the handle and update it on the hot
path; a *disabled* registry hands out a single shared
:data:`NULL_INSTRUMENT` whose methods do nothing and allocate nothing, so
instrumented code pays one no-op method call when telemetry is off.

Registries are mergeable: :meth:`MetricsRegistry.snapshot` produces a
plain picklable structure and :meth:`MetricsRegistry.merge` folds such a
snapshot back in (counters and histograms add, gauges last-write-win).
That is what carries metrics from sweep worker processes back to the
parent.  :meth:`MetricsRegistry.render_prometheus` emits the standard
Prometheus text exposition format.
"""

from __future__ import annotations

import bisect

#: Default histogram buckets (seconds-flavoured, but unit-agnostic).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)


class NullInstrument:
    """The do-nothing instrument a disabled registry hands out.

    A single shared instance answers every ``counter()``/``gauge()``/
    ``histogram()`` call, so disabled-mode updates are one attribute
    lookup plus an empty method call -- no branching, no allocation.
    """

    __slots__ = ()

    def inc(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass


NULL_INSTRUMENT = NullInstrument()


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins on merge)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = 0.0

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        self.value += amount


class Histogram:
    """A distribution, bucketed Prometheus-style (cumulative ``le``)."""

    __slots__ = ("buckets", "counts", "count", "sum")
    kind = "histogram"

    def __init__(self, buckets=DEFAULT_BUCKETS):
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +inf overflow bucket
        self.count = 0
        self.sum = 0.0

    def observe(self, value):
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_text(label_key: tuple) -> str:
    if not label_key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in label_key)
    return "{" + inner + "}"


class MetricsRegistry:
    """A named collection of counters/gauges/histograms.

    ``enabled=False`` turns every instrument request into the shared
    :data:`NULL_INSTRUMENT`; nothing is recorded and snapshots are empty.
    Instrument handles are idempotent: asking twice for the same
    ``(name, labels)`` returns the same object, so hot loops can either
    cache the handle or re-request it.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        # (name, label_key) -> instrument
        self._instruments: dict[tuple, object] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}

    # ------------------------------------------------------------------
    def _get(self, cls, name: str, help: str, labels: dict, **kwargs):
        if not self.enabled:
            return NULL_INSTRUMENT
        known = self._kinds.get(name)
        if known is not None and known != cls.kind:
            raise ValueError(
                f"metric {name!r} already registered as a {known}, "
                f"not a {cls.kind}"
            )
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(**kwargs)
            self._instruments[key] = instrument
            self._kinds[name] = cls.kind
            if help:
                self._help[name] = help
        return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self, name: str, help: str = "", buckets=DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def preregister(self, counters: dict[str, str] | None = None, *,
                    gauges: dict[str, str] | None = None,
                    histograms: dict[str, str] | None = None) -> None:
        """Eagerly register ``name -> help`` batches of instruments.

        Subsystems call this at the start of an instrumented run so every
        declared series renders (as zero) in the Prometheus dump even
        when the run never touched it -- an absent metric is
        indistinguishable from a broken one, a zero is an answer.  This
        is also what keeps snapshot/merge consistent across runs: a
        churn-free sweep and a churny one export the same series set.
        """
        for name, help_text in (counters or {}).items():
            self.counter(name, help_text)
        for name, help_text in (gauges or {}).items():
            self.gauge(name, help_text)
        for name, help_text in (histograms or {}).items():
            self.histogram(name, help_text)

    def __len__(self) -> int:
        return len(self._instruments)

    def value(self, name: str, **labels):
        """The current value of a counter/gauge (None when absent)."""
        instrument = self._instruments.get((name, _label_key(labels)))
        return None if instrument is None else instrument.value

    def series(self, name: str) -> dict:
        """Every labelled value of one counter/gauge: label-key -> value.

        Label keys are the sorted ``(label, value)`` tuples the registry
        stores internally -- ``()`` for the unlabelled series.  Lets
        per-client accounting (e.g. the service budget meter) enumerate
        who has been charged without knowing the client set up front.
        """
        return {
            label_key: instrument.value
            for (metric, label_key), instrument in self._instruments.items()
            if metric == name and instrument.kind != "histogram"
        }

    # ------------------------------------------------------------------
    # snapshot / merge: the cross-process aggregation contract
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A plain, picklable rendering of every instrument."""
        metrics = []
        for (name, label_key), instrument in self._instruments.items():
            if instrument.kind == "histogram":
                state = (
                    instrument.buckets,
                    tuple(instrument.counts),
                    instrument.count,
                    instrument.sum,
                )
            else:
                state = instrument.value
            metrics.append((name, label_key, instrument.kind, state))
        return {"metrics": metrics, "help": dict(self._help)}

    def merge(self, snapshot: dict | None) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into self.

        Counters and histograms accumulate; gauges take the incoming
        value (last write wins).  A disabled registry ignores merges.
        """
        if not self.enabled or not snapshot:
            return
        for name, help_text in snapshot.get("help", {}).items():
            self._help.setdefault(name, help_text)
        for name, label_key, kind, state in snapshot.get("metrics", ()):
            labels = dict(label_key)
            if kind == "counter":
                self.counter(name, **labels).inc(state)
            elif kind == "gauge":
                self.gauge(name, **labels).set(state)
            elif kind == "histogram":
                buckets, counts, count, total = state
                histogram = self.histogram(name, buckets=tuple(buckets), **labels)
                if histogram.buckets != tuple(buckets):
                    raise ValueError(
                        f"histogram {name!r} bucket mismatch on merge"
                    )
                for index, bucket_count in enumerate(counts):
                    histogram.counts[index] += bucket_count
                histogram.count += count
                histogram.sum += total
            else:
                raise ValueError(f"unknown metric kind {kind!r} in snapshot")

    # ------------------------------------------------------------------
    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        by_name: dict[str, list[tuple[tuple, object]]] = {}
        for (name, label_key), instrument in sorted(
            self._instruments.items(), key=lambda item: item[0]
        ):
            by_name.setdefault(name, []).append((label_key, instrument))
        lines: list[str] = []
        for name, series in by_name.items():
            kind = self._kinds[name]
            help_text = self._help.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for label_key, instrument in series:
                if kind == "histogram":
                    cumulative = 0
                    for bucket, bucket_count in zip(
                        instrument.buckets, instrument.counts
                    ):
                        cumulative += bucket_count
                        le_labels = label_key + (("le", repr(float(bucket))),)
                        lines.append(
                            f"{name}_bucket{_label_text(le_labels)} {cumulative}"
                        )
                    inf_labels = label_key + (("le", "+Inf"),)
                    lines.append(
                        f"{name}_bucket{_label_text(inf_labels)} {instrument.count}"
                    )
                    lines.append(
                        f"{name}_sum{_label_text(label_key)} {instrument.sum}"
                    )
                    lines.append(
                        f"{name}_count{_label_text(label_key)} {instrument.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_label_text(label_key)} {instrument.value}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NullInstrument",
]
