"""Statistical cross-run diffing over ledger records.

Two :class:`~repro.telemetry.ledger.RunRecord`\\ s are compared point by
point: every spec key the runs share yields paired deltas for each
headline metric, judged by a direction-aware :class:`MetricPolicy`
(latency up is a regression, throughput down is); points present in only
one run are reported explicitly as added/removed rather than silently
dropped.  A delta only counts when it clears *both* the relative
threshold and a minimum absolute change, so microscopic jitter on tiny
values never trips the gate.

Backs ``repro compare RUN_A RUN_B`` and ``repro regress --baseline REF``
(exit 4 on regression); the terminal drill-down reuses the span-tree
renderer from :mod:`repro.telemetry.report`, and :func:`render_html`
emits a self-contained page for CI artifacts.
"""

from __future__ import annotations

import html
import json
from dataclasses import dataclass, field

from repro.telemetry.ledger import RunRecord
from repro.telemetry.report import SpanNode, render_span_tree

#: Slack so an injected delta of exactly the threshold still trips it.
_REL_EPSILON = 1e-12


@dataclass(frozen=True)
class MetricPolicy:
    """How one headline metric is judged across runs.

    ``direction`` is ``"lower"`` (smaller is better: latency) or
    ``"higher"`` (bigger is better: throughput).  A change regresses only
    when its magnitude clears both ``rel_threshold`` (fraction of the
    baseline value) and ``min_abs`` (in the metric's own unit).
    """

    direction: str = "lower"
    rel_threshold: float = 0.10
    min_abs: float = 0.0


#: Default judgement for the :func:`~repro.telemetry.ledger.result_headline`
#: vocabulary.  Latency thresholds carry a min-abs guard in cycles so a
#: near-zero-load point cannot regress on sub-flit noise.
DEFAULT_POLICIES: dict[str, MetricPolicy] = {
    "avg_latency": MetricPolicy("lower", 0.10, 0.5),
    "p95_latency": MetricPolicy("lower", 0.15, 1.0),
    "throughput": MetricPolicy("higher", 0.10, 0.005),
    "packets_measured": MetricPolicy("higher", 0.10, 1.0),
    "saturated": MetricPolicy("lower", 0.0, 0.5),
    "failures": MetricPolicy("lower", 0.0, 0.5),
    # evaluate()-level headline metrics
    "speedup": MetricPolicy("higher", 0.05, 0.01),
    "sprint_duration_s": MetricPolicy("higher", 0.05, 0.01),
    "core_power_w": MetricPolicy("lower", 0.05, 0.05),
    "chip_power_w": MetricPolicy("lower", 0.05, 0.05),
    "network_power_w": MetricPolicy("lower", 0.05, 0.01),
    "peak_temperature_k": MetricPolicy("lower", 0.01, 0.25),
}


@dataclass(frozen=True)
class Delta:
    """One paired (baseline, candidate) observation of one metric."""

    point: str  # spec cache key, or "headline" for run-level aggregates
    metric: str
    baseline: float
    candidate: float
    status: str  # "ok" | "regressed" | "improved"

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline

    @property
    def rel(self) -> float:
        """Relative change against the baseline (inf from a zero base)."""
        if self.baseline == 0.0:
            return 0.0 if self.delta == 0.0 else float("inf")
        return self.delta / abs(self.baseline)

    def to_json(self) -> dict:
        return {
            "point": self.point,
            "metric": self.metric,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "delta": self.delta,
            "rel": None if self.rel in (float("inf"), float("-inf")) else self.rel,
            "status": self.status,
        }


def _judge(metric: str, base: float, cand: float,
           policies: dict[str, MetricPolicy]) -> Delta:
    policy = policies.get(metric, MetricPolicy())
    delta = cand - base
    worse = delta > 0 if policy.direction == "lower" else delta < 0
    magnitude = abs(delta)
    rel = magnitude / abs(base) if base != 0.0 else (
        float("inf") if magnitude else 0.0
    )
    significant = (
        magnitude >= policy.min_abs
        and rel + _REL_EPSILON >= policy.rel_threshold
    )
    status = "ok"
    if significant:
        status = "regressed" if worse else "improved"
    return Delta(point="", metric=metric, baseline=base, candidate=cand,
                 status=status)


@dataclass
class Comparison:
    """The full outcome of diffing a candidate run against a baseline."""

    baseline: RunRecord
    candidate: RunRecord
    deltas: list[Delta] = field(default_factory=list)
    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[Delta]:
        return [d for d in self.deltas if d.status == "regressed"]

    @property
    def improvements(self) -> list[Delta]:
        return [d for d in self.deltas if d.status == "improved"]

    @property
    def regressed(self) -> bool:
        """True when any metric regressed or baseline points disappeared
        (lost coverage is a regression of the experiment, not a wash)."""
        return bool(self.regressions) or bool(self.removed)

    def to_json(self) -> dict:
        return {
            "baseline": {"run_id": self.baseline.run_id,
                         "ts": self.baseline.ts,
                         "label": self.baseline.label,
                         "git_rev": self.baseline.git_rev},
            "candidate": {"run_id": self.candidate.run_id,
                          "ts": self.candidate.ts,
                          "label": self.candidate.label,
                          "git_rev": self.candidate.git_rev},
            "deltas": [d.to_json() for d in self.deltas],
            "added_points": list(self.added),
            "removed_points": list(self.removed),
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "regressed": self.regressed,
        }


def compare_runs(baseline: RunRecord, candidate: RunRecord,
                 policies: dict[str, MetricPolicy] | None = None,
                 rel_threshold: float | None = None) -> Comparison:
    """Pairwise diff of two ledger records.

    ``rel_threshold`` overrides every policy's relative threshold (the
    CLI's ``--rel-threshold``); per-metric ``min_abs`` guards still apply.
    """
    if policies is None:
        policies = DEFAULT_POLICIES
    if rel_threshold is not None:
        policies = {
            name: MetricPolicy(p.direction, rel_threshold, p.min_abs)
            for name, p in policies.items()
        }
    comparison = Comparison(baseline=baseline, candidate=candidate)
    base_points = baseline.points or {}
    cand_points = candidate.points or {}
    comparison.removed = sorted(set(base_points) - set(cand_points))
    comparison.added = sorted(set(cand_points) - set(base_points))
    for key in sorted(set(base_points) & set(cand_points)):
        base_metrics = base_points[key] or {}
        cand_metrics = cand_points[key] or {}
        for metric in sorted(set(base_metrics) & set(cand_metrics)):
            judged = _judge(metric, float(base_metrics[metric]),
                            float(cand_metrics[metric]), policies)
            comparison.deltas.append(
                Delta(point=key, metric=metric, baseline=judged.baseline,
                      candidate=judged.candidate, status=judged.status)
            )
    for metric in sorted(set(baseline.headline) & set(candidate.headline)):
        judged = _judge(metric, float(baseline.headline[metric]),
                        float(candidate.headline[metric]), policies)
        comparison.deltas.append(
            Delta(point="headline", metric=metric, baseline=judged.baseline,
                  candidate=judged.candidate, status=judged.status)
        )
    return comparison


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
_STATUS_MARK = {"ok": " ", "improved": "+", "regressed": "!"}


def _format_rel(delta: Delta) -> str:
    rel = delta.rel
    if rel in (float("inf"), float("-inf")):
        return "  n/a"
    return f"{rel * 100:+5.1f}%"


def _run_title(record: RunRecord) -> str:
    label = f" [{record.label}]" if record.label else ""
    rev = f" @{record.git_rev[:10]}" if record.git_rev else ""
    return f"{record.run_id}{label}{rev}"


def comparison_tree(comparison: Comparison) -> tuple[list[SpanNode], object]:
    """The comparison as a span forest plus its describe callback.

    One root per run pair, one child per point, one leaf per metric --
    rendered through :func:`repro.telemetry.report.render_span_tree`, so
    the drill-down inherits the tree walk (indentation, child capping)
    the trace report already uses.
    """
    root = SpanNode(
        id="cmp", parent=None,
        name=(f"compare  {_run_title(comparison.baseline)}  ->  "
              f"{_run_title(comparison.candidate)}"),
    )
    descriptions: dict[int, str] = {}
    by_point: dict[str, list[Delta]] = {}
    for delta in comparison.deltas:
        by_point.setdefault(delta.point, []).append(delta)
    serial = 0
    for point, deltas in by_point.items():
        serial += 1
        flags = {d.status for d in deltas}
        verdict = ("REGRESSED" if "regressed" in flags
                   else "improved" if "improved" in flags else "ok")
        node = SpanNode(id=f"p{serial}", parent="cmp",
                        name=f"point {point[:12]}")
        descriptions[id(node)] = f"point {point[:12]}  {verdict}"
        for delta in deltas:
            serial += 1
            leaf = SpanNode(id=f"m{serial}", parent=node.id, name=delta.metric)
            descriptions[id(leaf)] = (
                f"{_STATUS_MARK[delta.status]} {delta.metric:<18} "
                f"{delta.baseline:10.4g} -> {delta.candidate:10.4g}  "
                f"{_format_rel(delta)}  {delta.status}"
            )
            node.children.append(leaf)
        root.children.append(node)
    for key, title in (("removed", "removed points"), ("added", "added points")):
        keys = getattr(comparison, key)
        if keys:
            serial += 1
            node = SpanNode(id=f"x{serial}", parent="cmp", name=title)
            descriptions[id(node)] = f"{title}: {', '.join(k[:12] for k in keys)}"
            root.children.append(node)

    def describe(node: SpanNode) -> str:
        return descriptions.get(id(node), node.name)

    return [root], describe


def render_terminal(comparison: Comparison) -> str:
    """The per-point delta drill-down plus a one-line verdict."""
    roots, describe = comparison_tree(comparison)
    tree = render_span_tree(roots, max_children=64, describe=describe)
    regressions = comparison.regressions
    verdict = (
        f"REGRESSED: {len(regressions)} metric deltas over threshold"
        + (f", {len(comparison.removed)} points removed" if comparison.removed else "")
        if comparison.regressed
        else f"OK: no regressions ({len(comparison.deltas)} paired deltas, "
             f"{len(comparison.improvements)} improvements)"
    )
    return tree + "\n\n" + verdict


def render_html(comparison: Comparison) -> str:
    """A self-contained HTML drill-down (for CI artifacts)."""
    colors = {"ok": "#2e7d32", "improved": "#1565c0", "regressed": "#c62828"}
    rows = []
    for delta in comparison.deltas:
        rows.append(
            "<tr>"
            f"<td><code>{html.escape(delta.point[:16])}</code></td>"
            f"<td>{html.escape(delta.metric)}</td>"
            f"<td>{delta.baseline:.6g}</td><td>{delta.candidate:.6g}</td>"
            f"<td>{delta.delta:+.6g}</td><td>{html.escape(_format_rel(delta))}</td>"
            f'<td style="color:{colors[delta.status]}">{delta.status}</td>'
            "</tr>"
        )
    extra = ""
    if comparison.removed:
        extra += ("<p>removed points: "
                  + ", ".join(f"<code>{html.escape(k[:16])}</code>"
                              for k in comparison.removed) + "</p>")
    if comparison.added:
        extra += ("<p>added points: "
                  + ", ".join(f"<code>{html.escape(k[:16])}</code>"
                              for k in comparison.added) + "</p>")
    verdict = "REGRESSED" if comparison.regressed else "OK"
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<title>repro compare</title>"
        "<style>body{font-family:monospace}table{border-collapse:collapse}"
        "td,th{border:1px solid #ccc;padding:2px 8px;text-align:right}"
        "td:first-child,th:first-child{text-align:left}</style></head><body>"
        f"<h1>repro compare: {verdict}</h1>"
        f"<p>baseline {html.escape(_run_title(comparison.baseline))}<br>"
        f"candidate {html.escape(_run_title(comparison.candidate))}</p>"
        "<table><tr><th>point</th><th>metric</th><th>baseline</th>"
        "<th>candidate</th><th>delta</th><th>rel</th><th>status</th></tr>"
        + "".join(rows) + "</table>" + extra + "</body></html>"
    )


def render_json(comparison: Comparison) -> str:
    """Machine-readable output for ``--json`` (one JSON document)."""
    return json.dumps(comparison.to_json(), sort_keys=True, indent=2)


__all__ = [
    "Comparison",
    "DEFAULT_POLICIES",
    "Delta",
    "MetricPolicy",
    "compare_runs",
    "comparison_tree",
    "render_html",
    "render_json",
    "render_terminal",
]
