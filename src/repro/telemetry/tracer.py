"""Span-based structured tracing with JSONL output.

A :class:`Tracer` records *spans* -- named, nested intervals with wall and
CPU time -- plus instant events and periodic samples, as a flat list of
JSON-serializable event dicts.  The schema (one JSON object per line when
saved):

``{"ev": "begin", "id": "s1", "parent": null, "name": "sweep",
   "ts": 0.0, "attrs": {...}}``
    a span opened; ``parent`` is the id of the enclosing span (``null``
    for a root).  ``ts`` is seconds since the tracer was created
    (process-relative, *not* comparable across processes).

``{"ev": "end", "id": "s1", "wall_s": 1.2, "cpu_s": 1.1, "attrs": {...}}``
    the span closed; ``attrs`` carries everything annotated onto the span
    over its lifetime.

``{"ev": "annot", "span": "s1", "name": "sprint_retreat", "ts": ...,
   "attrs": {...}}``
    an instant event inside a span.

``{"ev": "sample", "span": "s1", "ts": ..., "data": {...}}``
    one periodic in-simulation sample (per-router counters, PCM state...).

``{"ev": "metrics", "data": {...}}``
    a :meth:`MetricsRegistry.snapshot` embedded by :meth:`Telemetry.save`
    so ``repro report`` can render metrics from the trace file alone.

Cross-process aggregation: a worker runs its own tracer with a unique
``id_prefix``; the parent grafts the worker's drained events under the
worker's point span (:meth:`Tracer.graft`), rewriting only the root
parents.  Ids never collide because of the prefix.

A disabled tracer hands out the shared :data:`NULL_SPAN` and records
nothing; disabled-mode cost is one method call per span.
"""

from __future__ import annotations

import json
import time
from pathlib import Path


class NullSpan:
    """The do-nothing span a disabled tracer hands out (a singleton)."""

    __slots__ = ()
    id = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def annotate(self, **attrs):
        pass

    def end(self):
        pass


NULL_SPAN = NullSpan()


class Span:
    """One open interval; close it with :meth:`end` or a ``with`` block."""

    __slots__ = ("_tracer", "id", "name", "parent", "attrs", "_wall0",
                 "_cpu0", "_entered", "_ended")

    def __init__(self, tracer: "Tracer", span_id: str, name: str,
                 parent: str | None, attrs: dict):
        self._tracer = tracer
        self.id = span_id
        self.name = name
        self.parent = parent
        self.attrs = attrs
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self._entered = False
        self._ended = False

    def annotate(self, **attrs) -> None:
        """Attach attributes; they ride out on the span's end event."""
        self.attrs.update(attrs)

    def end(self) -> None:
        if self._ended:
            return
        self._ended = True
        tracer = self._tracer
        if self._entered and tracer._stack and tracer._stack[-1] == self.id:
            tracer._stack.pop()
        tracer.events.append({
            "ev": "end",
            "id": self.id,
            "wall_s": time.perf_counter() - self._wall0,
            "cpu_s": time.process_time() - self._cpu0,
            "attrs": self.attrs,
        })

    def __enter__(self) -> "Span":
        # entering registers the span as the implicit parent for spans
        # created without an explicit ``parent=`` underneath it
        self._entered = True
        self._tracer._stack.append(self.id)
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.end()
        return False


class Tracer:
    """Collects trace events; save as JSONL or drain for aggregation."""

    def __init__(self, enabled: bool = True, id_prefix: str = ""):
        self.enabled = enabled
        self.events: list[dict] = []
        self._prefix = id_prefix
        self._serial = 0
        self._stack: list[str] = []  # ids of spans entered via ``with``
        self._t0 = time.perf_counter()

    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        self._serial += 1
        return f"{self._prefix}s{self._serial}"

    def _implicit_parent(self) -> str | None:
        return self._stack[-1] if self._stack else None

    def span(self, name: str, parent: str | None = None, **attrs):
        """Open a span.  ``parent`` defaults to the innermost ``with``-entered
        span; pass an explicit id for concurrent (non-nested) spans."""
        if not self.enabled:
            return NULL_SPAN
        span_id = self._next_id()
        if parent is None:
            parent = self._implicit_parent()
        span = Span(self, span_id, name, parent, dict(attrs))
        self.events.append({
            "ev": "begin",
            "id": span_id,
            "parent": parent,
            "name": name,
            "ts": time.perf_counter() - self._t0,
            "attrs": dict(attrs),
        })
        return span

    def event(self, name: str, parent: str | None = None, **attrs) -> None:
        """Record an instant event under a span."""
        if not self.enabled:
            return
        self.events.append({
            "ev": "annot",
            "span": parent if parent is not None else self._implicit_parent(),
            "name": name,
            "ts": time.perf_counter() - self._t0,
            "attrs": attrs,
        })

    def sample(self, data: dict, parent: str | None = None) -> None:
        """Record one periodic sample under a span."""
        if not self.enabled:
            return
        self.events.append({
            "ev": "sample",
            "span": parent if parent is not None else self._implicit_parent(),
            "ts": time.perf_counter() - self._t0,
            "data": data,
        })

    # ------------------------------------------------------------------
    # cross-process aggregation
    # ------------------------------------------------------------------
    def drain(self) -> list[dict]:
        """Hand over (and forget) every recorded event."""
        events, self.events = self.events, []
        return events

    def graft(self, events: list[dict], parent_id: str | None) -> None:
        """Adopt a worker tracer's events under ``parent_id``.

        Only root spans (``parent`` is None) are re-parented; the worker's
        internal nesting is preserved.  The worker must have used a unique
        ``id_prefix`` so ids cannot collide with ours.
        """
        if not self.enabled or not events:
            return
        for event in events:
            if event.get("ev") == "begin" and event.get("parent") is None:
                event = dict(event, parent=parent_id)
            elif (
                event.get("ev") in ("annot", "sample")
                and event.get("span") is None
            ):
                event = dict(event, span=parent_id)
            self.events.append(event)

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> int:
        """Write the events as JSON lines; returns the event count."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return len(self.events)


__all__ = ["NULL_SPAN", "NullSpan", "Span", "Tracer"]
