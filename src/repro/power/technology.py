"""Technology-node parameters and voltage/frequency scaling laws.

Dynamic power follows the classic ``alpha * C * V^2 * f`` law, so scaling
from a reference (V0, f0) to (V, f) multiplies dynamic power by
``(V/V0)^2 * (f/f0)``.  Subthreshold leakage current is nearly independent
of frequency but rises super-linearly with supply voltage through DIBL;
we model leakage *power* as ``V * I(V)`` with
``I(V) = I0 * exp(k_dibl * (V - V0))``.

These are the two effects behind Figure 2: scaling (1 V, 2 GHz) down to
(0.75 V, 1 GHz) cuts dynamic power to ~28 % but leakage only to ~45 %, so
the leakage *share* grows and can overtake dynamic power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class TechNode:
    """A CMOS technology operating point family."""

    name: str
    feature_nm: int
    vdd_nominal: float  # volts
    frequency_nominal_hz: float
    dibl_factor_per_v: float  # exponential sensitivity of leakage current to Vdd

    def dynamic_scale(self, vdd: float, frequency_hz: float) -> float:
        """Dynamic-power multiplier relative to the nominal operating point."""
        self._check_vdd(vdd)
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        return (vdd / self.vdd_nominal) ** 2 * (frequency_hz / self.frequency_nominal_hz)

    def leakage_scale(self, vdd: float) -> float:
        """Leakage-power multiplier relative to the nominal operating point."""
        self._check_vdd(vdd)
        current_scale = math.exp(self.dibl_factor_per_v * (vdd - self.vdd_nominal))
        return (vdd / self.vdd_nominal) * current_scale

    def _check_vdd(self, vdd: float) -> None:
        if vdd <= 0:
            raise ValueError("supply voltage must be positive")


#: The paper's 45 nm operating point: 1 V nominal, 2 GHz cores.
TECH_45NM = TechNode(
    name="45nm",
    feature_nm=45,
    vdd_nominal=1.0,
    frequency_nominal_hz=2.0e9,
    dibl_factor_per_v=2.0,
)

#: The (voltage, frequency) corners swept in Figure 2.
FIG2_OPERATING_POINTS = (
    (1.0, 2.0e9),
    (0.9, 1.5e9),
    (0.75, 1.0e9),
)
