"""On-chip link energy model.

Links are repeated global wires; dynamic energy is proportional to wire
length and flit width, leakage to the repeater count (also length-
proportional).  The thermal-aware floorplan stretches some logical links
beyond one tile pitch; the paper adopts SMART-style clockless repeated
wires (Krishna et al.) so the *delay* stays single-cycle, but the *energy*
still grows with physical length -- this model is where that cost shows up.
"""

from __future__ import annotations

from repro.config import NoCConfig
from repro.core.floorplanning import Floorplan
from repro.power.router_power import PowerBreakdown
from repro.power.technology import TECH_45NM, TechNode

#: physical tile pitch of one mesh hop, millimetres
TILE_PITCH_MM = 1.0

ENERGY_PER_BIT_PER_MM = 30e-15  # joules, at the reference point
LEAKAGE_PER_MM_W = 0.4e-3  # repeater leakage per mm of 128-bit link


class LinkPowerModel:
    """Energy/power of one unidirectional flit-wide link."""

    def __init__(
        self,
        config: NoCConfig | None = None,
        vdd: float = 1.0,
        frequency_hz: float = 2.0e9,
        tech: TechNode = TECH_45NM,
    ):
        self.config = config or NoCConfig()
        self.vdd = vdd
        self.frequency_hz = frequency_hz
        self.tech = tech
        self._energy_scale = (vdd / tech.vdd_nominal) ** 2
        self._leak_scale = tech.leakage_scale(vdd)

    def traversal_energy(self, length_mm: float = TILE_PITCH_MM) -> float:
        """Energy for one flit to cross a link of the given length."""
        if length_mm <= 0:
            raise ValueError("link length must be positive")
        bits = self.config.flit_width_bits
        return ENERGY_PER_BIT_PER_MM * bits * length_mm * self._energy_scale

    def leakage_power(self, length_mm: float = TILE_PITCH_MM) -> float:
        """Repeater leakage of a powered link."""
        if length_mm <= 0:
            raise ValueError("link length must be positive")
        scale = self.config.flit_width_bits / 128.0
        return LEAKAGE_PER_MM_W * scale * length_mm * self._leak_scale

    def power(
        self, traversals: int, cycles: int, length_mm: float = TILE_PITCH_MM
    ) -> PowerBreakdown:
        """Average link power over a measurement window."""
        if cycles <= 0:
            raise ValueError("need a positive measurement window")
        window_seconds = cycles / self.frequency_hz
        return PowerBreakdown(
            dynamic=traversals * self.traversal_energy(length_mm) / window_seconds,
            leakage=self.leakage_power(length_mm),
        )


def link_lengths_mm(
    topology, floorplan: Floorplan | None = None
) -> dict[tuple[int, int], float]:
    """Physical length of every powered link of a sprint topology.

    Without a floorplan every link is one tile pitch; with a thermal-aware
    floorplan, lengths follow the physical node placement.
    """
    lengths = {}
    for a, b in topology.active_links():
        if floorplan is None:
            lengths[(a, b)] = TILE_PITCH_MM
        else:
            lengths[(a, b)] = max(
                TILE_PITCH_MM, floorplan.wire_length(a, b) * TILE_PITCH_MM
            )
    return lengths
