"""Parametric router energy model (DSENT substitute).

Per-event dynamic energies (buffer write/read, crossbar traversal,
allocator grant) scale with the flit width; clock-tree dynamic power and
leakage scale with the amount of router state (buffer bits).  The reference
calibration point reproduces DSENT-like 45 nm numbers for the classic
wormhole router of Figure 2 (128-bit flits, 2 VCs x 4 buffers): a few tens
of mW total at (1 V, 2 GHz) with roughly 40 % of it leakage, so that the
leakage share overtakes dynamic power at the (0.75 V, 1 GHz) corner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import NoCConfig
from repro.noc.activity import RouterActivity
from repro.power.technology import TECH_45NM, TechNode

# --- reference per-event energies at (1 V, 2 GHz), joules per bit ---------
ENERGY_BUFFER_WRITE_PER_BIT = 33e-15
ENERGY_BUFFER_READ_PER_BIT = 28e-15
ENERGY_CROSSBAR_PER_BIT = 23e-15
ENERGY_ARBITRATION_PER_GRANT = 1.2e-12  # VA+SA control energy per grant

# clock tree: dynamic power per clocked storage bit at the reference point
CLOCK_POWER_PER_BIT_W = 1.6e-6
PIPELINE_REGISTER_BITS_PER_PORT = 2 * 128  # inter-stage registers, per port

# leakage at the reference point
LEAKAGE_PER_BUFFER_BIT_W = 1.5e-6
LEAKAGE_FIXED_W = 5.0e-3  # crossbar, allocators, control


@dataclass(frozen=True)
class PowerBreakdown:
    """Dynamic vs leakage power of one component or router, in watts."""

    dynamic: float
    leakage: float

    @property
    def total(self) -> float:
        return self.dynamic + self.leakage

    @property
    def leakage_fraction(self) -> float:
        return self.leakage / self.total if self.total else 0.0

    def __add__(self, other: "PowerBreakdown") -> "PowerBreakdown":
        return PowerBreakdown(self.dynamic + other.dynamic, self.leakage + other.leakage)

    def scaled(self, factor: float) -> "PowerBreakdown":
        return PowerBreakdown(self.dynamic * factor, self.leakage * factor)


class RouterPowerModel:
    """Energy/power model for one five-port VC router."""

    def __init__(
        self,
        config: NoCConfig | None = None,
        vdd: float = 1.0,
        frequency_hz: float = 2.0e9,
        tech: TechNode = TECH_45NM,
        ports: int = 5,
    ):
        self.config = config or NoCConfig()
        self.vdd = vdd
        self.frequency_hz = frequency_hz
        self.tech = tech
        self.ports = ports
        self._dyn_scale = tech.dynamic_scale(vdd, frequency_hz)
        # energy per event scales with V^2 only (one event is one event
        # regardless of clock rate); power scales with event rate
        self._energy_scale = (vdd / tech.vdd_nominal) ** 2
        self._leak_scale = tech.leakage_scale(vdd)

    # ------------------------------------------------------------------
    @property
    def buffer_bits(self) -> int:
        cfg = self.config
        return self.ports * cfg.vcs_per_port * cfg.buffers_per_vc * cfg.flit_width_bits

    @property
    def clocked_bits(self) -> int:
        return self.buffer_bits + self.ports * PIPELINE_REGISTER_BITS_PER_PORT

    def energy_buffer_write(self) -> float:
        return ENERGY_BUFFER_WRITE_PER_BIT * self.config.flit_width_bits * self._energy_scale

    def energy_buffer_read(self) -> float:
        return ENERGY_BUFFER_READ_PER_BIT * self.config.flit_width_bits * self._energy_scale

    def energy_crossbar(self) -> float:
        return ENERGY_CROSSBAR_PER_BIT * self.config.flit_width_bits * self._energy_scale

    def energy_arbitration(self) -> float:
        return ENERGY_ARBITRATION_PER_GRANT * self._energy_scale

    def wakeup_energy(self) -> float:
        """Energy to power-gate and re-wake the router once.

        Dominated by recharging the virtual-Vdd rail and the buffer arrays;
        modelled as ~30 cycles worth of full router leakage plus one clock
        cycle of dynamic energy.
        """
        per_cycle_leak = self.leakage_power() / self.frequency_hz
        return 30.0 * per_cycle_leak + self.clock_power() / self.frequency_hz

    def clock_power(self) -> float:
        """Clock-tree dynamic power while the router is powered."""
        return CLOCK_POWER_PER_BIT_W * self.clocked_bits * self._dyn_scale

    def leakage_power(self) -> float:
        """Total leakage while powered (zero when power-gated)."""
        return (
            LEAKAGE_PER_BUFFER_BIT_W * self.buffer_bits + LEAKAGE_FIXED_W
        ) * self._leak_scale

    # ------------------------------------------------------------------
    def breakdown_at_injection(self, flits_per_cycle: float) -> PowerBreakdown:
        """Analytic router power at a given flit throughput (Figure 2).

        ``flits_per_cycle`` is the average number of flits traversing the
        router per cycle; each one costs a buffer write + read, a crossbar
        traversal and an arbitration.
        """
        if flits_per_cycle < 0:
            raise ValueError("flit rate must be non-negative")
        per_flit = (
            self.energy_buffer_write()
            + self.energy_buffer_read()
            + self.energy_crossbar()
            + self.energy_arbitration()
        )
        dynamic = per_flit * flits_per_cycle * self.frequency_hz + self.clock_power()
        return PowerBreakdown(dynamic=dynamic, leakage=self.leakage_power())

    def power_from_activity(self, activity: RouterActivity, cycles: int) -> PowerBreakdown:
        """Average power over a measured window of simulator activity."""
        if cycles <= 0:
            raise ValueError("need a positive measurement window")
        energy = (
            activity.buffer_writes * self.energy_buffer_write()
            + activity.buffer_reads * self.energy_buffer_read()
            + activity.crossbar_traversals * self.energy_crossbar()
            + (activity.switch_arbitrations + activity.vc_allocations)
            * self.energy_arbitration()
        )
        window_seconds = cycles / self.frequency_hz
        powered_fraction = min(1.0, activity.cycles_powered / cycles)
        dynamic = energy / window_seconds + self.clock_power() * powered_fraction
        return PowerBreakdown(
            dynamic=dynamic,
            leakage=self.leakage_power() * powered_fraction,
        )
