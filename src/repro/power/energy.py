"""Energy and energy-delay metrics across sprinting schemes.

The paper reports power (Figs. 8, 10) and performance (Fig. 7) separately;
for a battery- or thermally-limited chip the product matters: a sprint
that is faster *and* lower-power wins quadratically on energy-delay.  This
module combines the chip power model with the execution-time model into
per-burst energy, EDP and ED2P -- the standard efficiency metrics -- for
any (workload, scheme) pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cmp.perf_model import BenchmarkProfile


@dataclass(frozen=True)
class EnergyReport:
    """Energy metrics for one burst under one scheme."""

    scheme: str
    execution_time_s: float
    avg_power_w: float

    @property
    def energy_j(self) -> float:
        return self.avg_power_w * self.execution_time_s

    @property
    def edp_js(self) -> float:
        """Energy-delay product (J*s)."""
        return self.energy_j * self.execution_time_s

    @property
    def ed2p_js2(self) -> float:
        """Energy-delay-squared product (J*s^2)."""
        return self.edp_js * self.execution_time_s


def burst_energy(
    system,
    workload: str | BenchmarkProfile,
    scheme: str,
    burst_work_s: float = 1.0,
) -> EnergyReport:
    """Energy for one burst of ``burst_work_s`` single-core seconds.

    ``system`` is a :class:`repro.core.system.NoCSprintingSystem`; the
    chip power is the scheme's full-chip power (cores + uncore + network
    as gated by the scheme) held for the scheme's execution time.
    """
    if burst_work_s <= 0:
        raise ValueError("burst work must be positive")
    report = system.evaluate(workload, scheme)
    return EnergyReport(
        scheme=scheme,
        execution_time_s=burst_work_s * report.relative_time,
        avg_power_w=report.chip_power.total,
    )


def energy_comparison(
    system,
    workload: str | BenchmarkProfile,
    burst_work_s: float = 1.0,
    schemes: tuple[str, ...] = ("non_sprinting", "full_sprinting", "noc_sprinting"),
) -> dict[str, EnergyReport]:
    """Per-scheme energy reports for one workload."""
    return {
        scheme: burst_energy(system, workload, scheme, burst_work_s)
        for scheme in schemes
    }
