"""Chip-level power model (McPAT substitute, Niagara2-calibrated).

Reproduces the component structure the paper evaluates with McPAT on a
Niagara2-style CMP: cores, tiled shared L2, memory controllers, NoC and
"others" (PCIe controllers etc.).  The constants are calibrated so that in
*nominal* operation (a single active core, idle cores power-gated) the NoC
accounts for 18 / 26 / 35 / 42 % of chip power at 4 / 8 / 16 / 32 cores --
the paper's own Figure 3 -- and so that the Figure 8 core-power savings
come out at the reported scale.

Three core idle policies model the schemes of Figure 8:

- ``"active"`` -- the core is executing at full voltage/frequency;
- ``"idle"``   -- powered but idle (clock-gated): leakage plus idle clocking,
  a large fraction of active power at 45 nm -- this is the *naive
  fine-grained sprinting* that picks the right core count but never gates;
- ``"gated"``  -- power-gated dark silicon, only a small residual remains.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChipPowerParams:
    """Component power constants (watts, 45 nm, 1 V / 2 GHz)."""

    core_active_w: float = 9.0
    core_idle_fraction: float = 0.64
    core_gated_w: float = 0.12
    l2_bank_w: float = 0.55
    memory_controller_w: float = 1.3
    noc_per_node_w: float = 0.9
    others_w: float = 4.0

    @property
    def core_idle_w(self) -> float:
        return self.core_active_w * self.core_idle_fraction


DEFAULT_PARAMS = ChipPowerParams()


@dataclass(frozen=True)
class ChipPowerReport:
    """Per-component chip power, watts."""

    cores: float
    l2: float
    memory_controllers: float
    noc: float
    others: float

    @property
    def total(self) -> float:
        return self.cores + self.l2 + self.memory_controllers + self.noc + self.others

    def share(self, component: str) -> float:
        """Fraction of total chip power drawn by one component."""
        value = getattr(self, component)
        return value / self.total if self.total else 0.0


class ChipPowerModel:
    """McPAT-substitute power model of an N-core tiled CMP."""

    def __init__(self, core_count: int = 16, params: ChipPowerParams = DEFAULT_PARAMS):
        if core_count < 1:
            raise ValueError("need at least one core")
        self.core_count = core_count
        self.params = params

    def memory_controller_count(self) -> int:
        """One MC per 8 cores, at least one (Niagara2-style)."""
        return max(1, self.core_count // 8)

    def core_power(self, active_cores: int, idle_policy: str = "gated") -> float:
        """Total core power with ``active_cores`` running (Figure 8).

        ``idle_policy`` applies to the remaining cores: ``"gated"`` (NoC-
        sprinting), ``"idle"`` (naive fine-grained sprinting) or
        ``"off"`` (counted as exactly zero, an idealised bound).
        """
        if not 0 <= active_cores <= self.core_count:
            raise ValueError(
                f"active cores must be within [0, {self.core_count}]"
            )
        p = self.params
        inactive = self.core_count - active_cores
        if idle_policy == "gated":
            residual = p.core_gated_w
        elif idle_policy == "idle":
            residual = p.core_idle_w
        elif idle_policy == "off":
            residual = 0.0
        else:
            raise ValueError(f"unknown idle policy {idle_policy!r}")
        return active_cores * p.core_active_w + inactive * residual

    def chip_power(
        self,
        active_cores: int,
        idle_policy: str = "gated",
        noc_active_fraction: float = 1.0,
    ) -> ChipPowerReport:
        """Full-chip power breakdown.

        ``noc_active_fraction`` is the fraction of routers/links powered:
        1.0 for a fully-on network (nominal operation and full-sprinting),
        ``level / core_count`` under NoC-sprinting's static network gating.
        """
        if not 0.0 <= noc_active_fraction <= 1.0:
            raise ValueError("noc_active_fraction must be in [0, 1]")
        p = self.params
        return ChipPowerReport(
            cores=self.core_power(active_cores, idle_policy),
            l2=p.l2_bank_w * self.core_count,
            memory_controllers=p.memory_controller_w * self.memory_controller_count(),
            noc=p.noc_per_node_w * self.core_count * noc_active_fraction,
            others=p.others_w,
        )

    def nominal_breakdown(self) -> ChipPowerReport:
        """Figure 3: single active core, dark cores gated, network fully on.

        The network cannot be gated in conventional designs because a dark
        router would block packet forwarding and shared-cache access --
        which is exactly the paper's motivation.
        """
        return self.chip_power(active_cores=1, idle_policy="gated", noc_active_fraction=1.0)

    def sprint_chip_power(
        self,
        level: int,
        scheme: str = "noc_sprinting",
    ) -> ChipPowerReport:
        """Chip power during a sprint at the given level (for the thermal
        and sprint-duration analyses).

        Schemes: ``"full"`` ignores the level and powers everything;
        ``"naive"`` activates ``level`` cores but leaves the rest idle and
        the network fully on; ``"noc_sprinting"`` gates both the dark cores
        and the dark network region.
        """
        if scheme == "full":
            return self.chip_power(self.core_count, "gated", 1.0)
        if scheme == "naive":
            return self.chip_power(level, "idle", 1.0)
        if scheme == "noc_sprinting":
            return self.chip_power(level, "gated", level / self.core_count)
        raise ValueError(f"unknown scheme {scheme!r}")

    def tile_powers(
        self,
        active_nodes,
        physical_slot_of=None,
        include_noc: bool = True,
    ) -> list[float]:
        """Per-tile power map for the thermal model (watts per tile).

        Returns one value per physical slot (row-major).  ``active_nodes``
        are logical node ids; ``physical_slot_of`` maps a logical node to a
        physical slot (identity when None, or ``Floorplan.position.__getitem__``).
        Active tiles carry a sprinting core, its L2 bank and its powered
        router; dark tiles carry the gated-core residual and the
        still-powered L2 bank.
        """
        p = self.params
        n = self.core_count
        active_tile = p.core_active_w + p.l2_bank_w + (p.noc_per_node_w if include_noc else 0.0)
        dark_tile = p.core_gated_w + p.l2_bank_w
        powers = [dark_tile] * n
        for node in active_nodes:
            slot = physical_slot_of(node) if physical_slot_of is not None else node
            powers[slot] = active_tile
        return powers
