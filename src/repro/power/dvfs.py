"""DVFS operating points and dim-silicon sprinting.

The paper's introduction frames dark silicon as chips that are "either
idle or significantly under-clocked" -- dark *or dim*.  Its evaluation
sprints only at the nominal (1 V, 2 GHz) point; this module adds the dim
dimension as an extension experiment: sprint *more* cores at a *lower*
operating point under the same power budget.

For scalable workloads under tight budgets, many slow cores beat few fast
ones; for serial workloads the nominal point always wins.  The planner
searches the (level, operating point) grid for the fastest configuration
that fits a power budget (see ``bench_extension_dvfs.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cmp.perf_model import SPRINT_LEVELS, BenchmarkProfile
from repro.power.chip_power import ChipPowerModel
from repro.power.technology import TECH_45NM, TechNode

#: Fraction of a core's nominal power that is dynamic (CV^2f-scaling); the
#: rest is leakage (V*exp-scaling).  45 nm cores are roughly 2:1.
CORE_DYNAMIC_FRACTION = 0.65

#: Fraction of the uncore (L2/MC/NoC/others) power that is dynamic.
UNCORE_DYNAMIC_FRACTION = 0.5


@dataclass(frozen=True)
class OperatingPoint:
    """A (voltage, frequency) pair the cores can sprint at."""

    name: str
    vdd: float
    frequency_hz: float

    def __post_init__(self) -> None:
        if self.vdd <= 0 or self.frequency_hz <= 0:
            raise ValueError("operating point needs positive V and f")


#: The paper's Figure 2 V/f corners, reused as sprint operating points.
NOMINAL_POINT = OperatingPoint("nominal", 1.0, 2.0e9)
DIM_POINTS = (
    NOMINAL_POINT,
    OperatingPoint("dim-0.9V", 0.9, 1.5e9),
    OperatingPoint("dim-0.75V", 0.75, 1.0e9),
)


@dataclass(frozen=True)
class DvfsConfiguration:
    """One sprint configuration: how many cores, at which point."""

    level: int
    point: OperatingPoint
    chip_power_w: float
    speedup: float

    @property
    def is_dim(self) -> bool:
        return self.point.vdd < NOMINAL_POINT.vdd


class DvfsPlanner:
    """Search (level, operating point) space under a chip power budget."""

    def __init__(
        self,
        chip_model: ChipPowerModel | None = None,
        tech: TechNode = TECH_45NM,
        points: tuple[OperatingPoint, ...] = DIM_POINTS,
    ):
        self.chip_model = chip_model or ChipPowerModel(16)
        self.tech = tech
        self.points = points

    # ------------------------------------------------------------------
    def _component_scale(self, point: OperatingPoint, dynamic_fraction: float) -> float:
        dyn = self.tech.dynamic_scale(point.vdd, point.frequency_hz)
        leak = self.tech.leakage_scale(point.vdd)
        return dynamic_fraction * dyn + (1.0 - dynamic_fraction) * leak

    def chip_power(self, level: int, point: OperatingPoint) -> float:
        """Chip power sprinting ``level`` cores at ``point`` (NoC gated).

        Cores and the active network scale with the operating point; the
        rest of the uncore stays at nominal (it serves memory traffic at
        its own clock).
        """
        nominal = self.chip_model.sprint_chip_power(level, "noc_sprinting")
        core_scale = self._component_scale(point, CORE_DYNAMIC_FRACTION)
        noc_scale = self._component_scale(point, UNCORE_DYNAMIC_FRACTION)
        return (
            nominal.cores * core_scale
            + nominal.noc * noc_scale
            + nominal.l2
            + nominal.memory_controllers
            + nominal.others
        )

    def speedup(self, profile: BenchmarkProfile, level: int, point: OperatingPoint) -> float:
        """Speedup over single-core *nominal* execution.

        Compute throughput scales with core frequency; the scaling table
        captures everything else.  This is the standard linear-frequency
        model -- memory-bound phases would scale sub-linearly, so dim
        configurations are, if anything, slightly underestimated.
        """
        frequency_ratio = point.frequency_hz / NOMINAL_POINT.frequency_hz
        return profile.speedup(level) * frequency_ratio

    # ------------------------------------------------------------------
    def configurations(self, profile: BenchmarkProfile) -> list[DvfsConfiguration]:
        """Every (level, point) configuration with its power and speedup."""
        return [
            DvfsConfiguration(
                level=level,
                point=point,
                chip_power_w=self.chip_power(level, point),
                speedup=self.speedup(profile, level, point),
            )
            for level in SPRINT_LEVELS
            for point in self.points
        ]

    @staticmethod
    def _pick(feasible: list[DvfsConfiguration], tolerance: float) -> DvfsConfiguration:
        """Power-aware selection: near-best speedup, cheapest configuration.

        Same rationale as the profile's optimal-level rule -- a speedup gain
        within ``tolerance`` is not worth more cores or a higher voltage.
        """
        best_speedup = max(c.speedup for c in feasible)
        near_best = [
            c for c in feasible if c.speedup >= best_speedup / (1.0 + tolerance)
        ]
        return min(near_best, key=lambda c: (c.chip_power_w, c.level, -c.speedup))

    def best_configuration(
        self,
        profile: BenchmarkProfile,
        power_budget_w: float,
        tolerance: float = 0.02,
    ) -> DvfsConfiguration | None:
        """The fastest configuration within the budget (None if none fit)."""
        feasible = [
            c for c in self.configurations(profile) if c.chip_power_w <= power_budget_w
        ]
        if not feasible:
            return None
        return self._pick(feasible, tolerance)

    def nominal_only_best(
        self,
        profile: BenchmarkProfile,
        power_budget_w: float,
        tolerance: float = 0.02,
    ) -> DvfsConfiguration | None:
        """The best configuration restricted to the nominal point (the
        paper's scheme), for comparison against dim sprinting."""
        feasible = [
            c
            for c in self.configurations(profile)
            if c.point == NOMINAL_POINT and c.chip_power_w <= power_budget_w
        ]
        if not feasible:
            return None
        return self._pick(feasible, tolerance)
