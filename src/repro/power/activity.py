"""Network power from simulator activity.

Bridges the cycle simulator and the DSENT-substitute models: converts a
:class:`~repro.noc.sim.SimulationResult` into per-router and total network
power, accounting for which routers/links are powered and (optionally) for
floorplan-stretched link lengths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import NoCConfig
from repro.core.floorplanning import Floorplan
from repro.core.topological import SprintTopology
from repro.noc.sim import SimulationResult
from repro.power.link_power import LinkPowerModel, link_lengths_mm
from repro.power.router_power import PowerBreakdown, RouterPowerModel


@dataclass
class NetworkPowerReport:
    """Total network power split by source."""

    routers: PowerBreakdown
    links: PowerBreakdown
    per_router: dict[int, PowerBreakdown] = field(default_factory=dict)
    powered_router_count: int = 0
    powered_link_count: int = 0

    @property
    def total(self) -> float:
        return self.routers.total + self.links.total

    @property
    def dynamic(self) -> float:
        return self.routers.dynamic + self.links.dynamic

    @property
    def leakage(self) -> float:
        return self.routers.leakage + self.links.leakage


def network_power(
    result: SimulationResult,
    topology: SprintTopology,
    config: NoCConfig | None = None,
    vdd: float = 1.0,
    frequency_hz: float = 2.0e9,
    floorplan: Floorplan | None = None,
) -> NetworkPowerReport:
    """Average network power over the measured window of a simulation.

    Router dynamic power comes from the recorded per-router activity;
    leakage and clock power from the powered-cycle fractions.  Link dynamic
    power assumes each recorded link traversal used one powered link of the
    topology (lengths from the floorplan when given); link leakage covers
    every powered link for the whole window.
    """
    cfg = config or NoCConfig()
    router_model = RouterPowerModel(cfg, vdd=vdd, frequency_hz=frequency_hz)
    link_model = LinkPowerModel(cfg, vdd=vdd, frequency_hz=frequency_hz)
    cycles = result.measure_cycles

    per_router: dict[int, PowerBreakdown] = {}
    routers_total = PowerBreakdown(0.0, 0.0)
    for node, activity in result.activity.routers.items():
        breakdown = router_model.power_from_activity(activity, cycles)
        per_router[node] = breakdown
        routers_total = routers_total + breakdown

    lengths = link_lengths_mm(topology, floorplan)
    # each bidirectional mesh link is two unidirectional flit links
    link_leak = 2.0 * sum(
        link_model.leakage_power(length) for length in lengths.values()
    )
    mean_length = (
        sum(lengths.values()) / len(lengths) if lengths else 0.0
    )
    traversals = sum(a.link_traversals for a in result.activity.routers.values())
    window_seconds = cycles / frequency_hz if cycles else 0.0
    link_dynamic = (
        traversals * link_model.traversal_energy(mean_length) / window_seconds
        if window_seconds and mean_length
        else 0.0
    )

    return NetworkPowerReport(
        routers=routers_total,
        links=PowerBreakdown(dynamic=link_dynamic, leakage=link_leak),
        per_router=per_router,
        powered_router_count=len(result.activity.routers),
        powered_link_count=len(lengths),
    )
