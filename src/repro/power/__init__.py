"""Power models: DSENT-substitute router/link energy and McPAT-substitute
chip power, plus the bridge that converts simulator activity into power."""

from repro.power.activity import NetworkPowerReport, network_power
from repro.power.energy import EnergyReport, burst_energy, energy_comparison
from repro.power.dvfs import (
    DIM_POINTS,
    NOMINAL_POINT,
    DvfsConfiguration,
    DvfsPlanner,
    OperatingPoint,
)
from repro.power.chip_power import (
    ChipPowerModel,
    ChipPowerParams,
    ChipPowerReport,
    DEFAULT_PARAMS,
)
from repro.power.link_power import TILE_PITCH_MM, LinkPowerModel, link_lengths_mm
from repro.power.router_power import PowerBreakdown, RouterPowerModel
from repro.power.technology import FIG2_OPERATING_POINTS, TECH_45NM, TechNode

__all__ = [
    "NetworkPowerReport",
    "network_power",
    "ChipPowerModel",
    "ChipPowerParams",
    "ChipPowerReport",
    "DEFAULT_PARAMS",
    "TILE_PITCH_MM",
    "LinkPowerModel",
    "link_lengths_mm",
    "PowerBreakdown",
    "RouterPowerModel",
    "TechNode",
    "TECH_45NM",
    "FIG2_OPERATING_POINTS",
    "DIM_POINTS",
    "NOMINAL_POINT",
    "DvfsConfiguration",
    "DvfsPlanner",
    "OperatingPoint",
    "EnergyReport",
    "burst_energy",
    "energy_comparison",
]
