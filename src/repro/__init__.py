"""repro -- a full reproduction of *NoC-Sprinting: Interconnect for
Fine-Grained Sprinting in the Dark Silicon Era* (Zhan, Xie, Sun; DAC 2014).

The package provides:

- :mod:`repro.core` -- the paper's contribution: topological sprinting
  (Algorithm 1), CDOR routing (Algorithm 2), thermal-aware floorplanning
  (Algorithms 3-4), sprint-aware network power gating, the sprint
  controller, and the end-to-end :class:`~repro.core.NoCSprintingSystem`.
- :mod:`repro.noc` -- a cycle-level wormhole VC network simulator
  (booksim/Garnet substitute).
- :mod:`repro.power` -- router/link energy (DSENT substitute) and chip
  power (McPAT substitute) models.
- :mod:`repro.thermal` -- an RC thermal grid (HotSpot substitute) and the
  phase-change-material sprint-duration model.
- :mod:`repro.cmp` -- PARSEC 2.1 workload profiles and the CMP
  execution-time model (gem5 substitute).

Quick start::

    from repro import NoCSprintingSystem

    system = NoCSprintingSystem()
    row = system.evaluate("dedup", "noc_sprinting", simulate_network=True)
    print(row.level, row.speedup, row.network.avg_latency)

The stable entry points (documented in ``docs/api.md``) are re-exported
here: the system facade and its :class:`~repro.core.system.EvaluationReport`,
the declarative :class:`~repro.noc.spec.SimulationSpec` /
:class:`~repro.noc.spec.TrafficSpec` pair with
:func:`~repro.noc.sim.run_simulation`, the sweep engine
(:class:`~repro.exec.SweepRunner`, :class:`~repro.exec.ResultCache`), and
the simulation-backend registry
(:func:`~repro.noc.backends.register_backend` /
:func:`~repro.noc.backends.get_backend` /
:func:`~repro.noc.backends.list_backends`), the run-history
observatory (:class:`~repro.telemetry.Ledger`,
:func:`~repro.telemetry.compare_runs`), and the versioned wire codec
behind the ``repro serve`` HTTP API
(:func:`~repro.noc.spec.spec_to_wire` /
:func:`~repro.noc.spec.spec_from_wire`, with
:meth:`EvaluationReport.to_wire` for report documents; see
``docs/service.md``).
"""

from repro.config import NoCConfig, SystemConfig, default_config
from repro.core import (
    CdorRouter,
    NoCSprintingSystem,
    SprintController,
    SprintPlan,
    SprintTopology,
    check_deadlock_freedom,
    sprint_order,
    thermal_aware_floorplan,
)
from repro.core.system import EvaluationReport
from repro.exec import ResultCache, SweepRunner
from repro.noc import SimulationSpec, TrafficSpec, run_simulation
from repro.noc.backends import get_backend, list_backends, register_backend
from repro.noc.spec import (
    WIRE_VERSION,
    WireFormatError,
    spec_from_wire,
    spec_to_wire,
)
from repro.telemetry import Ledger, RunRecord, compare_runs

__version__ = "1.0.0"

__all__ = [
    # configuration
    "NoCConfig",
    "SystemConfig",
    "default_config",
    # the paper's mechanisms
    "CdorRouter",
    "SprintController",
    "SprintPlan",
    "SprintTopology",
    "check_deadlock_freedom",
    "sprint_order",
    "thermal_aware_floorplan",
    # system facade
    "NoCSprintingSystem",
    "EvaluationReport",
    # declarative simulation + sweep engine
    "SimulationSpec",
    "TrafficSpec",
    "run_simulation",
    "SweepRunner",
    "ResultCache",
    # the versioned wire codec (the `repro serve` contract)
    "WIRE_VERSION",
    "WireFormatError",
    "spec_to_wire",
    "spec_from_wire",
    # simulation-backend registry
    "register_backend",
    "get_backend",
    "list_backends",
    # run ledger + cross-run diffing
    "Ledger",
    "RunRecord",
    "compare_runs",
    "__version__",
]
