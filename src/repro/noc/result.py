"""The simulation outcome value every backend produces.

:class:`SimulationResult` lives in its own module so that simulation
*backends* (:mod:`repro.noc.backends`) and the driver facade
(:mod:`repro.noc.sim`) can share it without importing each other.  The
class is re-exported from :mod:`repro.noc.sim`, so results pickled by
older versions (the on-disk :class:`~repro.exec.cache.ResultCache`
records the class by its import path) keep unpickling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.activity import NetworkActivity


@dataclass
class SimulationResult:
    """Outcome of one network simulation run."""

    avg_latency: float
    avg_hops: float
    max_latency: int
    p50_latency: float
    p95_latency: float
    p99_latency: float
    packets_measured: int
    packets_ejected: int
    offered_flits_per_cycle: float  # per endpoint
    accepted_flits_per_cycle: float  # per endpoint, over the measure window
    saturated: bool
    cycles_run: int
    measure_cycles: int
    activity: NetworkActivity = field(repr=False, default_factory=NetworkActivity)
    endpoint_count: int = 0
    # fault-injection outcome (all zero unless the spec carried a
    # non-empty FaultSchedule, so fault-free runs are bit-identical to
    # results produced before faults existed)
    packets_dropped: int = 0
    packets_retransmitted: int = 0
    packets_rerouted: int = 0
    reconfigurations: int = 0
    min_region_level: int = 0

    @property
    def powered_router_count(self) -> int:
        return len(self.activity.routers)

    @property
    def degraded(self) -> bool:
        """True when a fault forced the network to reconfigure mid-run."""
        return self.reconfigurations > 0

    def to_wire(self) -> dict:
        """JSON-ready scalar summary for the service wire format.

        The per-router/per-link :class:`NetworkActivity` ledger is
        deliberately omitted: it is an in-process power-model input, not
        part of the result contract clients consume, and it dwarfs the
        scalars.  Fields mirror the dataclass so two backends that agree
        bit-for-bit serialize identically.
        """
        return {
            "v": 1,
            "kind": "simulation_result",
            "result": {
                "avg_latency": self.avg_latency,
                "avg_hops": self.avg_hops,
                "max_latency": self.max_latency,
                "p50_latency": self.p50_latency,
                "p95_latency": self.p95_latency,
                "p99_latency": self.p99_latency,
                "packets_measured": self.packets_measured,
                "packets_ejected": self.packets_ejected,
                "offered_flits_per_cycle": self.offered_flits_per_cycle,
                "accepted_flits_per_cycle": self.accepted_flits_per_cycle,
                "saturated": self.saturated,
                "cycles_run": self.cycles_run,
                "measure_cycles": self.measure_cycles,
                "endpoint_count": self.endpoint_count,
                "packets_dropped": self.packets_dropped,
                "packets_retransmitted": self.packets_retransmitted,
                "packets_rerouted": self.packets_rerouted,
                "reconfigurations": self.reconfigurations,
                "min_region_level": self.min_region_level,
            },
        }


__all__ = ["SimulationResult"]
