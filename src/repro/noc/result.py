"""The simulation outcome value every backend produces.

:class:`SimulationResult` lives in its own module so that simulation
*backends* (:mod:`repro.noc.backends`) and the driver facade
(:mod:`repro.noc.sim`) can share it without importing each other.  The
class is re-exported from :mod:`repro.noc.sim`, so results pickled by
older versions (the on-disk :class:`~repro.exec.cache.ResultCache`
records the class by its import path) keep unpickling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.activity import NetworkActivity


@dataclass
class SimulationResult:
    """Outcome of one network simulation run."""

    avg_latency: float
    avg_hops: float
    max_latency: int
    p50_latency: float
    p95_latency: float
    p99_latency: float
    packets_measured: int
    packets_ejected: int
    offered_flits_per_cycle: float  # per endpoint
    accepted_flits_per_cycle: float  # per endpoint, over the measure window
    saturated: bool
    cycles_run: int
    measure_cycles: int
    activity: NetworkActivity = field(repr=False, default_factory=NetworkActivity)
    endpoint_count: int = 0
    # fault-injection outcome (all zero unless the spec carried a
    # non-empty FaultSchedule, so fault-free runs are bit-identical to
    # results produced before faults existed)
    packets_dropped: int = 0
    packets_retransmitted: int = 0
    packets_rerouted: int = 0
    reconfigurations: int = 0
    min_region_level: int = 0

    @property
    def powered_router_count(self) -> int:
        return len(self.activity.routers)

    @property
    def degraded(self) -> bool:
        """True when a fault forced the network to reconfigure mid-run."""
        return self.reconfigurations > 0


__all__ = ["SimulationResult"]
