"""Cycle-level wormhole VC network simulator (booksim/Garnet substitute).

The router models the paper's "classic five-stage" pipeline:

    BW (buffer write) -> RC (route compute) -> VA (VC allocation)
      -> SA (switch allocation) -> ST (switch traversal) + LT (link traversal)

Timing, per flit, relative to the cycle ``t`` the flit is written into an
input buffer:

- a *head* flit may win VC allocation no earlier than ``t + 2`` (BW at t,
  RC at t+1, VA at t+2) and request the switch one cycle after VA;
- a *body/tail* flit inherits the packet's VC and may request the switch
  from ``t + 1``;
- a switch grant at cycle ``s`` puts the flit into the downstream input
  buffer at ``s + 2`` (ST at s, LT at s+1, BW downstream at s+2) and returns
  a credit upstream at ``s + 1``.

Under zero load a head flit therefore spends 5 cycles per hop, matching the
five-stage pipeline of Table 1.  Flow control is credit-based with
``buffers_per_vc`` credits per virtual channel; switch allocation is
two-stage round-robin (one grant per input port, one per output port).

Routers can be power-gated.  Statically dark routers (outside the sprint
region) are simply never instantiated; dynamic gating for the run-time
power-gating baselines is driven through :meth:`Router.gate` /
:meth:`Network.request_wake` by the policies in
:mod:`repro.noc.power_gating`.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Callable

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.noc.activity import NetworkActivity, RouterActivity
from repro.noc.flit import Flit, Packet
from repro.noc.routing import (
    PORT_COUNT,
    PORT_LOCAL,
    PORT_TO_DIRECTION,
    REVERSE_PORT,
)

# pipeline latencies (cycles)
HEAD_VA_DELAY = 2  # buffer write -> earliest VC allocation for a head flit
BODY_SA_DELAY = 1  # buffer write -> earliest switch request for a body flit
LINK_DELAY = 2  # switch grant -> buffer write at the downstream router
CREDIT_DELAY = 1  # switch grant -> credit visible upstream


class Router:
    """One five-port wormhole VC router."""

    def __init__(self, node: int, config: NoCConfig, activity: RouterActivity):
        vcs = config.vcs_per_port
        self.node = node
        self.config = config
        self.activity = activity
        # input side
        self.buf: list[list[deque]] = [
            [deque() for _ in range(vcs)] for _ in range(PORT_COUNT)
        ]
        self.vc_out: list[list[tuple[int, int] | None]] = [
            [None] * vcs for _ in range(PORT_COUNT)
        ]
        self.vc_eligible: list[list[int]] = [[0] * vcs for _ in range(PORT_COUNT)]
        # output side
        self.credits: list[list[int]] = [[0] * vcs for _ in range(PORT_COUNT)]
        self.out_owner: list[list[tuple[int, int] | None]] = [
            [None] * vcs for _ in range(PORT_COUNT)
        ]
        # (neighbor node id, input port at the neighbour) for connected ports
        self.links: list[tuple[int, int] | None] = [None] * PORT_COUNT
        # round-robin pointers
        self._va_ptr = [0] * PORT_COUNT  # per output port, over (in_p * vcs + in_v)
        self._sa_in_ptr = [0] * PORT_COUNT  # per input port, over VCs
        self._sa_out_ptr = [0] * PORT_COUNT  # per output port, over input ports
        self.buffered_flits = 0
        # power gating
        self.gated = False
        self.wake_at: int | None = None
        self.last_active_cycle = 0

    def gate(self) -> bool:
        """Power-gate this router; refuses if any flit is buffered."""
        if self.buffered_flits > 0:
            return False
        self.gated = True
        self.wake_at = None
        return True

    def request_wake(self, cycle: int, wakeup_latency: int) -> None:
        if self.gated and self.wake_at is None:
            self.wake_at = cycle + wakeup_latency

    def maybe_finish_wake(self, cycle: int) -> None:
        if self.gated and self.wake_at is not None and cycle >= self.wake_at:
            self.gated = False
            self.wake_at = None
            self.last_active_cycle = cycle


class Network:
    """The collection of routers plus the cycle-by-cycle kernel."""

    def __init__(
        self,
        topology: SprintTopology,
        route_table: dict[tuple[int, int], int],
        config: NoCConfig | None = None,
        wakeup_latency: int = 8,
        activity: NetworkActivity | None = None,
    ):
        self.topology = topology
        self.config = config or NoCConfig()
        self.route_table = route_table
        self.wakeup_latency = wakeup_latency
        # `activity` lets a fault reconfiguration hand the accumulated
        # counters to the replacement network so power accounting spans
        # the whole run
        self.activity = activity if activity is not None else NetworkActivity()
        self.counting = False
        self.cycle = 0

        self.routers: dict[int, Router] = {}
        for node in topology.active_nodes:
            self.routers[node] = Router(node, self.config, self.activity.router(node))
        self._wire_links()

        # event buckets
        self._arrivals: dict[int, list] = defaultdict(list)
        self._credit_events: dict[int, list] = defaultdict(list)

        # network interfaces
        self.source_queues: dict[int, deque] = {n: deque() for n in self.routers}
        self._inject_state: dict[int, list | None] = {n: None for n in self.routers}
        self._ni_vc_ptr: dict[int, int] = {n: 0 for n in self.routers}

        # completed packets are handed to this callback (set by the driver)
        self.on_packet_ejected: Callable[[Packet], None] | None = None
        self.flits_in_flight = 0

    def _wire_links(self) -> None:
        vcs = self.config.vcs_per_port
        depth = self.config.buffers_per_vc
        for node, router in self.routers.items():
            for port in range(1, PORT_COUNT):
                direction = PORT_TO_DIRECTION[port]
                neighbor = self.topology.neighbor(node, direction)
                if neighbor is not None and neighbor in self.routers:
                    router.links[port] = (neighbor, REVERSE_PORT[port])
                    router.credits[port] = [depth] * vcs
            # the ejection "link" always exists and is never back-pressured
            router.credits[PORT_LOCAL] = [1 << 30] * vcs

    # ------------------------------------------------------------------
    # injection
    # ------------------------------------------------------------------
    def inject(self, packet: Packet) -> None:
        """Queue a packet at its source NI."""
        if packet.source not in self.routers:
            raise ValueError(f"source {packet.source} has no powered router")
        if packet.destination not in self.routers:
            raise ValueError(f"destination {packet.destination} has no powered router")
        self.source_queues[packet.source].append(packet)
        self.flits_in_flight += packet.length

    def _step_injection(self) -> None:
        vcs = self.config.vcs_per_port
        depth = self.config.buffers_per_vc
        cycle = self.cycle
        for node, router in self.routers.items():
            state = self._inject_state[node]
            if state is None:
                queue = self.source_queues[node]
                if not queue:
                    continue
                if router.gated:
                    router.request_wake(cycle, self.wakeup_latency)
                    continue
                # claim an idle LOCAL input VC for the packet (round-robin)
                start = self._ni_vc_ptr[node]
                chosen = None
                for k in range(vcs):
                    v = (start + k) % vcs
                    if not router.buf[PORT_LOCAL][v] and router.vc_out[PORT_LOCAL][v] is None:
                        if not self._vc_reserved_by_ni(node, v):
                            chosen = v
                            break
                if chosen is None:
                    continue
                self._ni_vc_ptr[node] = (chosen + 1) % vcs
                state = [queue.popleft(), 0, chosen]
                self._inject_state[node] = state
            packet, index, vc = state
            if router.gated:
                router.request_wake(cycle, self.wakeup_latency)
                continue
            if len(router.buf[PORT_LOCAL][vc]) >= depth:
                continue
            flit = Flit(packet=packet, index=index, arrival_cycle=cycle)
            router.buf[PORT_LOCAL][vc].append(flit)
            router.buffered_flits += 1
            if self.counting:
                router.activity.buffer_writes += 1
            state[1] += 1
            if state[1] >= packet.length:
                self._inject_state[node] = None

    def _vc_reserved_by_ni(self, node: int, vc: int) -> bool:
        state = self._inject_state[node]
        return state is not None and state[2] == vc

    # ------------------------------------------------------------------
    # kernel
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the network by one cycle."""
        cycle = self.cycle
        for router in self.routers.values():
            router.maybe_finish_wake(cycle)

        for node, out_port, vc in self._credit_events.pop(cycle, ()):
            self.routers[node].credits[out_port][vc] += 1

        for node, port, vc, flit in self._arrivals.pop(cycle, ()):
            router = self.routers[node]
            flit.arrival_cycle = cycle
            router.buf[port][vc].append(flit)
            router.buffered_flits += 1
            router.last_active_cycle = cycle
            if router.gated:
                # a flit raced the gate-off decision; pull the router back up
                router.request_wake(cycle, self.wakeup_latency)
            if self.counting:
                router.activity.buffer_writes += 1

        self._step_injection()

        for router in self.routers.values():
            if router.gated:
                continue
            if router.buffered_flits:
                self._step_vc_allocation(router)
        for router in self.routers.values():
            if router.gated:
                continue
            if router.buffered_flits:
                self._step_switch(router)
            if self.counting:
                router.activity.cycles_powered += 1

        self.cycle += 1

    def _step_vc_allocation(self, router: Router) -> None:
        vcs = self.config.vcs_per_port
        cycle = self.cycle
        # gather head flits needing an output VC, grouped by output port
        requests: dict[int, list[tuple[int, int]]] = defaultdict(list)
        for in_p in range(PORT_COUNT):
            for in_v in range(vcs):
                if router.vc_out[in_p][in_v] is not None:
                    continue
                queue = router.buf[in_p][in_v]
                if not queue:
                    continue
                head = queue[0]
                if not head.is_head:
                    # tail of the previous packet has been forwarded but a
                    # body flit is at the front: cannot happen (flits of one
                    # packet stay contiguous per VC)
                    raise RuntimeError(
                        f"router {router.node}: body flit at front of "
                        f"unallocated VC ({in_p},{in_v})"
                    )
                if cycle < head.arrival_cycle + HEAD_VA_DELAY:
                    continue
                route = self.route_table[(router.node, head.destination)]
                if isinstance(route, int):
                    out_p = route
                else:
                    out_p = self._select_adaptive(router, route)
                requests[out_p].append((in_p, in_v))

        for out_p, requesters in requests.items():
            free_vcs = [
                v for v in range(vcs) if router.out_owner[out_p][v] is None
            ]
            if not free_vcs:
                continue
            # round-robin over requesters for fairness
            order = sorted(
                requesters,
                key=lambda r: (r[0] * vcs + r[1] - router._va_ptr[out_p]) % (PORT_COUNT * vcs),
            )
            for (in_p, in_v), out_v in zip(order, free_vcs):
                router.vc_out[in_p][in_v] = (out_p, out_v)
                router.vc_eligible[in_p][in_v] = cycle + 1
                router.out_owner[out_p][out_v] = (in_p, in_v)
                router._va_ptr[out_p] = (in_p * vcs + in_v + 1) % (PORT_COUNT * vcs)
                if self.counting:
                    router.activity.vc_allocations += 1

    def _select_adaptive(self, router: Router, candidates: tuple) -> int:
        """Congestion-aware choice among an adaptive route's candidates.

        Prefers outputs with a free output VC, then the most downstream
        credits; ties resolve to the first candidate (typically the X
        direction, keeping the common case dimension-ordered).
        """
        best = candidates[0]
        best_key = (-1, -1)
        for out_p in candidates:
            free_vcs = sum(
                1 for owner in router.out_owner[out_p] if owner is None
            )
            credits = sum(router.credits[out_p])
            key = (1 if free_vcs else 0, credits)
            if key > best_key:
                best_key = key
                best = out_p
        return best

    def _step_switch(self, router: Router) -> None:
        vcs = self.config.vcs_per_port
        cycle = self.cycle
        # stage 1: each input port nominates one ready VC (round-robin)
        nominations: list[tuple[int, int, int, int, Flit]] = []
        for in_p in range(PORT_COUNT):
            start = router._sa_in_ptr[in_p]
            for k in range(vcs):
                in_v = (start + k) % vcs
                out = router.vc_out[in_p][in_v]
                if out is None:
                    continue
                queue = router.buf[in_p][in_v]
                if not queue:
                    continue
                flit = queue[0]
                if flit.is_head:
                    if cycle < router.vc_eligible[in_p][in_v]:
                        continue
                elif cycle < flit.arrival_cycle + BODY_SA_DELAY:
                    continue
                out_p, out_v = out
                if router.credits[out_p][out_v] <= 0:
                    continue
                if out_p != PORT_LOCAL:
                    link = router.links[out_p]
                    if link is None:
                        raise RuntimeError(
                            f"router {router.node}: allocated VC points at "
                            f"unconnected port {out_p}"
                        )
                    downstream = self.routers[link[0]]
                    if downstream.gated:
                        downstream.request_wake(cycle, self.wakeup_latency)
                        continue
                nominations.append((in_p, in_v, out_p, out_v, flit))
                break

        # stage 2: one grant per output port (round-robin over input ports)
        by_out: dict[int, list[tuple[int, int, int, int, Flit]]] = defaultdict(list)
        for nomination in nominations:
            by_out[nomination[2]].append(nomination)
        for out_p, candidates in by_out.items():
            candidates.sort(
                key=lambda c: (c[0] - router._sa_out_ptr[out_p]) % PORT_COUNT
            )
            in_p, in_v, _, out_v, flit = candidates[0]
            self._traverse(router, in_p, in_v, out_p, out_v, flit)
            router._sa_in_ptr[in_p] = (in_v + 1) % vcs
            router._sa_out_ptr[out_p] = (in_p + 1) % PORT_COUNT

    def _traverse(
        self,
        router: Router,
        in_p: int,
        in_v: int,
        out_p: int,
        out_v: int,
        flit: Flit,
    ) -> None:
        cycle = self.cycle
        router.buf[in_p][in_v].popleft()
        router.buffered_flits -= 1
        router.credits[out_p][out_v] -= 1
        router.last_active_cycle = cycle
        if self.counting:
            router.activity.buffer_reads += 1
            router.activity.crossbar_traversals += 1
            router.activity.switch_arbitrations += 1

        # return a credit to whoever feeds this input port
        if in_p != PORT_LOCAL:
            link = router.links[in_p]
            upstream, _ = link
            self._credit_events[cycle + CREDIT_DELAY].append(
                (upstream, REVERSE_PORT[in_p], in_v)
            )

        if flit.is_tail:
            router.out_owner[out_p][out_v] = None
            router.vc_out[in_p][in_v] = None

        if out_p == PORT_LOCAL:
            self.flits_in_flight -= 1
            if flit.is_tail:
                flit.packet.ejected_at = cycle + LINK_DELAY
                if self.on_packet_ejected is not None:
                    self.on_packet_ejected(flit.packet)
            return

        if self.counting:
            router.activity.link_traversals += 1
        if flit.is_head:
            flit.packet.hops += 1
        downstream, downstream_port = router.links[out_p]
        self._arrivals[cycle + LINK_DELAY].append(
            (downstream, downstream_port, out_v, flit)
        )

    # ------------------------------------------------------------------
    # fault support
    # ------------------------------------------------------------------
    def extract_in_flight(self) -> list[tuple[Packet, bool]]:
        """Every packet currently inside the network, in creation order.

        The second element is True when at least one flit of the packet has
        left its source NI (the packet must be *retransmitted* after a
        reconfiguration) and False while the packet is still queued whole at
        the NI (it only needs *rerouting* onto the new tables).
        """
        seen: dict[int, list] = {}

        def note(packet: Packet, entered: bool) -> None:
            state = seen.get(packet.pid)
            if state is None:
                seen[packet.pid] = [packet, entered]
            elif entered:
                state[1] = True

        for node in self.routers:
            inject = self._inject_state[node]
            if inject is not None:
                packet, injected, _vc = inject
                note(packet, injected > 0)
            for packet in self.source_queues[node]:
                note(packet, False)
        for router in self.routers.values():
            for port_buffers in router.buf:
                for queue in port_buffers:
                    for flit in queue:
                        note(flit.packet, True)
        for events in self._arrivals.values():
            for _node, _port, _vc, flit in events:
                note(flit.packet, True)
        return [(packet, entered) for _, (packet, entered) in sorted(seen.items())]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def idle(self) -> bool:
        """True when no flit is queued, buffered or in flight anywhere."""
        return self.flits_in_flight == 0

    def ni_busy(self, node: int) -> bool:
        """True while the node's NI is mid-packet or has queued packets."""
        return self._inject_state[node] is not None or bool(self.source_queues[node])

    def powered_routers(self) -> int:
        return sum(1 for r in self.routers.values() if not r.gated)
