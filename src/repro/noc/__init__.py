"""Cycle-level NoC simulator (booksim 2.0 / Garnet substitute).

Wormhole, virtual-channel, credit-based flow control, five-stage router
pipeline, synthetic traffic, booksim-style warmup/measure/drain statistics,
and router power gating.
"""

from repro.noc.activity import NetworkActivity, RouterActivity
from repro.noc.backends import (
    BackendCapabilityError,
    SimBackend,
    get_backend,
    list_backends,
    register_backend,
)
from repro.noc.flit import Flit, Packet, make_flits
from repro.noc.network import Network, Router
from repro.noc.power_gating import (
    StaticGatingPlan,
    TimeoutGatingPolicy,
    break_even_cycles,
    static_plan_for_topology,
)
from repro.noc.llc_sim import LlcSimulationResult, run_llc_simulation
from repro.noc.adaptive import ADAPTIVE_ALGORITHMS, build_adaptive_table
from repro.noc.routing import build_routing_table
from repro.noc.sim import SimulationResult, run_simulation, simulate, zero_load_latency
from repro.noc.spec import SimulationSpec, TrafficSpec, stable_key
from repro.noc.trace import TraceRecorder, TraceTraffic
from repro.noc.traffic import TrafficGenerator

__all__ = [
    "NetworkActivity",
    "RouterActivity",
    "BackendCapabilityError",
    "SimBackend",
    "get_backend",
    "list_backends",
    "register_backend",
    "Flit",
    "Packet",
    "make_flits",
    "Network",
    "Router",
    "StaticGatingPlan",
    "TimeoutGatingPolicy",
    "break_even_cycles",
    "static_plan_for_topology",
    "build_routing_table",
    "LlcSimulationResult",
    "run_llc_simulation",
    "SimulationResult",
    "SimulationSpec",
    "TrafficSpec",
    "run_simulation",
    "simulate",
    "stable_key",
    "zero_load_latency",
    "TrafficGenerator",
    "ADAPTIVE_ALGORITHMS",
    "build_adaptive_table",
    "TraceRecorder",
    "TraceTraffic",
]
