"""Packets and flits for the wormhole network simulator."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Packet:
    """A multi-flit wormhole packet.

    ``created_at`` is the cycle the packet entered the source queue, which is
    what network latency is measured from (so source queueing delay counts,
    as in booksim's packet latency).
    """

    pid: int
    source: int
    destination: int
    length: int
    created_at: int
    measured: bool = False
    ejected_at: int | None = None
    hops: int = 0

    @property
    def latency(self) -> int:
        if self.ejected_at is None:
            raise ValueError(f"packet {self.pid} has not been ejected")
        return self.ejected_at - self.created_at


@dataclass
class Flit:
    """One flow-control unit of a packet."""

    packet: Packet = field(repr=False)
    index: int
    arrival_cycle: int = 0  # cycle written into the current input buffer

    @property
    def is_head(self) -> bool:
        return self.index == 0

    @property
    def is_tail(self) -> bool:
        return self.index == self.packet.length - 1

    @property
    def destination(self) -> int:
        return self.packet.destination


def make_flits(packet: Packet) -> list[Flit]:
    """All flits of a packet, in order (head first, tail last)."""
    return [Flit(packet=packet, index=i) for i in range(packet.length)]
