"""Compiled-kernel accelerator behind the vectorized backend.

The vectorized backend's flat-array pipeline replica
(:mod:`repro.noc.backends.vectorized`) is exact but interpreter-bound:
profiling puts its per-router allocation pass at a few microseconds, and
a loaded mesh runs hundreds of thousands of them.  This module carries
the *same* kernel -- decision for decision: VC allocation order, switch
allocation round-robins, credit timing, ejection order -- as a small C
translation unit, compiled on demand with whatever ``cc``/``gcc``/
``clang`` the host provides and loaded through :mod:`ctypes`.

The compiled object is cached in the system temp directory under a name
keyed by the SHA-256 of the embedded source, so each kernel revision
compiles once per machine; publication is an atomic :func:`os.replace`
so concurrent sweep workers never observe a half-written library.  When
no compiler is available, compilation fails, or ``REPRO_NOC_NATIVE=0``
disables the path, :func:`available` returns False and the vectorized
backend silently falls back to its pure-Python kernel -- same results,
just slower.

Division of labour with the Python driver:

- the traffic process stays in Python (it must replay the reference
  backend's exact ``random.Random`` stream) and is flattened into
  per-packet arrays over a *horizon* of pre-drawn cycles;
- the C kernel simulates until it finishes or runs off the end of the
  horizon, in which case it reports ``UNFINISHED`` and the driver
  re-runs it from scratch over a longer horizon (the kernel is
  deterministic and fast enough that a rare re-run is cheaper than
  checkpointing state across the boundary);
- the kernel returns the measured packets' ejection order, and Python
  replays the latency/hop statistics in that order so the Welford mean
  accumulates in exactly the reference sequence;
- telemetry runs batch their per-interval activity capture inside the
  kernel (sample cycle, flits in flight, per-router buffer occupancy and
  cumulative ejections land in flat arrays, including back-filled rows
  for fast-forwarded idle stretches), and the driver replays them as the
  same spans, sample events and metrics the Python kernels emit --
  cumulative per-router injection counts are reconstructed from the
  pre-drawn packet columns, so the kernel never touches them;
- fault schedules run as a *chain* of kernel segments, one per region
  configuration: the kernel stops at the next fault boundary (reporting
  per-packet progress), the driver replays the reference's teardown /
  drop-and-retransmit policy in Python -- survivors become seed rows of
  the next segment's packet columns, re-entering through the normal NI
  path in pid order -- and the fault counters, activity folds and
  telemetry accumulate across segments.  Gated runs are the one thing
  this module never sees: the policy is an arbitrary Python object the
  kernel cannot call back into every cycle, so they stay on the
  pure-Python flat engine.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading

import numpy as np

from repro.noc.activity import NetworkActivity
from repro.noc.result import SimulationResult
from repro.noc.routing import PORT_COUNT, PORT_TO_DIRECTION, REVERSE_PORT
from repro.noc.spec import SimulationSpec
from repro.util.stats import RunningStats, percentile

# occupancy and allocation-pending masks are single 64-bit words:
# PORT_COUNT * vcs bits must fit (5 * 12 = 60)
_MAX_VCS = 12

_FLAG_UNFINISHED = 1  # simulation ran past the pre-drawn traffic horizon
_FLAG_IDLE_BREAK = 2  # whole-mesh idle exit before the window closed
_FLAG_BOUNDARY = 4  # stopped at a fault boundary (stop_cycle) for the driver

_KERNEL_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef long long i64;

#define NEVER (1LL << 60)
#define FLAG_UNFINISHED 1
#define FLAG_IDLE_BREAK 2
#define FLAG_BOUNDARY 4

/* One cycle-exact replica of the reference wormhole-VC pipeline over
 * flat arrays.  Every arbitration order (VC allocation request order,
 * free-VC assignment, both switch-allocation round-robins), every
 * pipeline delay (VA at arrival+2, head SA one cycle after VA, body SA
 * at arrival+1, credits at +1, links at +2) and the ejection sequence
 * match the Python kernels bit for bit.
 *
 * Fault schedules run as a chain of segments: each reconfiguration
 * tears the network down to fresh state anyway, so the driver invokes
 * the kernel once per region with `start_cycle` at the boundary,
 * `stop_cycle` at the next one, and the surviving packets spliced into
 * the packet columns at `start_cycle` (seed rows precede that cycle's
 * creations, preserving the reference's re-injection order). */
i64 run_kernel(
    i64 count, i64 vcs, i64 depth, i64 mesh,
    const i64 *neighbor,   /* count*5 router indices, -1 when absent   */
    const i64 *route,      /* count*mesh output port per dest node id;
                            * adaptive candidate pairs are packed as
                            * 8 | (c0 << 4) | (c1 << 8)                */
    const i64 *rev,        /* 5: reverse port map                      */
    i64 n_pkts,
    const i64 *p_cycle, const i64 *p_src, const i64 *p_dest,
    const i64 *p_len, const i64 *p_meas,
    i64 sched_upto,        /* cycles of traffic pre-drawn              */
    i64 warmup, i64 measure_end, i64 deadline,
    i64 start_cycle,       /* first cycle (a fault-segment boundary)   */
    i64 stop_cycle,        /* break before this cycle, -1 for never    */
    i64 *p_hops,           /* n_pkts, zero-initialised                 */
    i64 *p_eject,          /* n_pkts, tail-ejection cycle or -1        */
    i64 *p_started,        /* n_pkts: >=1 flit left the source NI      */
    i64 *ej_order,         /* capacity n_pkts: measured ejection order */
    i64 *counters,         /* count*4: writes, reads, links, va grants */
    i64 *out,              /* 10 scalars, see driver                   */
    i64 interval,          /* telemetry sample period, 0 = no capture  */
    i64 s_cap,             /* capacity of the sample arrays            */
    i64 *s_cycle,          /* s_cap: sample instants                   */
    i64 *s_inflight,       /* s_cap: flits in flight at the instant    */
    i64 *s_occ,            /* s_cap*count: per-router buffered flits   */
    i64 *s_ej,             /* s_cap*count: cumulative ejected flits    */
    i64 *ej_out)           /* count: final cumulative ejected flits    */
{
    i64 slots = 5 * vcs;
    i64 gslots = count * slots;
    i64 vmask = (1LL << vcs) - 1;

    /* per-slot flit FIFOs as rings of capacity `depth` (credits bound
     * occupancy), plus flat allocation state */
    i64 *f_arr = malloc((size_t)gslots * depth * sizeof(i64));
    i64 *f_idx = malloc((size_t)gslots * depth * sizeof(i64));
    i64 *f_pkt = malloc((size_t)gslots * depth * sizeof(i64));
    i64 *rh = calloc((size_t)gslots, sizeof(i64));
    i64 *fl = calloc((size_t)gslots, sizeof(i64));
    i64 *vc_out = malloc((size_t)gslots * sizeof(i64));
    i64 *vc_elig = calloc((size_t)gslots, sizeof(i64));
    i64 *owner = malloc((size_t)gslots * sizeof(i64));
    i64 *credits = calloc((size_t)gslots, sizeof(i64));
    i64 *va_ptr = calloc((size_t)count * 5, sizeof(i64));
    i64 *sa_in = calloc((size_t)count * 5, sizeof(i64));
    i64 *sa_out = calloc((size_t)count * 5, sizeof(i64));
    i64 *occ = calloc((size_t)count, sizeof(i64));
    i64 *vap = calloc((size_t)count, sizeof(i64));
    i64 *buffered = calloc((size_t)count, sizeof(i64));
    i64 *ej_cum = calloc((size_t)count, sizeof(i64));
    i64 *wake = calloc((size_t)count, sizeof(i64));
    /* network interfaces: packet queues as linked lists over pnext */
    i64 *qhead = malloc((size_t)count * sizeof(i64));
    i64 *qtail = malloc((size_t)count * sizeof(i64));
    i64 *pnext = malloc((size_t)(n_pkts ? n_pkts : 1) * sizeof(i64));
    i64 *cur_pkt = malloc((size_t)count * sizeof(i64));
    i64 *cur_idx = calloc((size_t)count, sizeof(i64));
    i64 *cur_vc = calloc((size_t)count, sizeof(i64));
    i64 *ni_ptr = calloc((size_t)count, sizeof(i64));
    /* in-flight event rings: credits land at +1, link flits at +2 */
    i64 ring_cap = 5 * count + 8;
    i64 *cring = malloc((size_t)2 * ring_cap * 2 * sizeof(i64));
    i64 *aring = malloc((size_t)3 * ring_cap * 4 * sizeof(i64));
    i64 cring_n[2] = {0, 0};
    i64 aring_n[3] = {0, 0, 0};

    if (!f_arr || !f_idx || !f_pkt || !rh || !fl || !vc_out || !vc_elig ||
        !owner || !credits || !va_ptr || !sa_in || !sa_out || !occ || !vap ||
        !buffered || !ej_cum || !wake || !qhead || !qtail || !pnext ||
        !cur_pkt || !cur_idx || !cur_vc || !ni_ptr || !cring || !aring) {
        free(f_arr); free(f_idx); free(f_pkt); free(rh); free(fl);
        free(vc_out); free(vc_elig); free(owner); free(credits);
        free(va_ptr); free(sa_in); free(sa_out); free(occ); free(vap);
        free(buffered); free(ej_cum); free(wake); free(qhead); free(qtail);
        free(pnext); free(cur_pkt); free(cur_idx); free(cur_vc);
        free(ni_ptr); free(cring); free(aring);
        return 1;
    }

/* one telemetry sample row: instant, in-flight count (this cycle's
 * creations are folded in by the driver), per-router buffer occupancy
 * and cumulative ejected flits -- captured before the cycle's event
 * deliveries, i.e. the state the previous cycle's step left behind */
#define CAPTURE(c_) do {                                                  \
        if (n_s < s_cap) {                                                \
            s_cycle[n_s] = (c_);                                          \
            s_inflight[n_s] = in_flight;                                  \
            memcpy(s_occ + n_s * count, buffered,                         \
                   (size_t)count * sizeof(i64));                          \
            memcpy(s_ej + n_s * count, ej_cum,                            \
                   (size_t)count * sizeof(i64));                          \
            n_s++;                                                        \
        }                                                                 \
    } while (0)

    for (i64 g = 0; g < gslots; g++) { vc_out[g] = -1; owner[g] = -1; }
    for (i64 i = 0; i < count; i++) {
        qhead[i] = -1; qtail[i] = -1; cur_pkt[i] = -1;
        for (i64 v = 0; v < vcs; v++)
            credits[i * slots + v] = 1LL << 30;  /* ejection: unbounded */
        for (i64 port = 1; port < 5; port++)
            if (neighbor[i * 5 + port] >= 0)
                for (i64 v = 0; v < vcs; v++)
                    credits[i * slots + port * vcs + v] = depth;
    }

    i64 cycle = start_cycle, cycles_run = 0, flags = 0;
    i64 in_flight = 0, events_pending = 0, p = 0;
    i64 created_measured = 0, measured_ejected = 0, measured_flits = 0;
    i64 n_ej = 0, n_s = 0;
    i64 first_wu = -1, first_me = -1;

    for (;;) {
        if (cycle >= deadline) { cycles_run = deadline; break; }

        /* the reference loop reaches a boundary cycle with the old
         * segment's flits still in flight, so its idle check never
         * fires there; a seeded segment starts with in_flight == 0
         * (seeds enter through the packet columns below), so skip the
         * idle check on the seeded first cycle to match */
        if (!in_flight && !events_pending
            && (start_cycle == 0 || cycle != start_cycle)) {
            /* whole-mesh idle: jump to the next scheduled packet or the
             * stop boundary, or exit the way the reference loop does
             * when neither is due before the measurement window closes
             * (a boundary beyond it stays unprocessed, exactly like the
             * reference's); back-fill the sample instants the jump
             * skips (all-idle rows) */
            i64 nxt = (p < n_pkts && p_cycle[p] < measure_end)
                          ? p_cycle[p] : -1;
            if (nxt < 0 && (stop_cycle < 0 || stop_cycle > measure_end)) {
                cycles_run = deadline > measure_end ? measure_end + 1
                                                    : deadline;
                flags |= FLAG_IDLE_BREAK;
                if (interval) {
                    i64 c = (cycle + interval - 1) / interval * interval;
                    for (; c < cycles_run; c += interval) CAPTURE(c);
                }
                break;
            }
            i64 tgt = nxt;
            if (nxt < 0 || (stop_cycle >= 0 && stop_cycle < nxt))
                tgt = stop_cycle;
            if (interval) {
                i64 c = (cycle + interval - 1) / interval * interval;
                for (; c < tgt; c += interval) CAPTURE(c);
            }
            cycle = tgt;
        }

        /* fault boundary: hand control back to the driver, which
         * rebuilds the region and re-seeds the survivors (deadline
         * wins over a boundary, exactly like the reference loop) */
        if (cycle == stop_cycle) {
            cycles_run = cycle;
            flags |= FLAG_BOUNDARY;
            break;
        }

        if (cycle >= sched_upto) { flags |= FLAG_UNFINISHED; break; }

        /* first *visited* cycles past the phase thresholds -- the
         * driver replays the reference's phase-span transitions there */
        if (first_wu < 0 && cycle >= warmup) first_wu = cycle;
        if (first_me < 0 && cycle >= measure_end) first_me = cycle;

        if (interval && cycle % interval == 0) CAPTURE(cycle);

        int win = warmup <= cycle && cycle < measure_end;

        /* deliver credits scheduled for this cycle */
        {
            i64 r = cycle % 2, n = cring_n[r];
            for (i64 e = 0; e < n; e++) {
                i64 i = cring[(r * ring_cap + e) * 2];
                i64 s = cring[(r * ring_cap + e) * 2 + 1];
                credits[i * slots + s]++;
                wake[i] = cycle;
            }
            cring_n[r] = 0;
            events_pending -= n;
        }

        /* deliver link arrivals scheduled for this cycle */
        {
            i64 r = cycle % 3, n = aring_n[r];
            for (i64 e = 0; e < n; e++) {
                const i64 *ev = aring + (r * ring_cap + e) * 4;
                i64 i = ev[0], s = ev[1];
                i64 g = i * slots + s;
                i64 pos = rh[g] + fl[g];
                if (pos >= depth) pos -= depth;
                f_arr[g * depth + pos] = cycle;
                f_idx[g * depth + pos] = ev[2];
                f_pkt[g * depth + pos] = ev[3];
                fl[g]++;
                buffered[i]++;
                occ[i] |= 1LL << s;
                if (vc_out[g] < 0) vap[i] |= 1LL << s;
                wake[i] = cycle;
                if (win) counters[i * 4]++;
            }
            aring_n[r] = 0;
            events_pending -= n;
        }

        /* new packets enter their source NI queues */
        while (p < n_pkts && p_cycle[p] == cycle) {
            i64 i = p_src[p];
            pnext[p] = -1;
            if (qtail[i] < 0) qhead[i] = p; else pnext[qtail[i]] = p;
            qtail[i] = p;
            in_flight += p_len[p];
            if (p_meas[p]) created_measured++;
            p++;
        }

        /* NI injection: one flit per node per cycle into a claimed VC */
        for (i64 i = 0; i < count; i++) {
            i64 cp = cur_pkt[i];
            if (cp < 0) {
                if (qhead[i] < 0) continue;
                i64 chosen = -1;
                for (i64 k = 0; k < vcs; k++) {
                    i64 v = ni_ptr[i] + k;
                    if (v >= vcs) v -= vcs;
                    i64 g = i * slots + v;
                    if (fl[g] == 0 && vc_out[g] < 0) { chosen = v; break; }
                }
                if (chosen < 0) continue;
                ni_ptr[i] = chosen + 1 < vcs ? chosen + 1 : 0;
                cp = qhead[i];
                cur_pkt[i] = cp; cur_idx[i] = 0; cur_vc[i] = chosen;
                qhead[i] = pnext[cp];
                if (qhead[i] < 0) qtail[i] = -1;
            }
            i64 v = cur_vc[i], g = i * slots + v;
            if (fl[g] >= depth) continue;
            i64 pos = rh[g] + fl[g];
            if (pos >= depth) pos -= depth;
            f_arr[g * depth + pos] = cycle;
            f_idx[g * depth + pos] = cur_idx[i];
            f_pkt[g * depth + pos] = cp;
            fl[g]++;
            buffered[i]++;
            occ[i] |= 1LL << v;
            if (vc_out[g] < 0) vap[i] |= 1LL << v;
            wake[i] = cycle;
            if (win) counters[i * 4]++;
            p_started[cp] = 1;  /* past the NI: a fault would retransmit */
            cur_idx[i]++;
            if (cur_idx[i] >= p_len[cp]) cur_pkt[i] = -1;
        }

        /* per-router VC allocation + switch allocation + traversal */
        for (i64 i = 0; i < count; i++) {
            if (!buffered[i] || wake[i] > cycle) continue;
            int acted = 0;
            i64 min_wait = NEVER;
            i64 base_g = i * slots;

            /* VA: heads of unallocated occupied VCs request out-VCs,
             * grouped by output port in first-encounter order */
            i64 m = vap[i];
            i64 req_order[5], n_req = 0;
            i64 req_cnt[5] = {0, 0, 0, 0, 0};
            i64 req_s[5][60];
            if (m) {
                const i64 *route_i = route + i * mesh;
                while (m) {
                    i64 s = __builtin_ctzll((unsigned long long)m);
                    m &= m - 1;
                    i64 g = base_g + s;
                    i64 fpos = g * depth + rh[g];
                    i64 ready = f_arr[fpos] + 2;  /* BW, RC, then VA */
                    if (cycle < ready) {
                        if (ready < min_wait) min_wait = ready;
                        continue;
                    }
                    i64 out_p = route_i[p_dest[f_pkt[fpos]]];
                    if (out_p >= 8) {
                        /* packed adaptive candidate pair: prefer a free
                         * out-VC, then most downstream credits; strict
                         * improvement only, so ties keep the first
                         * (turn-model-preferred) candidate */
                        i64 cand[2] = {(out_p >> 4) & 7, (out_p >> 8) & 7};
                        i64 bf = -1, bc = -1;
                        for (int ci = 0; ci < 2; ci++) {
                            i64 ob = base_g + cand[ci] * vcs;
                            i64 fr = 0, cr = 0;
                            for (i64 v = 0; v < vcs; v++) {
                                if (owner[ob + v] < 0) fr = 1;
                                cr += credits[ob + v];
                            }
                            if (fr > bf || (fr == bf && cr > bc)) {
                                bf = fr; bc = cr; out_p = cand[ci];
                            }
                        }
                    }
                    if (req_cnt[out_p] == 0) req_order[n_req++] = out_p;
                    req_s[out_p][req_cnt[out_p]++] = s;
                }
                for (i64 r = 0; r < n_req; r++) {
                    i64 out_p = req_order[r];
                    i64 free_s[12], nf = 0;
                    i64 ob = out_p * vcs;
                    for (i64 v = 0; v < vcs; v++)
                        if (owner[base_g + ob + v] < 0) free_s[nf++] = ob + v;
                    if (!nf) continue;
                    i64 nr = req_cnt[out_p];
                    i64 *rs = req_s[out_p];
                    if (nr > 1) {
                        i64 ptr = va_ptr[i * 5 + out_p];
                        for (i64 a = 1; a < nr; a++) {
                            i64 x = rs[a];
                            i64 kx = (x - ptr) % slots;
                            if (kx < 0) kx += slots;
                            i64 b = a - 1;
                            while (b >= 0) {
                                i64 kb = (rs[b] - ptr) % slots;
                                if (kb < 0) kb += slots;
                                if (kb <= kx) break;
                                rs[b + 1] = rs[b];
                                b--;
                            }
                            rs[b + 1] = x;
                        }
                    }
                    i64 nz = nr < nf ? nr : nf;
                    for (i64 a = 0; a < nz; a++) {
                        i64 s = rs[a], os = free_s[a];
                        vc_out[base_g + s] = os;
                        vc_elig[base_g + s] = cycle + 1;
                        owner[base_g + os] = s;
                        va_ptr[i * 5 + out_p] = (s + 1) % slots;
                        vap[i] &= ~(1LL << s);
                        acted = 1;
                        if (win) counters[i * 4 + 3]++;
                    }
                }
            }

            /* SA stage 1: each input port nominates one ready VC */
            i64 mask = occ[i];
            i64 nom_in[5], nom_v[5], nom_s[5], nom_os[5], n_nom = 0;
            for (i64 in_p = 0; in_p < 5; in_p++) {
                i64 pm = (mask >> (in_p * vcs)) & vmask;
                if (!pm) continue;
                i64 start = sa_in[i * 5 + in_p];
                for (i64 k = 0; k < vcs; k++) {
                    i64 v = start + k;
                    if (v >= vcs) v -= vcs;
                    if (!((pm >> v) & 1)) continue;
                    i64 s = in_p * vcs + v, g = base_g + s;
                    i64 os = vc_out[g];
                    if (os < 0) continue;
                    i64 fpos = g * depth + rh[g];
                    if (f_idx[fpos] == 0) {   /* head: VA + one cycle   */
                        i64 ready = vc_elig[g];
                        if (cycle < ready) {
                            if (ready < min_wait) min_wait = ready;
                            continue;
                        }
                    } else {                  /* body: buffer write + 1 */
                        i64 ready = f_arr[fpos] + 1;
                        if (cycle < ready) {
                            if (ready < min_wait) min_wait = ready;
                            continue;
                        }
                    }
                    if (credits[base_g + os] <= 0) continue;
                    nom_in[n_nom] = in_p; nom_v[n_nom] = v;
                    nom_s[n_nom] = s; nom_os[n_nom] = os;
                    n_nom++;
                    break;
                }
            }
            if (!n_nom) {
                wake[i] = acted ? cycle + 1 : min_wait;
                continue;
            }

            /* SA stage 2: one grant per output port, groups resolved in
             * first-nomination order */
            i64 win_idx[5], n_win = 0;
            if (n_nom == 1) {
                win_idx[0] = 0; n_win = 1;
            } else {
                i64 seen_out[5], n_out = 0;
                for (i64 a = 0; a < n_nom; a++) {
                    i64 op = nom_os[a] / vcs;
                    int dup = 0;
                    for (i64 b = 0; b < n_out; b++)
                        if (seen_out[b] == op) { dup = 1; break; }
                    if (!dup) seen_out[n_out++] = op;
                }
                for (i64 b = 0; b < n_out; b++) {
                    i64 op = seen_out[b];
                    i64 ptr = sa_out[i * 5 + op];
                    i64 best = -1, best_k = 1LL << 30;
                    for (i64 a = 0; a < n_nom; a++) {
                        if (nom_os[a] / vcs != op) continue;
                        i64 kk = (nom_in[a] - ptr) % 5;
                        if (kk < 0) kk += 5;
                        if (kk < best_k) { best_k = kk; best = a; }
                    }
                    win_idx[n_win++] = best;
                }
            }

            /* traversal */
            for (i64 w = 0; w < n_win; w++) {
                i64 a = win_idx[w];
                i64 in_p = nom_in[a], v = nom_v[a];
                i64 s = nom_s[a], os = nom_os[a];
                i64 g = base_g + s;
                i64 fpos = g * depth + rh[g];
                i64 fi = f_idx[fpos], pk = f_pkt[fpos];
                fl[g]--;
                if (fl[g] == 0) {
                    rh[g] = 0;
                    occ[i] &= ~(1LL << s);
                } else {
                    rh[g] = rh[g] + 1 >= depth ? 0 : rh[g] + 1;
                }
                buffered[i]--;
                credits[base_g + os]--;
                if (win) counters[i * 4 + 1]++;
                int is_tail = fi == p_len[pk] - 1;
                if (in_p) {  /* return a credit upstream at +1 */
                    i64 up = neighbor[i * 5 + in_p];
                    i64 slot_up = rev[in_p] * vcs + v;
                    i64 r = (cycle + 1) % 2;
                    i64 e = cring_n[r]++;
                    cring[(r * ring_cap + e) * 2] = up;
                    cring[(r * ring_cap + e) * 2 + 1] = slot_up;
                    events_pending++;
                }
                if (is_tail) {
                    owner[base_g + os] = -1;
                    vc_out[g] = -1;
                    if (occ[i] & (1LL << s)) vap[i] |= 1LL << s;
                }
                if (os < vcs) {  /* LOCAL output: ejection */
                    in_flight--;
                    if (is_tail) {
                        ej_cum[i] += p_len[pk];
                        p_eject[pk] = cycle + 2;
                        if (p_meas[pk]) {
                            measured_ejected++;
                            measured_flits += p_len[pk];
                            ej_order[n_ej++] = pk;
                        }
                    }
                } else {         /* link traversal, arrival at +2 */
                    if (win) counters[i * 4 + 2]++;
                    if (fi == 0) p_hops[pk]++;
                    i64 out_p = os / vcs;
                    i64 down = neighbor[i * 5 + out_p];
                    i64 slot_down = rev[out_p] * vcs + (os - out_p * vcs);
                    i64 r = (cycle + 2) % 3;
                    i64 e = aring_n[r]++;
                    i64 *ev = aring + (r * ring_cap + e) * 4;
                    ev[0] = down; ev[1] = slot_down; ev[2] = fi; ev[3] = pk;
                    events_pending++;
                }
                sa_in[i * 5 + in_p] = v + 1 < vcs ? v + 1 : 0;
                sa_out[i * 5 + os / vcs] = (in_p + 1) % 5;
            }
            wake[i] = cycle + 1;
        }

        cycle++;
        if (cycle > measure_end && measured_ejected >= created_measured) {
            cycles_run = cycle;
            break;
        }
    }

    out[0] = cycles_run;
    out[1] = flags;
    out[2] = n_ej;
    out[3] = created_measured;
    out[4] = measured_ejected;
    out[5] = measured_flits;
    out[6] = n_s;
    out[7] = first_wu;
    out[8] = first_me;
    memcpy(ej_out, ej_cum, (size_t)count * sizeof(i64));

    free(f_arr); free(f_idx); free(f_pkt); free(rh); free(fl);
    free(vc_out); free(vc_elig); free(owner); free(credits);
    free(va_ptr); free(sa_in); free(sa_out); free(occ); free(vap);
    free(buffered); free(ej_cum); free(wake); free(qhead); free(qtail);
    free(pnext); free(cur_pkt); free(cur_idx); free(cur_vc); free(ni_ptr);
    free(cring); free(aring);
    return 0;
}
#undef CAPTURE
"""

_lock = threading.Lock()
_lib = None
_load_failed = False


def _find_compiler() -> str | None:
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    return None


def _build() -> ctypes.CDLL:
    digest = hashlib.sha256(_KERNEL_SOURCE.encode("utf-8")).hexdigest()[:16]
    cached = os.path.join(tempfile.gettempdir(), f"repro-noc-kernel-{digest}.so")
    if not os.path.exists(cached):
        compiler = _find_compiler()
        if compiler is None:
            raise RuntimeError("no C compiler on PATH")
        workdir = tempfile.mkdtemp(prefix="repro-noc-kernel-")
        try:
            source = os.path.join(workdir, "kernel.c")
            with open(source, "w", encoding="utf-8") as handle:
                handle.write(_KERNEL_SOURCE)
            built = os.path.join(workdir, "kernel.so")
            subprocess.run(
                [compiler, "-O2", "-fPIC", "-shared", "-o", built, source],
                check=True,
                capture_output=True,
            )
            os.replace(built, cached)  # atomic publish for parallel workers
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    lib = ctypes.CDLL(cached)
    ptr = ctypes.POINTER(ctypes.c_longlong)
    c64 = ctypes.c_longlong
    lib.run_kernel.restype = c64
    lib.run_kernel.argtypes = [
        c64, c64, c64, c64,          # count, vcs, depth, mesh
        ptr, ptr, ptr,               # neighbor, route, rev
        c64,                         # n_pkts
        ptr, ptr, ptr, ptr, ptr,     # p_cycle, p_src, p_dest, p_len, p_meas
        c64, c64, c64, c64,          # sched_upto, warmup, measure_end, deadline
        c64, c64,                    # start_cycle, stop_cycle
        ptr, ptr, ptr, ptr,          # p_hops, p_eject, p_started, ej_order
        ptr, ptr,                    # counters, out
        c64, c64,                    # interval, s_cap
        ptr, ptr, ptr, ptr, ptr,     # s_cycle, s_inflight, s_occ, s_ej, ej_out
    ]
    return lib


def _load() -> ctypes.CDLL | None:
    global _lib, _load_failed
    if _lib is not None or _load_failed:
        return _lib
    with _lock:
        if _lib is None and not _load_failed:
            try:
                _lib = _build()
            except Exception:
                _load_failed = True
    return _lib


def available() -> bool:
    """Whether the compiled kernel can run on this machine.

    False when ``REPRO_NOC_NATIVE`` is set to ``0``/``no``/``off``, when
    no C compiler is on the PATH, or when compilation failed once in
    this process (the failure is remembered, not retried).
    """
    if os.environ.get("REPRO_NOC_NATIVE", "").strip().lower() in ("0", "no", "off"):
        return False
    return _load() is not None


def _as_ptr(array: np.ndarray):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_longlong))


def _region_arrays(topology, routing):
    """Flattened routing/neighbor tables for one region, kernel-ready.

    Returns ``(nodes, index_of, route, neighbor)`` where ``route`` maps
    ``router_index * mesh_size + dest_node`` to an output port (adaptive
    candidate pairs packed as ``8 | (c0 << 4) | (c1 << 8)``) and
    ``neighbor`` maps ``router_index * 5 + port`` to the neighboring
    router index (-1 when unconnected)."""
    from repro.noc.routing import build_table

    nodes = list(topology.active_nodes)
    count = len(nodes)
    index_of = {node: i for i, node in enumerate(nodes)}
    mesh_size = topology.width * topology.height

    route = np.zeros(count * mesh_size, dtype=np.int64)
    for (current, dest), port in build_table(topology, routing).items():
        if type(port) is tuple:
            # adaptive tables hold candidate tuples; singletons collapse
            # to a plain port, pairs pack into one word for the kernel
            port = port[0] if len(port) == 1 else 8 | (port[0] << 4) | (port[1] << 8)
        route[index_of[current] * mesh_size + dest] = port
    neighbor = np.full(count * PORT_COUNT, -1, dtype=np.int64)
    for i, node in enumerate(nodes):
        for port in range(1, PORT_COUNT):
            other = topology.neighbor(node, PORT_TO_DIRECTION[port])
            if other is not None and other in index_of:
                neighbor[i * PORT_COUNT + port] = index_of[other]
    return nodes, index_of, route, neighbor


def _emit_run_telemetry(
    tel, spec, traffic, nodes, packet_cols, cycles_run, flags, saturated,
    created_measured, measured_ejected, measured_flits,
    n_s, s_cycle, s_inflight, s_occ, s_ej, ej_out,
) -> None:
    """Replay one kernel run's batched activity capture as telemetry.

    Reconstructs what the Python kernels emit live: the simulate/phase
    span tree, one sample event per captured instant, and the end-of-run
    metrics fold.  Per-router cumulative injection counts (and the
    in-flight contribution of packets created *at* a sample instant,
    which the kernel's capture point precedes) are rebuilt from the
    pre-drawn packet columns; occupancies and ejections come from the
    kernel's capture arrays.
    """
    from repro.noc.backends.reference import _record_sim_metrics
    from repro.noc.backends.vectorized import _emit_flat_sample

    warmup = spec.warmup_cycles
    measure_end = warmup + spec.measure_cycles
    count = len(nodes)
    p_cycle, p_src, p_len = packet_cols
    n_pkts = len(p_cycle)

    tracer = tel.tracer
    sim_span = tracer.span(
        "simulate",
        level=spec.topology.level,
        routing=spec.routing,
        rate=round(traffic.injection_rate, 6),
    )
    phase_span = tracer.span("phase:warmup", parent=sim_span.id)
    # phase boundaries the run actually crossed (an idle exit walks the
    # remaining ones to measure_end, exactly like the reference loop)
    if flags & _FLAG_IDLE_BREAK or cycles_run > warmup:
        phase_span.annotate(end_cycle=warmup)
        phase_span.end()
        phase_span = tracer.span(
            "phase:measure", parent=sim_span.id, start_cycle=warmup
        )
    if cycles_run > measure_end:
        phase_span.annotate(end_cycle=measure_end)
        phase_span.end()
        phase_span = tracer.span(
            "phase:drain", parent=sim_span.id, start_cycle=measure_end
        )

    inj: dict[int, int] = {}
    ptr = 0
    for k in range(n_s):
        c = int(s_cycle[k])
        flits_now = 0
        while ptr < n_pkts and p_cycle[ptr] <= c:
            node = nodes[p_src[ptr]]
            length = p_len[ptr]
            inj[node] = inj.get(node, 0) + length
            if p_cycle[ptr] == c:
                flits_now += length
            ptr += 1
        base = k * count
        occ_row = [int(x) for x in s_occ[base:base + count]]
        ej_row = s_ej[base:base + count]
        ej_map = {nodes[i]: int(ej_row[i]) for i in range(count)}
        _emit_flat_sample(
            tel, sim_span.id, c, nodes, occ_row,
            int(s_inflight[k]) + flits_now, inj, ej_map,
        )
    while ptr < n_pkts and p_cycle[ptr] < cycles_run:
        inj[nodes[p_src[ptr]]] = inj.get(nodes[p_src[ptr]], 0) + p_len[ptr]
        ptr += 1

    ej_final = {nodes[i]: int(ej_out[i]) for i in range(count) if ej_out[i]}
    _record_sim_metrics(
        tel, cycles_run, created_measured,
        {"measured": measured_ejected, "measured_flits": measured_flits},
        {"dropped": 0, "retransmitted": 0, "reconfigurations": 0},
        saturated, inj, ej_final, {},
    )
    phase_span.annotate(end_cycle=cycles_run)
    phase_span.end()
    sim_span.annotate(
        cycles=cycles_run,
        packets=created_measured,
        saturated=saturated,
        reconfigurations=0,
    )
    sim_span.end()


def execute(spec: SimulationSpec, telemetry=None) -> SimulationResult | None:
    """Run ``spec`` on the compiled kernel; None means "use the fallback".

    Returns None -- meaning "run the pure-Python flat engine instead" --
    when the kernel is unavailable or when the configuration exceeds its
    fixed-width state (more than ``_MAX_VCS`` virtual channels).  Fault
    schedules run as a chain of kernel segments, one per reconfigured
    region, with the Python side replaying the reference's boundary
    policy (drop-and-retransmit) between invocations.  Gated runs never
    reach this function (the policy is a Python object the kernel cannot
    call back into every cycle).  With active telemetry the kernel
    batches per-interval activity captures and the driver replays them
    as the spans, samples and metrics the Python kernels emit.
    """
    from repro.telemetry import active as _active_telemetry

    cfg = spec.config
    vcs = cfg.vcs_per_port
    if vcs > _MAX_VCS:
        return None
    lib = _load()
    if lib is None:
        return None
    tel = _active_telemetry(telemetry)
    interval = tel.sample_interval if tel is not None else 0
    if spec.faults:
        return _execute_faulted(spec, lib, tel, interval)

    from repro.noc.backends.vectorized import _PacketSchedule

    topology = spec.topology
    depth = cfg.buffers_per_vc
    count = len(topology.active_nodes)
    mesh_size = topology.width * topology.height
    nodes, index_of, route, neighbor = _region_arrays(topology, spec.routing)
    rev = np.array(
        [REVERSE_PORT.get(p, 0) for p in range(PORT_COUNT)], dtype=np.int64
    )

    warmup = spec.warmup_cycles
    measure_cycles = spec.measure_cycles
    measure_end = warmup + measure_cycles
    deadline = measure_end + spec.drain_cycles

    traffic = spec.traffic.build()
    schedule = _PacketSchedule(traffic, warmup, measure_end)

    # flatten the pre-drawn traffic into per-packet columns; grown (never
    # redrawn -- the RNG stream must stay continuous) when the kernel
    # outruns the horizon
    p_cycle: list[int] = []
    p_src: list[int] = []
    p_dest: list[int] = []
    p_len: list[int] = []
    p_meas: list[int] = []
    horizon = 0

    def extend_to(limit: int) -> None:
        nonlocal horizon
        for c in range(horizon, limit):
            for packet in schedule.take(c):
                p_cycle.append(c)
                p_src.append(index_of[packet.source])
                p_dest.append(packet.destination)
                p_len.append(packet.length)
                p_meas.append(1 if packet.measured else 0)
        horizon = limit

    # most runs drain within a few hundred cycles of the window closing;
    # only saturated runs walk the horizon out toward the full deadline
    extend_to(min(deadline, measure_end + 1 + min(spec.drain_cycles, 2048)))

    s_cap = deadline // interval + 2 if interval else 1
    while True:
        n_pkts = len(p_cycle)
        cols = [
            np.array(col, dtype=np.int64) if col else np.zeros(1, dtype=np.int64)
            for col in (p_cycle, p_src, p_dest, p_len, p_meas)
        ]
        p_hops = np.zeros(max(n_pkts, 1), dtype=np.int64)
        p_eject = np.full(max(n_pkts, 1), -1, dtype=np.int64)
        p_started = np.zeros(max(n_pkts, 1), dtype=np.int64)
        ej_order = np.zeros(max(n_pkts, 1), dtype=np.int64)
        counters = np.zeros(count * 4, dtype=np.int64)
        out = np.zeros(10, dtype=np.int64)
        s_cycle = np.zeros(s_cap, dtype=np.int64)
        s_inflight = np.zeros(s_cap, dtype=np.int64)
        s_occ = np.zeros(s_cap * count, dtype=np.int64)
        s_ej = np.zeros(s_cap * count, dtype=np.int64)
        ej_out = np.zeros(max(count, 1), dtype=np.int64)
        status = lib.run_kernel(
            count, vcs, depth, mesh_size,
            _as_ptr(neighbor), _as_ptr(route), _as_ptr(rev),
            n_pkts,
            *(_as_ptr(col) for col in cols),
            horizon, warmup, measure_end, deadline,
            0, -1,  # start at cycle 0, no fault boundary to stop at
            _as_ptr(p_hops), _as_ptr(p_eject), _as_ptr(p_started),
            _as_ptr(ej_order), _as_ptr(counters), _as_ptr(out),
            interval, s_cap,
            _as_ptr(s_cycle), _as_ptr(s_inflight), _as_ptr(s_occ),
            _as_ptr(s_ej), _as_ptr(ej_out),
        )
        if status != 0:
            return None
        if not out[1] & _FLAG_UNFINISHED:
            break
        extend_to(min(deadline, max(horizon * 4, horizon + 1)))

    cycles_run = int(out[0])
    n_ej = int(out[2])
    created_measured = int(out[3])
    measured_ejected = int(out[4])
    measured_flits = int(out[5])
    p_cycle_arr = cols[0]

    latency = RunningStats()
    hops_stats = RunningStats()
    latencies: list[int] = []
    for k in range(n_ej):
        pk = int(ej_order[k])
        lat = int(p_eject[pk]) - int(p_cycle_arr[pk])
        latency.add(lat)
        latencies.append(lat)
        hops_stats.add(int(p_hops[pk]))

    saturated = measured_ejected < created_measured
    endpoints = len(traffic.endpoints)

    if tel is not None:
        _emit_run_telemetry(
            tel, spec, traffic, nodes,
            (p_cycle, p_src, p_len),
            cycles_run, int(out[1]), saturated,
            created_measured, measured_ejected, measured_flits,
            int(out[6]), s_cycle, s_inflight, s_occ, s_ej, ej_out,
        )

    activity = NetworkActivity()
    for i, node in enumerate(nodes):
        router_activity = activity.router(node)
        router_activity.buffer_writes = int(counters[i * 4])
        router_activity.buffer_reads = int(counters[i * 4 + 1])
        router_activity.crossbar_traversals = int(counters[i * 4 + 1])
        router_activity.switch_arbitrations = int(counters[i * 4 + 1])
        router_activity.link_traversals = int(counters[i * 4 + 2])
        router_activity.vc_allocations = int(counters[i * 4 + 3])
        router_activity.cycles_powered = measure_cycles

    return SimulationResult(
        avg_latency=latency.mean if latency.count else 0.0,
        avg_hops=hops_stats.mean if hops_stats.count else 0.0,
        max_latency=int(latency.maximum) if latency.count else 0,
        p50_latency=percentile(latencies, 50) if latencies else 0.0,
        p95_latency=percentile(latencies, 95) if latencies else 0.0,
        p99_latency=percentile(latencies, 99) if latencies else 0.0,
        packets_measured=created_measured,
        packets_ejected=measured_ejected,
        offered_flits_per_cycle=traffic.injection_rate,
        accepted_flits_per_cycle=(
            measured_flits / (measure_cycles * endpoints)
            if measure_cycles and endpoints
            else 0.0
        ),
        saturated=saturated,
        cycles_run=cycles_run,
        measure_cycles=measure_cycles,
        activity=activity,
        endpoint_count=endpoints,
    )


def _execute_faulted(spec, lib, tel, interval) -> SimulationResult | None:
    """Run a faulted spec as a chain of fresh-network kernel segments.

    A fault boundary in the reference engine tears the network down and
    rebuilds it from scratch on the reconfigured region, re-injecting
    every surviving packet through the normal NI path -- so the only
    state that crosses a boundary is the survivor list, the fault
    counters and the cumulative telemetry.  Each segment is therefore an
    ordinary kernel run: it starts at the boundary with the survivors
    spliced into the packet columns (in pid order, ahead of that cycle's
    creations, exactly the reference's re-injection order) and stops at
    the next boundary, where the driver replays the reference's
    drop-and-retransmit policy before launching the next segment.
    """
    from repro.core.faults import reconfigured_topology
    from repro.noc.backends.vectorized import _PacketSchedule

    cfg = spec.config
    vcs = cfg.vcs_per_port
    depth = cfg.buffers_per_vc
    planned = spec.topology
    faults = spec.faults
    mesh_size = planned.width * planned.height

    warmup = spec.warmup_cycles
    measure_cycles = spec.measure_cycles
    measure_end = warmup + measure_cycles
    deadline = measure_end + spec.drain_cycles

    traffic = spec.traffic.build()
    schedule = _PacketSchedule(traffic, warmup, measure_end)
    boundaries = faults.boundaries()
    rev = np.array(
        [REVERSE_PORT.get(p, 0) for p in range(PORT_COUNT)], dtype=np.int64
    )
    s_cap = deadline // interval + 2 if interval else 1

    counters = {
        "dropped": 0, "retransmitted": 0, "rerouted": 0,
        "lost_measured": 0, "reconfigurations": 0,
    }
    min_level = planned.level
    created_measured = measured_ejected = measured_flits = 0
    latency = RunningStats()
    hops_stats = RunningStats()
    latencies: list[int] = []
    activity = NetworkActivity()
    segments: list[dict] = []  # per-segment telemetry replay payloads
    reconf_events: list[tuple[int, int]] = []  # (boundary cycle, new level)

    region, routing = planned, spec.routing
    degraded = False
    seg_start, next_b = 0, 0
    seeds: list[tuple] = []  # (Packet, started) in pid order
    cycles_run = 0
    idle_break = False
    # first *visited* cycle at/past each phase threshold, reference-true:
    # the reference lands on every busy cycle, including ones whose whole
    # creation batch is dropped -- invisible to the kernel, so they merge
    # in from the driver-side drop list
    first_wu = first_me = -1

    def _merge_first(cur: int, cand: int) -> int:
        return cand if cur < 0 or 0 <= cand < cur else cur

    while True:
        stop = boundaries[next_b] if next_b < len(boundaries) else -1
        nodes, index_of, route, neighbor = _region_arrays(region, routing)
        count = len(nodes)
        for node in nodes:
            activity.router(node)

        # traffic horizon for this segment: a stopped segment needs
        # exactly [seg_start, stop); a final one starts modest and grows
        # on UNFINISHED like the unfaulted driver
        if stop >= 0:
            limit = stop
        else:
            limit = min(
                deadline,
                max(measure_end + 1, seg_start + 1)
                + min(spec.drain_cycles, 2048),
            )
        while True:
            seg_pkts = [pkt for pkt, _ in seeds]
            p_cycle = [seg_start] * len(seeds)
            p_src = [index_of[pkt.source] for pkt, _ in seeds]
            p_dest = [pkt.destination for pkt, _ in seeds]
            p_len = [pkt.length for pkt, _ in seeds]
            p_meas = [1 if pkt.measured else 0 for pkt, _ in seeds]
            n_seed = len(seeds)
            drop_cycles: list[int] = []  # creation-time drops, per cycle
            for c in range(seg_start, limit):
                for packet in schedule.take(c):
                    if degraded and (
                        packet.source not in index_of
                        or packet.destination not in index_of
                    ):
                        drop_cycles.append(c)
                        continue
                    seg_pkts.append(packet)
                    p_cycle.append(c)
                    p_src.append(index_of[packet.source])
                    p_dest.append(packet.destination)
                    p_len.append(packet.length)
                    p_meas.append(1 if packet.measured else 0)
            n_pkts = len(seg_pkts)
            cols = [
                np.array(col, dtype=np.int64) if col else np.zeros(1, dtype=np.int64)
                for col in (p_cycle, p_src, p_dest, p_len, p_meas)
            ]
            p_hops = np.zeros(max(n_pkts, 1), dtype=np.int64)
            p_eject = np.full(max(n_pkts, 1), -1, dtype=np.int64)
            p_started = np.zeros(max(n_pkts, 1), dtype=np.int64)
            ej_order = np.zeros(max(n_pkts, 1), dtype=np.int64)
            kcounters = np.zeros(count * 4, dtype=np.int64)
            out = np.zeros(10, dtype=np.int64)
            s_cycle = np.zeros(s_cap, dtype=np.int64)
            s_inflight = np.zeros(s_cap, dtype=np.int64)
            s_occ = np.zeros(s_cap * count, dtype=np.int64)
            s_ej = np.zeros(s_cap * count, dtype=np.int64)
            ej_out = np.zeros(max(count, 1), dtype=np.int64)
            status = lib.run_kernel(
                count, vcs, depth, mesh_size,
                _as_ptr(neighbor), _as_ptr(route), _as_ptr(rev),
                n_pkts,
                *(_as_ptr(col) for col in cols),
                limit, warmup, measure_end, deadline,
                seg_start, stop,
                _as_ptr(p_hops), _as_ptr(p_eject), _as_ptr(p_started),
                _as_ptr(ej_order), _as_ptr(kcounters), _as_ptr(out),
                interval, s_cap,
                _as_ptr(s_cycle), _as_ptr(s_inflight), _as_ptr(s_occ),
                _as_ptr(s_ej), _as_ptr(ej_out),
            )
            if status != 0:
                return None  # nothing emitted yet; fall back cleanly
            flags = int(out[1])
            if flags & _FLAG_UNFINISHED:
                limit = min(deadline, max(limit * 4, limit + 1))
                continue
            break

        # fold this segment's activity and (analytic) powered cycles
        for i, node in enumerate(nodes):
            ra = activity.router(node)
            ra.buffer_writes += int(kcounters[i * 4])
            ra.buffer_reads += int(kcounters[i * 4 + 1])
            ra.crossbar_traversals += int(kcounters[i * 4 + 1])
            ra.switch_arbitrations += int(kcounters[i * 4 + 1])
            ra.link_traversals += int(kcounters[i * 4 + 2])
            ra.vc_allocations += int(kcounters[i * 4 + 3])
        stopped = bool(flags & _FLAG_BOUNDARY)
        span = (min(stop, measure_end) if stopped else measure_end) - max(
            seg_start, warmup
        )
        if span > 0:
            for node in nodes:
                activity.router(node).cycles_powered += span

        # global tallies: the kernel re-counts re-injected seeds in its
        # created_measured (they enter through the normal NI path), the
        # driver nets them back out
        created_measured += int(out[3]) - sum(
            1 for pkt, _ in seeds if pkt.measured
        )
        measured_ejected += int(out[4])
        measured_flits += int(out[5])
        for k in range(int(out[2])):
            pk = int(ej_order[k])
            lat = int(p_eject[pk]) - seg_pkts[pk].created_at
            latency.add(lat)
            latencies.append(lat)
            hops_stats.add(int(p_hops[pk]))
        # creation-time drops count only for cycles the loop visited
        cap = stop if stopped else int(out[0])
        counters["dropped"] += sum(1 for c in drop_cycles if c < cap)
        first_wu = _merge_first(first_wu, int(out[7]))
        first_me = _merge_first(first_me, int(out[8]))
        first_wu = _merge_first(
            first_wu, next((c for c in drop_cycles if warmup <= c < cap), -1)
        )
        first_me = _merge_first(
            first_me,
            next((c for c in drop_cycles if measure_end <= c < cap), -1),
        )

        if tel is not None:
            segments.append(dict(
                nodes=nodes, n_seed=n_seed, p_cycle=p_cycle, p_src=p_src,
                p_len=p_len, n_s=int(out[6]), s_cycle=s_cycle,
                s_inflight=s_inflight, s_occ=s_occ, s_ej=s_ej,
                ej_out=ej_out, cap=cap,
            ))

        if not stopped:
            cycles_run = int(out[0])
            idle_break = bool(flags & _FLAG_IDLE_BREAK)
            break

        # boundary: reconfigure and replay drop-and-retransmit (survivor
        # order is pid order, exactly like Network.extract_in_flight)
        region = reconfigured_topology(planned, faults, stop)
        degraded = region is not planned
        keep = region.active_nodes
        survivors = [
            (seg_pkts[k], bool(p_started[k]))
            for k in range(n_pkts)
            if p_eject[k] < 0
        ]
        survivors.sort(key=lambda entry: entry[0].pid)
        seeds = []
        for pkt, started in survivors:
            if pkt.source in keep and pkt.destination in keep:
                seeds.append((pkt, started))
                counters["retransmitted" if started else "rerouted"] += 1
            else:
                counters["dropped"] += 1
                if pkt.measured:
                    counters["lost_measured"] += 1
        counters["reconfigurations"] += 1
        min_level = min(min_level, region.level)
        reconf_events.append((stop, region.level))
        # reconfigured regions always route CDOR (sound on any convex
        # region, equals XY on the restored full mesh)
        routing = "cdor"
        seg_start = stop
        next_b += 1

    saturated = (
        measured_ejected < created_measured - counters["lost_measured"]
    )
    endpoints = len(traffic.endpoints)

    if tel is not None:
        _emit_faulted_telemetry(
            tel, spec, traffic, segments, reconf_events, first_wu, first_me,
            cycles_run, idle_break, deadline, saturated, created_measured,
            measured_ejected, measured_flits, counters,
        )

    return SimulationResult(
        avg_latency=latency.mean if latency.count else 0.0,
        avg_hops=hops_stats.mean if hops_stats.count else 0.0,
        max_latency=int(latency.maximum) if latency.count else 0,
        p50_latency=percentile(latencies, 50) if latencies else 0.0,
        p95_latency=percentile(latencies, 95) if latencies else 0.0,
        p99_latency=percentile(latencies, 99) if latencies else 0.0,
        packets_measured=created_measured,
        packets_ejected=measured_ejected,
        offered_flits_per_cycle=traffic.injection_rate,
        accepted_flits_per_cycle=(
            measured_flits / (measure_cycles * endpoints)
            if measure_cycles and endpoints
            else 0.0
        ),
        saturated=saturated,
        cycles_run=cycles_run,
        measure_cycles=measure_cycles,
        activity=activity,
        endpoint_count=endpoints,
        packets_dropped=counters["dropped"],
        packets_retransmitted=counters["retransmitted"],
        packets_rerouted=counters["rerouted"],
        reconfigurations=counters["reconfigurations"],
        min_region_level=min_level,
    )


def _emit_faulted_telemetry(
    tel, spec, traffic, segments, reconf_events, first_wu, first_me,
    cycles_run, idle_break, deadline, saturated, created_measured,
    measured_ejected, measured_flits, counters,
) -> None:
    """Replay a segmented faulted run's telemetry in reference order.

    Phase-span transitions happen at the first *visited* cycle past each
    threshold (the kernel reports it per segment), reconfigure spans at
    their boundary cycle -- a boundary that coincides with a transition
    keeps the reference order: boundary processing precedes the phase
    check, so the reconfigure span lands in the outgoing phase's span.
    Samples replay per segment with the cumulative injection/ejection
    maps carried across boundaries, like the reference's live dicts.
    """
    from repro.noc.backends.reference import _record_sim_metrics
    from repro.noc.backends.vectorized import _emit_flat_sample

    warmup = spec.warmup_cycles
    measure_end = warmup + spec.measure_cycles

    tracer = tel.tracer
    sim_span = tracer.span(
        "simulate",
        level=spec.topology.level,
        routing=spec.routing,
        rate=round(traffic.injection_rate, 6),
    )
    phase_span = tracer.span("phase:warmup", parent=sim_span.id)
    phase = 0

    def flip_measure():
        nonlocal phase, phase_span
        phase = 1
        phase_span.annotate(end_cycle=warmup)
        phase_span.end()
        phase_span = tracer.span(
            "phase:measure", parent=sim_span.id, start_cycle=warmup
        )

    def flip_drain():
        nonlocal phase, phase_span
        phase = 2
        phase_span.annotate(end_cycle=measure_end)
        phase_span.end()
        phase_span = tracer.span(
            "phase:drain", parent=sim_span.id, start_cycle=measure_end
        )

    for boundary, level in reconf_events:
        if phase == 0 and 0 <= first_wu < boundary:
            flip_measure()
        if phase == 1 and 0 <= first_me < boundary:
            flip_drain()
        reconf_span = tracer.span(
            "reconfigure", parent=phase_span.id, cycle=boundary
        )
        reconf_span.annotate(level=level)
        reconf_span.end()
        if phase == 0 and 0 <= first_wu <= boundary:
            flip_measure()
        if phase == 1 and 0 <= first_me <= boundary:
            flip_drain()
    if phase == 0 and (first_wu >= 0 or idle_break):
        flip_measure()
    if phase == 1 and (
        first_me >= 0 or (idle_break and deadline > measure_end)
    ):
        flip_drain()

    inj: dict[int, int] = {}
    ej_base: dict[int, int] = {}
    for seg in segments:
        nodes = seg["nodes"]
        count = len(nodes)
        p_cycle, p_src, p_len = seg["p_cycle"], seg["p_src"], seg["p_len"]
        n_rows, n_seed = len(p_cycle), seg["n_seed"]
        s_cycle, s_occ, s_ej = seg["s_cycle"], seg["s_occ"], seg["s_ej"]
        ptr = 0
        for k in range(seg["n_s"]):
            c = int(s_cycle[k])
            # the kernel captures before the cycle's queue entries; the
            # reference samples after them, so fold in this instant's
            # rows (re-injected seeds count toward in-flight flits but
            # not toward the cumulative injection map)
            flits_now = 0
            while ptr < n_rows and p_cycle[ptr] <= c:
                if p_cycle[ptr] == c:
                    flits_now += p_len[ptr]
                if ptr >= n_seed:
                    node = nodes[p_src[ptr]]
                    inj[node] = inj.get(node, 0) + p_len[ptr]
                ptr += 1
            base = k * count
            occ_row = [int(x) for x in s_occ[base:base + count]]
            ej_map = {
                nodes[i]: ej_base.get(nodes[i], 0) + int(s_ej[base + i])
                for i in range(count)
            }
            _emit_flat_sample(
                tel, sim_span.id, c, nodes, occ_row,
                int(seg["s_inflight"][k]) + flits_now, inj, ej_map,
            )
        while ptr < n_rows and p_cycle[ptr] < seg["cap"]:
            if ptr >= n_seed:
                node = nodes[p_src[ptr]]
                inj[node] = inj.get(node, 0) + p_len[ptr]
            ptr += 1
        ej_out = seg["ej_out"]
        for i, node in enumerate(nodes):
            if ej_out[i]:
                ej_base[node] = ej_base.get(node, 0) + int(ej_out[i])

    _record_sim_metrics(
        tel, cycles_run, created_measured,
        {"measured": measured_ejected, "measured_flits": measured_flits},
        counters, saturated, inj, ej_base, {},
    )
    phase_span.annotate(end_cycle=cycles_run)
    phase_span.end()
    sim_span.annotate(
        cycles=cycles_run,
        packets=created_measured,
        saturated=saturated,
        reconfigurations=counters["reconfigurations"],
    )
    sim_span.end()


__all__ = ["available", "execute"]
