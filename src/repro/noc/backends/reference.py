"""The cycle-accurate reference backend.

This is the original warmup / measure / drain driver from
:mod:`repro.noc.sim`, moved verbatim behind the
:class:`~repro.noc.backends.base.SimBackend` protocol: it steps live
:class:`~repro.noc.network.Network` routers one cycle at a time and is
the semantic ground truth every other backend is validated against
(``tests/test_backends.py`` holds the cross-backend equivalence suite).

Follows the standard booksim methodology: the network warms up for
``warmup_cycles``, every packet created during the next ``measure_cycles``
is tagged as *measured*, injection continues (the traffic process stays
stationary) until every measured packet has been ejected or the drain
budget runs out.  A run that cannot drain is reported as saturated --
exactly the behaviour behind the "NoC-sprinting saturates earlier"
observation of Figure 11.
"""

from __future__ import annotations

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.noc.backends.base import ALL_CAPABILITIES, required_capabilities
from repro.noc.network import Network
from repro.noc.result import SimulationResult
from repro.noc.routing import build_table
from repro.noc.spec import SimulationSpec
from repro.noc.traffic import TrafficGenerator
from repro.telemetry import active as _active_telemetry
from repro.util.stats import RunningStats, percentile


class ReferenceBackend:
    """Cycle-accurate simulation of live Router objects (the default)."""

    name = "reference"
    capabilities = ALL_CAPABILITIES
    # backend="auto" picks the supporting backend with the highest rank;
    # the reference engine is the universal (slowest) floor at 0
    speed_rank = 0

    def supports(self, spec, *, gating_policy=None, telemetry=None) -> bool:
        """The reference engine simulates every declared capability."""
        return required_capabilities(spec, gating_policy, telemetry) <= self.capabilities

    def run(
        self, spec: SimulationSpec, *, gating_policy=None, telemetry=None
    ) -> SimulationResult:
        return _execute(
            spec.topology,
            spec.traffic.build(),
            spec.config,
            spec.routing,
            spec.warmup_cycles,
            spec.measure_cycles,
            spec.drain_cycles,
            gating_policy,
            faults=spec.faults,
            telemetry=telemetry,
        )


def _reconfigure(
    network: Network,
    topology: SprintTopology,
    faults,
    cfg: NoCConfig,
    cycle: int,
    counters: dict,
) -> tuple[Network, SprintTopology]:
    """Rebuild the network around the fault set active at ``cycle``.

    Implements the drop-and-retransmit reconfiguration policy: a smaller
    convex region is grown around the faults (falling back towards the
    master when the full level is unreachable), packets whose source and
    destination survive are re-injected at their source NI with their
    original creation timestamps (the retransmission penalty shows up as
    latency), and packets stranded on a dead endpoint are dropped.
    """
    from repro.core.faults import reconfigured_topology

    new_topology = reconfigured_topology(topology, faults, cycle)
    # CDOR is the only routing that is sound on an arbitrary convex
    # region (and equals XY on the full mesh), so reconfigured networks
    # always route CDOR -- including when a recovery restores the
    # planned region
    table = build_table(new_topology, "cdor")

    replacement = Network(new_topology, table, cfg, activity=network.activity)
    replacement.cycle = cycle
    replacement.counting = network.counting
    replacement.on_packet_ejected = network.on_packet_ejected
    for packet, entered in network.extract_in_flight():
        if (
            packet.source in replacement.routers
            and packet.destination in replacement.routers
        ):
            packet.hops = 0
            replacement.inject(packet)
            counters["retransmitted" if entered else "rerouted"] += 1
        else:
            counters["dropped"] += 1
            if packet.measured:
                counters["lost_measured"] += 1
    counters["reconfigurations"] += 1
    return replacement, new_topology


def _execute(
    topology: SprintTopology,
    traffic: TrafficGenerator,
    cfg: NoCConfig,
    routing: str,
    warmup_cycles: int,
    measure_cycles: int,
    drain_cycles: int,
    gating_policy,
    faults=None,
    telemetry=None,
) -> SimulationResult:
    """The warmup / measure / drain loop shared by both entry points."""
    network = Network(topology, build_table(topology, routing), cfg)

    tel = _active_telemetry(telemetry)
    tracer = tel.tracer if tel is not None else None
    interval = tel.sample_interval if tel is not None else 0
    sampling = tel is not None
    inj_flits: dict[int, int] = {}
    ej_flits: dict[int, int] = {}
    gated_cycles: dict[int, int] = {}
    if tracer is not None:
        sim_span = tracer.span(
            "simulate",
            level=topology.level,
            routing=routing,
            rate=round(traffic.injection_rate, 6),
        )
        phase_span = tracer.span("phase:warmup", parent=sim_span.id)

    latency = RunningStats()
    hops = RunningStats()
    latencies: list[int] = []
    ejected = {"measured": 0, "all": 0, "measured_flits": 0}

    def on_eject(packet) -> None:
        ejected["all"] += 1
        if sampling:
            ej_flits[packet.destination] = (
                ej_flits.get(packet.destination, 0) + packet.length
            )
        if packet.measured:
            ejected["measured"] += 1
            ejected["measured_flits"] += packet.length
            latency.add(packet.latency)
            latencies.append(packet.latency)
            hops.add(packet.hops)

    network.on_packet_ejected = on_eject

    boundaries = faults.boundaries() if faults else []
    next_boundary = 0
    counters = {
        "dropped": 0, "retransmitted": 0, "rerouted": 0,
        "lost_measured": 0, "reconfigurations": 0,
    }
    active_topology = topology
    min_level = topology.level if boundaries else 0

    created_measured = 0
    measure_end = warmup_cycles + measure_cycles
    deadline = measure_end + drain_cycles
    while True:
        cycle = network.cycle
        if cycle >= deadline:
            break
        if next_boundary < len(boundaries) and boundaries[next_boundary] == cycle:
            next_boundary += 1
            if tracer is not None:
                reconf_span = tracer.span(
                    "reconfigure", parent=phase_span.id, cycle=cycle
                )
            network, active_topology = _reconfigure(
                network, topology, faults, cfg, cycle, counters
            )
            min_level = min(min_level, active_topology.level)
            if tracer is not None:
                reconf_span.annotate(level=active_topology.level)
                reconf_span.end()
        in_window = warmup_cycles <= cycle < measure_end
        for packet in traffic.packets_for_cycle(cycle, measured=in_window):
            if active_topology is not topology and (
                packet.source not in network.routers
                or packet.destination not in network.routers
            ):
                # the endpoint's router fell out of the degraded region:
                # the packet is lost at the NI before it is ever created
                counters["dropped"] += 1
                continue
            network.inject(packet)
            if sampling:
                inj_flits[packet.source] = (
                    inj_flits.get(packet.source, 0) + packet.length
                )
            if packet.measured:
                created_measured += 1
        if cycle == warmup_cycles:
            network.counting = True
            if tracer is not None:
                phase_span.annotate(end_cycle=cycle)
                phase_span.end()
                phase_span = tracer.span(
                    "phase:measure", parent=sim_span.id, start_cycle=cycle
                )
        if cycle == measure_end:
            network.counting = False
            if tracer is not None:
                phase_span.annotate(end_cycle=cycle)
                phase_span.end()
                phase_span = tracer.span(
                    "phase:drain", parent=sim_span.id, start_cycle=cycle
                )
        if interval and cycle % interval == 0:
            _emit_router_sample(
                tel, sim_span.id, network, cycle,
                inj_flits, ej_flits, gated_cycles, interval,
            )
        if gating_policy is not None:
            gating_policy.step(network)
        network.step()
        if cycle >= measure_end and (
            ejected["measured"] >= created_measured - counters["lost_measured"]
        ):
            break

    saturated = (
        ejected["measured"] < created_measured - counters["lost_measured"]
    )
    endpoints = len(traffic.endpoints)
    if tel is not None:
        _record_sim_metrics(
            tel, network.cycle, created_measured, ejected, counters, saturated,
            inj_flits, ej_flits, gated_cycles,
        )
        if tracer is not None:
            phase_span.annotate(end_cycle=network.cycle)
            phase_span.end()
            sim_span.annotate(
                cycles=network.cycle,
                packets=created_measured,
                saturated=saturated,
                reconfigurations=counters["reconfigurations"],
            )
            sim_span.end()
    return SimulationResult(
        avg_latency=latency.mean if latency.count else 0.0,
        avg_hops=hops.mean if hops.count else 0.0,
        max_latency=int(latency.maximum) if latency.count else 0,
        p50_latency=percentile(latencies, 50) if latencies else 0.0,
        p95_latency=percentile(latencies, 95) if latencies else 0.0,
        p99_latency=percentile(latencies, 99) if latencies else 0.0,
        packets_measured=created_measured,
        packets_ejected=ejected["measured"],
        offered_flits_per_cycle=traffic.injection_rate,
        accepted_flits_per_cycle=(
            ejected["measured_flits"] / (measure_cycles * endpoints)
            if measure_cycles and endpoints
            else 0.0
        ),
        saturated=saturated,
        cycles_run=network.cycle,
        measure_cycles=measure_cycles,
        activity=network.activity,
        endpoint_count=endpoints,
        packets_dropped=counters["dropped"],
        packets_retransmitted=counters["retransmitted"],
        packets_rerouted=counters["rerouted"],
        reconfigurations=counters["reconfigurations"],
        min_region_level=min_level,
    )


def _emit_router_sample(
    tel, span_id, network, cycle, inj_flits, ej_flits, gated_cycles, interval
) -> None:
    """One periodic in-simulation sample: per-router flit counts (cumulative
    injected/ejected), instantaneous buffer occupancy and gating state.

    Gated-cycle counts are accumulated at sampling granularity (a router
    gated at the sample instant is charged the whole interval) -- an
    approximation that keeps the per-cycle hot path untouched.
    """
    routers = {}
    buffered_total = 0
    for node, router in network.routers.items():
        occupancy = router.buffered_flits
        buffered_total += occupancy
        if router.gated:
            gated_cycles[node] = gated_cycles.get(node, 0) + interval
        routers[str(node)] = {
            "inj": inj_flits.get(node, 0),
            "ej": ej_flits.get(node, 0),
            "occ": occupancy,
            "gated": 1 if router.gated else 0,
        }
    tel.metrics.histogram(
        "noc_buffer_occupancy_flits",
        help="total buffered flits at sample instants",
        buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
    ).observe(buffered_total)
    tel.tracer.sample(
        {
            "cycle": cycle,
            "in_flight": network.flits_in_flight,
            "buffered": buffered_total,
            "routers": routers,
        },
        parent=span_id,
    )


def _record_sim_metrics(
    tel, cycles_run, created_measured, ejected, counters, saturated,
    inj_flits, ej_flits, gated_cycles,
) -> None:
    """Fold one finished run into the telemetry metrics registry."""
    metrics = tel.metrics
    metrics.counter("sim_runs_total", help="network simulations executed").inc()
    metrics.counter("sim_cycles_total", help="simulated cycles").inc(cycles_run)
    metrics.counter(
        "sim_packets_measured_total", help="packets tagged in measure windows"
    ).inc(created_measured)
    metrics.counter(
        "sim_packets_ejected_total", help="measured packets ejected"
    ).inc(ejected["measured"])
    metrics.counter(
        "sim_packets_dropped_total", help="packets lost to faults"
    ).inc(counters["dropped"])
    metrics.counter(
        "sim_packets_retransmitted_total", help="packets re-injected after faults"
    ).inc(counters["retransmitted"])
    metrics.counter(
        "sim_reconfigurations_total", help="mid-run network reconfigurations"
    ).inc(counters["reconfigurations"])
    if saturated:
        metrics.counter("sim_saturated_total", help="runs that failed to drain").inc()
    for node, flits in sorted(inj_flits.items()):
        metrics.counter(
            "noc_router_injected_flits_total",
            help="flits injected at each router's NI", router=node,
        ).inc(flits)
    for node, flits in sorted(ej_flits.items()):
        metrics.counter(
            "noc_router_ejected_flits_total",
            help="flits ejected at each router's NI", router=node,
        ).inc(flits)
    for node, cycles in sorted(gated_cycles.items()):
        metrics.counter(
            "noc_router_gated_cycles_total",
            help="cycles spent power-gated (sampled)", router=node,
        ).inc(cycles)


__all__ = ["ReferenceBackend"]
