"""Simulation-backend protocol and registry.

A *backend* is an engine that executes a
:class:`~repro.noc.spec.SimulationSpec` and returns a
:class:`~repro.noc.result.SimulationResult`.  Backends register under a
short name (``"reference"``, ``"vectorized"``, ...) and declare a
``capabilities`` set; the driver (:func:`repro.noc.sim.simulate`) looks a
backend up by the spec's ``backend`` field and refuses the run with a
:class:`BackendCapabilityError` when the spec needs a feature the backend
does not implement -- so a fast path can decline fault schedules instead
of silently mis-simulating them.

Every future engine (sharded, async, GPU) slots in through
:func:`register_backend`; nothing else in the stack needs to change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.noc.result import SimulationResult
from repro.noc.spec import SimulationSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry

# capability tokens a backend may declare
CAP_FAULTS = "faults"  # mid-run FaultSchedule reconfiguration
CAP_GATING = "gating_policy"  # per-cycle dynamic power-gating policies
CAP_ADAPTIVE_ROUTING = "adaptive_routing"  # west_first / negative_first
CAP_SAMPLING = "telemetry_sampling"  # periodic in-simulation samples
CAP_TRACING = "tracing"  # phase spans + end-of-run metrics

ALL_CAPABILITIES = frozenset(
    {CAP_FAULTS, CAP_GATING, CAP_ADAPTIVE_ROUTING, CAP_SAMPLING, CAP_TRACING}
)


@runtime_checkable
class SimBackend(Protocol):
    """What a simulation engine must provide to be registrable."""

    name: str
    capabilities: frozenset[str]

    def run(
        self,
        spec: SimulationSpec,
        *,
        gating_policy=None,
        telemetry: "Telemetry | None" = None,
    ) -> SimulationResult:
        """Execute the spec and return its result."""
        ...  # pragma: no cover - protocol body


class BackendCapabilityError(ValueError):
    """A spec asked a backend for a feature it does not implement."""

    def __init__(self, backend: str, missing: frozenset[str], hint: str = ""):
        self.backend = backend
        self.missing = frozenset(missing)
        needs = ", ".join(sorted(self.missing))
        message = (
            f"backend {backend!r} does not support: {needs}"
            f" (available backends: {', '.join(list_backends())})"
        )
        if hint:
            message += f"; {hint}"
        super().__init__(message)


_REGISTRY: dict[str, SimBackend] = {}


def register_backend(backend: SimBackend, *, replace: bool = False) -> SimBackend:
    """Add a backend to the registry under ``backend.name``.

    ``replace=True`` swaps an existing registration (useful for tests and
    for instrumented wrappers); otherwise a duplicate name is an error.
    Returns the backend so the call can be used as a decorator-style
    one-liner on an instance.
    """
    name = getattr(backend, "name", None)
    if not isinstance(name, str) or not name:
        raise ValueError("a backend must carry a non-empty string .name")
    if not callable(getattr(backend, "run", None)):
        raise ValueError(f"backend {name!r} has no callable .run(spec)")
    if not isinstance(getattr(backend, "capabilities", None), frozenset):
        raise ValueError(f"backend {name!r} must declare a frozenset .capabilities")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"backend {name!r} is already registered (pass replace=True to swap)"
        )
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> SimBackend:
    """Look a backend up by name; unknown names list the alternatives."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown simulation backend {name!r}; "
            f"registered: {', '.join(list_backends())}"
        ) from None


def list_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def required_capabilities(
    spec: SimulationSpec, gating_policy=None, telemetry=None
) -> frozenset[str]:
    """The capability set a concrete run needs from its backend."""
    from repro.telemetry import active

    need = set()
    if spec.faults:
        need.add(CAP_FAULTS)
    if gating_policy is not None:
        need.add(CAP_GATING)
    if spec.routing not in ("cdor", "xy"):
        need.add(CAP_ADAPTIVE_ROUTING)
    tel = active(telemetry)
    if tel is not None:
        need.add(CAP_TRACING)
        if tel.sample_interval:
            need.add(CAP_SAMPLING)
    return frozenset(need)


def check_capabilities(
    backend: SimBackend, spec: SimulationSpec, gating_policy=None, telemetry=None
) -> None:
    """Raise :class:`BackendCapabilityError` if the run needs more than
    ``backend`` declares."""
    missing = required_capabilities(spec, gating_policy, telemetry) - backend.capabilities
    if missing:
        hint = ""
        if CAP_SAMPLING in missing:
            hint = (
                "disable periodic sampling (sample_interval=0) or use a "
                "sampling-capable backend ('reference' or 'vectorized')"
            )
        elif missing & {CAP_FAULTS, CAP_GATING, CAP_ADAPTIVE_ROUTING}:
            hint = "use the 'reference' backend for this run"
        raise BackendCapabilityError(backend.name, missing, hint)


__all__ = [
    "ALL_CAPABILITIES",
    "BackendCapabilityError",
    "CAP_ADAPTIVE_ROUTING",
    "CAP_FAULTS",
    "CAP_GATING",
    "CAP_SAMPLING",
    "CAP_TRACING",
    "SimBackend",
    "check_capabilities",
    "get_backend",
    "list_backends",
    "register_backend",
    "required_capabilities",
]
