"""Simulation-backend protocol and registry.

A *backend* is an engine that executes a
:class:`~repro.noc.spec.SimulationSpec` and returns a
:class:`~repro.noc.result.SimulationResult`.  Backends register under a
short name (``"reference"``, ``"vectorized"``, ...) and declare a
``capabilities`` set; the driver (:func:`repro.noc.sim.simulate`) looks a
backend up by the spec's ``backend`` field and refuses the run with a
:class:`BackendCapabilityError` when the spec needs a feature the backend
does not implement -- so a fast path can decline fault schedules instead
of silently mis-simulating them.

Every future engine (sharded, async, GPU) slots in through
:func:`register_backend`; nothing else in the stack needs to change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.noc.result import SimulationResult
from repro.noc.spec import SimulationSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry

# capability tokens a backend may declare
CAP_FAULTS = "faults"  # mid-run FaultSchedule reconfiguration
CAP_GATING = "gating_policy"  # per-cycle dynamic power-gating policies
CAP_ADAPTIVE_ROUTING = "adaptive_routing"  # west_first / negative_first
CAP_SAMPLING = "telemetry_sampling"  # periodic in-simulation samples
CAP_TRACING = "tracing"  # phase spans + end-of-run metrics

ALL_CAPABILITIES = frozenset(
    {CAP_FAULTS, CAP_GATING, CAP_ADAPTIVE_ROUTING, CAP_SAMPLING, CAP_TRACING}
)


@runtime_checkable
class SimBackend(Protocol):
    """What a simulation engine must provide to be registrable."""

    name: str
    capabilities: frozenset[str]

    def run(
        self,
        spec: SimulationSpec,
        *,
        gating_policy=None,
        telemetry: "Telemetry | None" = None,
    ) -> SimulationResult:
        """Execute the spec and return its result."""
        ...  # pragma: no cover - protocol body


class BackendCapabilityError(ValueError):
    """A spec asked a backend for a feature it does not implement.

    Carries a structured payload alongside the message: ``missing`` is the
    capability tokens the backend lacks for this run, ``alternatives`` the
    names of registered backends whose declared capabilities do cover it.
    """

    def __init__(
        self,
        backend: str,
        missing: frozenset[str],
        hint: str = "",
        alternatives: tuple[str, ...] = (),
    ):
        self.backend = backend
        self.missing = frozenset(missing)
        self.alternatives = tuple(alternatives)
        needs = ", ".join(sorted(self.missing))
        message = (
            f"backend {backend!r} does not support: {needs}"
            f" (available backends: {', '.join(list_backends())})"
        )
        if self.alternatives:
            message += (
                f"; supported by: {', '.join(self.alternatives)}"
            )
        if hint:
            message += f"; {hint}"
        super().__init__(message)


_REGISTRY: dict[str, SimBackend] = {}


def register_backend(backend: SimBackend, *, replace: bool = False) -> SimBackend:
    """Add a backend to the registry under ``backend.name``.

    ``replace=True`` swaps an existing registration (useful for tests and
    for instrumented wrappers); otherwise a duplicate name is an error.
    Returns the backend so the call can be used as a decorator-style
    one-liner on an instance.
    """
    name = getattr(backend, "name", None)
    if not isinstance(name, str) or not name:
        raise ValueError("a backend must carry a non-empty string .name")
    if not callable(getattr(backend, "run", None)):
        raise ValueError(f"backend {name!r} has no callable .run(spec)")
    if not isinstance(getattr(backend, "capabilities", None), frozenset):
        raise ValueError(f"backend {name!r} must declare a frozenset .capabilities")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"backend {name!r} is already registered (pass replace=True to swap)"
        )
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> SimBackend:
    """Look a backend up by name; unknown names list the alternatives."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown simulation backend {name!r}; "
            f"registered: {', '.join(list_backends())}"
        ) from None


def list_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def required_capabilities(
    spec: SimulationSpec, gating_policy=None, telemetry=None
) -> frozenset[str]:
    """The capability set a concrete run needs from its backend."""
    from repro.telemetry import active

    need = set()
    if spec.faults:
        need.add(CAP_FAULTS)
    if gating_policy is not None:
        need.add(CAP_GATING)
    if spec.routing not in ("cdor", "xy"):
        need.add(CAP_ADAPTIVE_ROUTING)
    tel = active(telemetry)
    if tel is not None:
        need.add(CAP_TRACING)
        if tel.sample_interval:
            need.add(CAP_SAMPLING)
    return frozenset(need)


def requirements(
    spec: SimulationSpec, *, gating_policy=None, telemetry=None
) -> frozenset[str]:
    """The capability tokens a concrete run needs from its backend.

    Public keyword-only face of :func:`required_capabilities` -- the single
    source of truth :func:`check_capabilities` and ``backend="auto"``
    resolution are built on.  A spec alone (no policy, no telemetry) needs
    at most ``faults`` and ``adaptive_routing``; the run-time arguments add
    ``gating_policy``, ``tracing`` and ``telemetry_sampling``.
    """
    return required_capabilities(spec, gating_policy, telemetry)


def supports(
    backend: SimBackend,
    spec: SimulationSpec,
    *,
    gating_policy=None,
    telemetry=None,
) -> bool:
    """True when ``backend`` declares every capability the run needs.

    Backends may provide their own ``supports`` method (e.g. to decline
    specs on grounds finer than capability tokens); this falls back to the
    declared-capability subset test for those that do not.
    """
    own = getattr(backend, "supports", None)
    if callable(own):
        return bool(own(spec, gating_policy=gating_policy, telemetry=telemetry))
    return requirements(
        spec, gating_policy=gating_policy, telemetry=telemetry
    ) <= backend.capabilities


def _speed_rank(backend: SimBackend) -> int:
    """Higher = faster; third-party backends default to the reference's 0."""
    rank = getattr(backend, "speed_rank", 0)
    return rank if isinstance(rank, int) else 0


def resolve_backend(
    spec: SimulationSpec, *, gating_policy=None, telemetry=None
) -> SimBackend:
    """The fastest registered backend that supports this run.

    This is what ``backend="auto"`` resolves through: every registered
    backend is tested with :func:`supports`, and the supporting one with
    the highest ``speed_rank`` wins (ties break deterministically by
    name).  The reference backend supports everything, so resolution
    never fails while it stays registered.
    """
    candidates = [
        backend
        for backend in _REGISTRY.values()
        if supports(backend, spec, gating_policy=gating_policy, telemetry=telemetry)
    ]
    if not candidates:
        raise BackendCapabilityError(
            "auto",
            requirements(spec, gating_policy=gating_policy, telemetry=telemetry),
            hint="no registered backend supports this run",
        )
    return max(candidates, key=lambda b: (_speed_rank(b), b.name))


def check_capabilities(
    backend: SimBackend, spec: SimulationSpec, gating_policy=None, telemetry=None
) -> None:
    """Raise :class:`BackendCapabilityError` if the run needs more than
    ``backend`` declares."""
    need = required_capabilities(spec, gating_policy, telemetry)
    missing = need - backend.capabilities
    if missing:
        alternatives = tuple(
            name
            for name in list_backends()
            if name != backend.name and need <= _REGISTRY[name].capabilities
        )
        hint = ""
        if CAP_SAMPLING in missing:
            hint = (
                "disable periodic sampling (sample_interval=0) or use a "
                "sampling-capable backend ('reference' or 'vectorized')"
            )
        elif missing & {CAP_FAULTS, CAP_GATING, CAP_ADAPTIVE_ROUTING}:
            hint = "pass backend='auto' to pick a capable engine"
        raise BackendCapabilityError(backend.name, missing, hint, alternatives)


__all__ = [
    "ALL_CAPABILITIES",
    "BackendCapabilityError",
    "CAP_ADAPTIVE_ROUTING",
    "CAP_FAULTS",
    "CAP_GATING",
    "CAP_SAMPLING",
    "CAP_TRACING",
    "SimBackend",
    "check_capabilities",
    "get_backend",
    "list_backends",
    "register_backend",
    "required_capabilities",
    "requirements",
    "resolve_backend",
    "supports",
]
