"""Pluggable simulation backends.

Importing this package registers the two built-in engines:

- ``"reference"`` -- the cycle-accurate object-model simulator (supports
  every feature: faults, gating policies, adaptive routing, telemetry
  sampling and tracing);
- ``"vectorized"`` -- the flat-array fast path (bit-identical results on
  fault-free deterministic-routing specs, several times faster; declines
  anything else with a :class:`BackendCapabilityError`).

Third-party engines join with::

    from repro.noc.backends import register_backend

    register_backend(MyBackend())

and become selectable through ``SimulationSpec(backend="...")``,
``run_simulation(..., backend="...")`` and ``repro sweep --backend ...``.
"""

from repro.noc.backends.base import (
    ALL_CAPABILITIES,
    CAP_ADAPTIVE_ROUTING,
    CAP_FAULTS,
    CAP_GATING,
    CAP_SAMPLING,
    CAP_TRACING,
    BackendCapabilityError,
    SimBackend,
    check_capabilities,
    get_backend,
    list_backends,
    register_backend,
    required_capabilities,
)
from repro.noc.backends.reference import ReferenceBackend
from repro.noc.backends.vectorized import VectorizedBackend

register_backend(ReferenceBackend())
register_backend(VectorizedBackend())

__all__ = [
    "ALL_CAPABILITIES",
    "BackendCapabilityError",
    "CAP_ADAPTIVE_ROUTING",
    "CAP_FAULTS",
    "CAP_GATING",
    "CAP_SAMPLING",
    "CAP_TRACING",
    "ReferenceBackend",
    "SimBackend",
    "VectorizedBackend",
    "check_capabilities",
    "get_backend",
    "list_backends",
    "register_backend",
    "required_capabilities",
]
