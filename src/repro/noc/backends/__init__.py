"""Pluggable simulation backends.

Importing this package registers the two built-in engines:

- ``"reference"`` -- the cycle-accurate object-model simulator, the
  semantic ground truth every other engine is validated against;
- ``"vectorized"`` -- the flat-array fast path, bit-identical to the
  reference on *every* capability (fault schedules, gating policies,
  adaptive routing, telemetry sampling and tracing) and several times
  faster; a self-compiled C kernel accelerates the runs it covers, with
  a pure-Python flat engine as the documented fallback for the rest.

Both engines declare the full capability set, so explicit backend
selection never needs to fall back for feature reasons; capability
checks still guard third-party engines, which join with::

    from repro.noc.backends import register_backend

    register_backend(MyBackend())

and become selectable through ``SimulationSpec(backend="...")``,
``run_simulation(..., backend="...")`` and ``repro sweep --backend ...``.
Passing ``backend="auto"`` anywhere a backend name is accepted resolves
through :func:`resolve_backend`: the fastest registered engine (highest
``speed_rank``) whose capabilities cover the run's
:func:`requirements` wins.
"""

from repro.noc.backends.base import (
    ALL_CAPABILITIES,
    CAP_ADAPTIVE_ROUTING,
    CAP_FAULTS,
    CAP_GATING,
    CAP_SAMPLING,
    CAP_TRACING,
    BackendCapabilityError,
    SimBackend,
    check_capabilities,
    get_backend,
    list_backends,
    register_backend,
    required_capabilities,
    requirements,
    resolve_backend,
    supports,
)
from repro.noc.backends.reference import ReferenceBackend
from repro.noc.backends.vectorized import VectorizedBackend

register_backend(ReferenceBackend())
register_backend(VectorizedBackend())

__all__ = [
    "ALL_CAPABILITIES",
    "BackendCapabilityError",
    "CAP_ADAPTIVE_ROUTING",
    "CAP_FAULTS",
    "CAP_GATING",
    "CAP_SAMPLING",
    "CAP_TRACING",
    "ReferenceBackend",
    "SimBackend",
    "VectorizedBackend",
    "check_capabilities",
    "get_backend",
    "list_backends",
    "register_backend",
    "required_capabilities",
    "requirements",
    "resolve_backend",
    "supports",
]
