"""The vectorized fast-path backend.

Simulates exactly the same five-stage wormhole VC pipeline as the
reference backend (:mod:`repro.noc.backends.reference`) but trades the
object-per-router / object-per-flit model for flat per-mesh state arrays
and batched work:

- **flat state arrays** -- every router's buffers, credit counts, VC
  allocations and round-robin pointers live in flat lists indexed by
  ``slot = port * vcs + vc``, with one bit per slot in a per-router
  occupancy mask, so allocation and switch arbitration scan only the
  slots that actually hold flits instead of all ``ports x vcs`` of them;
- **batched injection draws** -- the spec's Bernoulli traffic process is
  pre-generated in chunks into a NumPy-backed schedule (per-cycle packet
  counts as an array, per-cycle packet lists alongside), which also
  yields the next-arrival lookup that lets the kernel skip runs of
  whole-mesh idle cycles in O(1);
- **analytic accounting** -- counters the reference increments every
  cycle (``cycles_powered``) are computed in closed form from the
  measurement window whenever no gating policy forces per-cycle state.

The arbitration order, credit timing and round-robin pointer updates
replicate the reference kernel decision for decision, so for any spec
the two backends produce *bit-identical*
:class:`~repro.noc.result.SimulationResult` values from the same RNG
stream (enforced by the cross-backend equivalence suite in
``tests/test_backends.py`` and the CI smoke in
``benchmarks/bench_extension_backend.py``).

The full capability set is supported:

- **fault schedules** -- boundary cycles tear the flat arrays down and
  rebuild them on the reconfigured convex region computed by the shared
  :func:`repro.core.faults.reconfigured_topology`, replaying the
  reference's drop-and-retransmit policy (surviving packets re-enter
  their source NI in pid order, stranded ones are dropped) and the same
  ``dropped`` / ``retransmitted`` / ``rerouted`` / ``reconfigurations``
  / ``min_region_level`` counters;
- **dynamic gating policies** -- the policy drives a duck-typed network
  view over the flat arrays (:class:`_FlatNetworkView`) exposing exactly
  the surface :class:`~repro.noc.power_gating.TimeoutGatingPolicy`
  documents, and the kernel replays the reference's wake/gate timing
  (wake requests on arrivals, NI pressure and blocked nominations;
  wakeups finishing before the cycle's allocation passes);
- **adaptive routing** -- multi-candidate routes from the shared
  :func:`repro.noc.routing.build_table` are resolved at VC-allocation
  time with the reference's credit-based selection;
- tracing spans, end-of-run metrics and periodic telemetry sampling --
  sampled runs emit the same per-router sample events as the reference
  backend (buffer occupancies are captured from the flat state arrays at
  the same pipeline instant, gated routers are charged the sampling
  interval identically, and whole-mesh idle stretches the kernel
  fast-forwards over are back-filled with the idle samples the reference
  would have taken).

The compiled C kernel (:mod:`repro.noc.backends.native`) is used when it
covers the run -- including fault schedules, which it executes as a
chain of per-region kernel segments with the boundary policy replayed in
Python between invocations.  Only gated runs stay in the pure-Python
flat engine here (the policy is an arbitrary Python object the kernel
cannot call back into every cycle), which is still far faster than the
reference object model.
"""

from __future__ import annotations

import numpy as np

from repro.core.faults import reconfigured_topology
from repro.noc.activity import NetworkActivity
from repro.noc.backends.base import (
    ALL_CAPABILITIES,
    check_capabilities,
    required_capabilities,
)
from repro.noc.backends.reference import _record_sim_metrics
from repro.noc.result import SimulationResult
from repro.noc.routing import (
    PORT_COUNT,
    PORT_TO_DIRECTION,
    REVERSE_PORT,
    build_table,
)
from repro.noc.spec import SimulationSpec
from repro.noc.traffic import TrafficGenerator
from repro.telemetry import active as _active_telemetry
from repro.util.stats import RunningStats, percentile

_CHUNK = 1024  # cycles of traffic pre-generated per batch
_WAKEUP_LATENCY = 8  # matches Network's default; policies read it off the view
_NEVER = 1 << 60


class _PacketSchedule:
    """Chunked pre-generation of the traffic process.

    The network state never feeds back into the open-loop Bernoulli
    source, so the packet sequence is a pure function of the spec: we can
    draw it ahead of the simulation in batches from the *same* generator
    (hence the same RNG stream, pids and destinations as the reference
    driver).  Per-cycle packet counts are kept in a NumPy array so the
    kernel can find the next non-empty cycle with one ``argmax``.
    """

    def __init__(self, traffic: TrafficGenerator, warmup: int, measure_end: int):
        self._traffic = traffic
        self._warmup = warmup
        self._measure_end = measure_end
        self._cycles: list[list] = []
        self._counts = np.zeros(0, dtype=np.int64)
        self._upto = 0  # cycles generated so far

    def _extend(self) -> None:
        base = self._upto
        chunk = np.zeros(_CHUNK, dtype=np.int64)
        cycles = self._cycles
        traffic = self._traffic
        warmup, measure_end = self._warmup, self._measure_end
        for offset in range(_CHUNK):
            cycle = base + offset
            packets = traffic.packets_for_cycle(
                cycle, measured=warmup <= cycle < measure_end
            )
            cycles.append(packets)
            if packets:
                chunk[offset] = len(packets)
        self._counts = np.concatenate((self._counts, chunk))
        self._upto += _CHUNK

    def take(self, cycle: int) -> list:
        """Packets created at ``cycle`` (the driver consumes every cycle)."""
        while cycle >= self._upto:
            self._extend()
        return self._cycles[cycle]

    def next_busy(self, cycle: int, limit: int) -> int | None:
        """First cycle >= ``cycle`` with packets, or None if none < ``limit``."""
        while True:
            window = self._counts[cycle:self._upto]
            if window.size:
                nonzero = np.flatnonzero(window)
                if nonzero.size:
                    busy = cycle + int(nonzero[0])
                    return busy if busy < limit else None
            if self._upto >= limit:
                return None
            self._extend()
            cycle = max(cycle, self._upto - _CHUNK)


class _FlatRouterView:
    """Duck-typed ``Router`` stand-in over the flat arrays.

    Exposes exactly the surface the gating policies document: ``gated``,
    ``wake_at``, ``buffered_flits``, ``last_active_cycle`` and
    :meth:`gate`.  Wake requests and wake completion stay inside the
    kernel (as they do inside ``Network.step`` for the reference).
    """

    __slots__ = ("_net", "_i")

    def __init__(self, net: "_FlatNetworkView", i: int):
        self._net = net
        self._i = i

    @property
    def gated(self) -> bool:
        return self._net._gated[self._i]

    @property
    def wake_at(self) -> int | None:
        return self._net._wake_at[self._i]

    @property
    def buffered_flits(self) -> int:
        return self._net._buffered[self._i]

    @property
    def last_active_cycle(self) -> int:
        return self._net._last_active[self._i]

    def gate(self) -> bool:
        """Power-gate this router; refuses if any flit is buffered."""
        net, i = self._net, self._i
        if net._buffered[i] > 0:
            return False
        net._gated[i] = True
        net._wake_at[i] = None
        return True


class _FlatNetworkView:
    """What a gating policy sees of the flat engine.

    Mirrors the :class:`~repro.noc.network.Network` attributes the
    policies read (``cycle``, ``routers``, ``wakeup_latency``,
    ``ni_busy``, ``powered_routers``) over the kernel's shared state
    lists, so the *same policy object* drives both backends identically.
    """

    def __init__(
        self, nodes, index_of, gated, wake_at, last_active, buffered,
        ni_state, ni_queue, ni_qhead,
    ):
        self.cycle = 0
        self.wakeup_latency = _WAKEUP_LATENCY
        self._index_of = index_of
        self._gated = gated
        self._wake_at = wake_at
        self._last_active = last_active
        self._buffered = buffered
        self._ni_state = ni_state
        self._ni_queue = ni_queue
        self._ni_qhead = ni_qhead
        self.routers = {
            node: _FlatRouterView(self, i) for i, node in enumerate(nodes)
        }

    def ni_busy(self, node: int) -> bool:
        """True while the node's NI is mid-packet or has queued packets."""
        i = self._index_of[node]
        return (
            self._ni_state[i] is not None
            or len(self._ni_queue[i]) > self._ni_qhead[i]
        )

    def powered_routers(self) -> int:
        return sum(1 for g in self._gated if not g)


class VectorizedBackend:
    """Flat-array exact replica of the reference pipeline."""

    name = "vectorized"
    capabilities = ALL_CAPABILITIES
    # backend="auto" picks the supporting backend with the highest rank;
    # the flat engine outruns the reference on everything it covers
    speed_rank = 10

    def supports(self, spec, *, gating_policy=None, telemetry=None) -> bool:
        """The flat engine replicates every declared capability."""
        return required_capabilities(spec, gating_policy, telemetry) <= self.capabilities

    def run(
        self, spec: SimulationSpec, *, gating_policy=None, telemetry=None
    ) -> SimulationResult:
        check_capabilities(self, spec, gating_policy, telemetry)
        # the compiled kernel produces the same bits, faster; telemetry
        # runs ride it too -- the kernel batches per-interval activity
        # captures and the driver replays them as spans/samples/metrics.
        # Gated runs stay in Python: the policy is an arbitrary Python
        # object the C kernel cannot call back into every cycle.
        if gating_policy is None:
            from repro.noc.backends import native

            if native.available():
                result = native.execute(spec, telemetry=telemetry)
                if result is not None:
                    return result
        return _execute_vectorized(spec, gating_policy, telemetry)


def _emit_flat_sample(
    tel, span_id, cycle, nodes, occ_list, in_flight, inj_flits, ej_flits,
    gated=None, gated_cycles=None, interval=0,
) -> None:
    """One periodic sample from flat-array state, byte-compatible with the
    reference backend's :func:`_emit_router_sample` payload.

    ``occ_list`` is the per-router buffered-flit counts at the sample
    instant (``None`` for whole-mesh idle instants the kernel skipped);
    ``gated`` is the per-router gating flags when a policy is active
    (``None`` otherwise -- every router reads as powered), and a gated
    router is charged the whole ``interval`` into ``gated_cycles``
    exactly like the reference sampler.
    """
    routers = {}
    buffered_total = 0
    for i, node in enumerate(nodes):
        occupancy = occ_list[i] if occ_list is not None else 0
        buffered_total += occupancy
        is_gated = 1 if gated is not None and gated[i] else 0
        if is_gated:
            gated_cycles[node] = gated_cycles.get(node, 0) + interval
        routers[str(node)] = {
            "inj": inj_flits.get(node, 0),
            "ej": ej_flits.get(node, 0),
            "occ": occupancy,
            "gated": is_gated,
        }
    tel.metrics.histogram(
        "noc_buffer_occupancy_flits",
        help="total buffered flits at sample instants",
        buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
    ).observe(buffered_total)
    tel.tracer.sample(
        {
            "cycle": cycle,
            "in_flight": in_flight,
            "buffered": buffered_total,
            "routers": routers,
        },
        parent=span_id,
    )


def _emit_idle_samples(
    tel, span_id, start, stop, interval, nodes, inj_flits, ej_flits
) -> None:
    """Back-fill the samples the reference loop would have taken over the
    whole-mesh idle cycles ``[start, stop)`` the kernel fast-forwarded."""
    first = -(-start // interval) * interval  # first multiple >= start
    for c in range(first, stop, interval):
        _emit_flat_sample(tel, span_id, c, nodes, None, 0, inj_flits, ej_flits)


def _region_state(topology, cfg, routing):
    """Fresh flat router/NI state for one topology (initial or reconfigured).

    Mirrors ``Network.__init__``: wired links, full credit counts,
    un-allocated VCs, zeroed round-robin pointers.  Adaptive routes keep
    their candidate tuples except singletons, which are scalarized so the
    hot path stays integer-only for forced hops.
    """
    vcs = cfg.vcs_per_port
    depth = cfg.buffers_per_vc
    slots = PORT_COUNT * vcs

    nodes = list(topology.active_nodes)
    count = len(nodes)
    index_of = {node: i for i, node in enumerate(nodes)}

    table = build_table(topology, routing)
    # route[i] maps a destination *node id* to the output port (or the
    # adaptive candidate tuple) at router i
    mesh_size = topology.width * topology.height
    route: list[list] = [[0] * mesh_size for _ in range(count)]
    for (current, dest), port in table.items():
        if type(port) is tuple and len(port) == 1:
            port = port[0]
        route[index_of[current]][dest] = port

    # neighbor[i][port] -> router index on that side (-1 when unconnected)
    neighbor = [[-1] * PORT_COUNT for _ in range(count)]
    for i, node in enumerate(nodes):
        for port in range(1, PORT_COUNT):
            other = topology.neighbor(node, PORT_TO_DIRECTION[port])
            if other is not None and other in index_of:
                neighbor[i][port] = index_of[other]

    # --- flat per-router state, indexed by slot = port * vcs + vc -------
    buf = [[[] for _ in range(slots)] for _ in range(count)]
    head = [[0] * slots for _ in range(count)]  # consumed prefix of buf[i][s]
    vc_out = [[-1] * slots for _ in range(count)]
    vc_elig = [[0] * slots for _ in range(count)]
    out_owner = [[-1] * slots for _ in range(count)]
    credits = [[0] * slots for _ in range(count)]
    for i in range(count):
        row = credits[i]
        for v in range(vcs):
            row[v] = 1 << 30  # ejection is never back-pressured
        for port in range(1, PORT_COUNT):
            if neighbor[i][port] >= 0:
                base = port * vcs
                for v in range(vcs):
                    row[base + v] = depth
    va_ptr = [[0] * PORT_COUNT for _ in range(count)]
    sa_in_ptr = [[0] * PORT_COUNT for _ in range(count)]
    sa_out_ptr = [[0] * PORT_COUNT for _ in range(count)]
    occ = [0] * count  # bit s set <=> buf[i][s] is non-empty
    va_pending = [0] * count  # bit s set <=> buf[i][s] non-empty, no out-VC
    buffered = [0] * count
    # wake[i]: earliest cycle router i's allocation pass could possibly do
    # anything (see the kernel loop)
    wake = [0] * count

    # network interfaces
    ni_queue: list[list] = [[] for _ in range(count)]
    ni_qhead = [0] * count
    ni_state: list[list | None] = [None] * count
    ni_ptr = [0] * count

    return (
        nodes, count, index_of, route, neighbor, buf, head, vc_out, vc_elig,
        out_owner, credits, va_ptr, sa_in_ptr, sa_out_ptr, occ, va_pending,
        buffered, wake, ni_queue, ni_qhead, ni_state, ni_ptr,
    )


def _fold_activity(activity, nodes, writes, reads, links_used, va_grants):
    """Accumulate one region segment's flat counters into the shared
    :class:`NetworkActivity` (buffer reads double as crossbar traversals
    and switch arbitrations, exactly as in ``Network._traverse``)."""
    for i, node in enumerate(nodes):
        ra = activity.router(node)
        ra.buffer_writes += writes[i]
        ra.buffer_reads += reads[i]
        ra.crossbar_traversals += reads[i]
        ra.switch_arbitrations += reads[i]
        ra.link_traversals += links_used[i]
        ra.vc_allocations += va_grants[i]


def _execute_vectorized(
    spec: SimulationSpec, gating_policy=None, telemetry=None
) -> SimulationResult:
    planned = spec.topology
    cfg = spec.config
    vcs = cfg.vcs_per_port
    depth = cfg.buffers_per_vc
    slots = PORT_COUNT * vcs
    vmask = (1 << vcs) - 1

    (
        nodes, count, index_of, route, neighbor, buf, head, vc_out, vc_elig,
        out_owner, credits, va_ptr, sa_in_ptr, sa_out_ptr, occ, va_pending,
        buffered, wake, ni_queue, ni_qhead, ni_state, ni_ptr,
    ) = _region_state(planned, cfg, spec.routing)
    ni_active: dict[int, None] = {}

    # activity persists across fault reconfigurations (the reference hands
    # one NetworkActivity from network to network); every region's routers
    # get an entry even if they never move a flit
    activity = NetworkActivity()
    for node in nodes:
        activity.router(node)

    # activity counters for the current region segment (measure window only)
    writes = [0] * count
    reads = [0] * count  # == crossbar traversals == switch arbitrations
    links_used = [0] * count
    va_grants = [0] * count

    # dynamic power gating state; when no policy runs, cycles_powered is
    # analytic (whole-window) instead of per-cycle
    gating_on = gating_policy is not None
    gated = [False] * count
    wake_at_l: list[int | None] = [None] * count
    last_active = [0] * count
    powered = [0] * count
    view = None
    if gating_on:
        view = _FlatNetworkView(
            nodes, index_of, gated, wake_at_l, last_active, buffered,
            ni_state, ni_queue, ni_qhead,
        )

    # event buckets keyed by delivery cycle
    arrivals: dict[int, list] = {}
    credit_events: dict[int, list] = {}

    warmup = spec.warmup_cycles
    measure_cycles = spec.measure_cycles
    measure_end = warmup + measure_cycles
    deadline = measure_end + spec.drain_cycles

    traffic = spec.traffic.build()
    schedule = _PacketSchedule(traffic, warmup, measure_end)

    tel = _active_telemetry(telemetry)
    tracer = tel.tracer if tel is not None else None
    interval = tel.sample_interval if tel is not None else 0
    inj_flits: dict[int, int] = {}
    ej_flits: dict[int, int] = {}
    gated_cycles: dict[int, int] = {}
    if tracer is not None:
        sim_span = tracer.span(
            "simulate",
            level=planned.level,
            routing=spec.routing,
            rate=round(traffic.injection_rate, 6),
        )
        phase_span = tracer.span("phase:warmup", parent=sim_span.id)
        phase = 0  # 0 warmup, 1 measure, 2 drain

    faults = spec.faults
    boundaries = faults.boundaries() if faults else []
    next_boundary = 0
    counters = {
        "dropped": 0, "retransmitted": 0, "rerouted": 0,
        "lost_measured": 0, "reconfigurations": 0,
    }
    degraded_now = False
    min_level = planned.level if boundaries else 0
    seg_start = 0  # first cycle of the current region segment

    latency = RunningStats()
    hops_stats = RunningStats()
    latencies: list[int] = []
    measured_ejected = 0
    measured_flits = 0
    created_measured = 0
    in_flight = 0

    cycle = 0
    cycles_run = 0
    while True:
        if cycle >= deadline:
            cycles_run = deadline
            break

        # whole-mesh idle fast-forward: with nothing buffered, queued or
        # in the air, state can only change at the next scheduled packet
        # or fault boundary.  Gated runs never fast-forward: the policy
        # observes (and bills) every cycle.
        if (
            not gating_on
            and not in_flight and not arrivals and not credit_events
        ):
            nb = (
                boundaries[next_boundary]
                if next_boundary < len(boundaries)
                else None
            )
            nxt = schedule.next_busy(cycle, measure_end)
            if nxt is None and (nb is None or nb > measure_end):
                # no further packet or boundary before the measurement
                # window closes: the reference loop idles to measure_end
                # and exits there (boundaries beyond it stay unprocessed)
                cycles_run = measure_end + 1 if deadline > measure_end else deadline
                if tracer is not None:
                    # walk the remaining phase boundaries the reference
                    # would have crossed while idling
                    if phase == 0:
                        phase = 1
                        phase_span.annotate(end_cycle=warmup)
                        phase_span.end()
                        phase_span = tracer.span(
                            "phase:measure", parent=sim_span.id, start_cycle=warmup
                        )
                    if phase == 1 and deadline > measure_end:
                        phase = 2
                        phase_span.annotate(end_cycle=measure_end)
                        phase_span.end()
                        phase_span = tracer.span(
                            "phase:drain", parent=sim_span.id,
                            start_cycle=measure_end,
                        )
                if interval:
                    _emit_idle_samples(
                        tel, sim_span.id, cycle, measure_end, interval,
                        nodes, inj_flits, ej_flits,
                    )
                if deadline > measure_end:
                    # the reference loop still visits measure_end before
                    # its drained exit and creates that cycle's
                    # (unmeasured) packets; mirror its drop and injection
                    # accounting so samples and final counters agree
                    tail_flits = 0
                    for packet in schedule.take(measure_end):
                        if degraded_now and (
                            packet.source not in index_of
                            or packet.destination not in index_of
                        ):
                            counters["dropped"] += 1
                            continue
                        if tel is not None:
                            inj_flits[packet.source] = (
                                inj_flits.get(packet.source, 0) + packet.length
                            )
                        tail_flits += packet.length
                    if interval and measure_end % interval == 0:
                        _emit_flat_sample(
                            tel, sim_span.id, measure_end, nodes, None,
                            tail_flits, inj_flits, ej_flits,
                        )
                break
            if nxt is None:
                jump = nb
            elif nb is None:
                jump = nxt
            else:
                jump = nxt if nxt < nb else nb
            if jump > cycle:
                if interval:
                    _emit_idle_samples(
                        tel, sim_span.id, cycle, jump, interval,
                        nodes, inj_flits, ej_flits,
                    )
                cycle = jump
                continue  # re-run the deadline check at the landing cycle

        # fault boundary: tear the region down and rebuild it around the
        # fault set now active (drop-and-retransmit, shared region helper)
        if next_boundary < len(boundaries) and boundaries[next_boundary] == cycle:
            next_boundary += 1
            if tracer is not None:
                reconf_span = tracer.span(
                    "reconfigure", parent=phase_span.id, cycle=cycle
                )
            # fold the finished segment's counters before teardown
            _fold_activity(activity, nodes, writes, reads, links_used, va_grants)
            if gating_on:
                for i in range(count):
                    if powered[i]:
                        activity.router(nodes[i]).cycles_powered += powered[i]
            else:
                span = min(cycle, measure_end) - max(seg_start, warmup)
                if span > 0:
                    for node in nodes:
                        activity.router(node).cycles_powered += span
            seg_start = cycle

            # collect every in-flight packet with its entered flag,
            # mirroring Network.extract_in_flight (pid order, entered
            # means at least one flit left the source NI)
            seen: dict[int, list] = {}
            for i in range(count):
                state = ni_state[i]
                if state is not None:
                    packet = state[0]
                    prev = seen.get(packet.pid)
                    if prev is None:
                        seen[packet.pid] = [packet, state[1] > 0]
                    elif state[1] > 0:
                        prev[1] = True
                queue = ni_queue[i]
                for k in range(ni_qhead[i], len(queue)):
                    packet = queue[k]
                    if packet.pid not in seen:
                        seen[packet.pid] = [packet, False]
                buf_i = buf[i]
                head_i = head[i]
                for s in range(slots):
                    q = buf_i[s]
                    for k in range(head_i[s], len(q)):
                        packet = q[k][2]
                        prev = seen.get(packet.pid)
                        if prev is None:
                            seen[packet.pid] = [packet, True]
                        else:
                            prev[1] = True
            for events in arrivals.values():
                for _i, _s, entry in events:
                    packet = entry[2]
                    prev = seen.get(packet.pid)
                    if prev is None:
                        seen[packet.pid] = [packet, True]
                    else:
                        prev[1] = True

            region = reconfigured_topology(planned, faults, cycle)
            degraded_now = region is not planned
            # CDOR is the only routing that is sound on an arbitrary
            # convex region (and equals XY on the full mesh), so
            # reconfigured regions always route CDOR -- including when a
            # recovery restores the planned region
            (
                nodes, count, index_of, route, neighbor, buf, head, vc_out,
                vc_elig, out_owner, credits, va_ptr, sa_in_ptr, sa_out_ptr,
                occ, va_pending, buffered, wake, ni_queue, ni_qhead,
                ni_state, ni_ptr,
            ) = _region_state(region, cfg, "cdor")
            for node in nodes:
                activity.router(node)
            writes = [0] * count
            reads = [0] * count
            links_used = [0] * count
            va_grants = [0] * count
            if gating_on:
                gated = [False] * count
                wake_at_l = [None] * count
                last_active = [0] * count
                powered = [0] * count
                view = _FlatNetworkView(
                    nodes, index_of, gated, wake_at_l, last_active, buffered,
                    ni_state, ni_queue, ni_qhead,
                )
            arrivals = {}
            credit_events = {}
            in_flight = 0

            for pid in sorted(seen):
                packet, entered = seen[pid]
                si = index_of.get(packet.source)
                di = index_of.get(packet.destination)
                if si is not None and di is not None:
                    packet.hops = 0
                    ni_queue[si].append(packet)
                    in_flight += packet.length
                    counters["retransmitted" if entered else "rerouted"] += 1
                else:
                    counters["dropped"] += 1
                    if packet.measured:
                        counters["lost_measured"] += 1
            ni_active = {i: None for i in range(count) if ni_queue[i]}
            counters["reconfigurations"] += 1
            min_level = min(min_level, region.level)
            if tracer is not None:
                reconf_span.annotate(level=region.level)
                reconf_span.end()

        if tracer is not None:
            if phase == 0 and cycle >= warmup:
                phase = 1
                phase_span.annotate(end_cycle=warmup)
                phase_span.end()
                phase_span = tracer.span(
                    "phase:measure", parent=sim_span.id, start_cycle=warmup
                )
            if phase == 1 and cycle >= measure_end:
                phase = 2
                phase_span.annotate(end_cycle=measure_end)
                phase_span.end()
                phase_span = tracer.span(
                    "phase:drain", parent=sim_span.id, start_cycle=measure_end
                )

        win = warmup <= cycle < measure_end

        # new packets enter their source NI queues (a degraded region
        # drops packets whose endpoint router fell dark before they are
        # ever created, exactly like the reference NI)
        packets = schedule.take(cycle)
        if packets:
            for packet in packets:
                if degraded_now and (
                    packet.source not in index_of
                    or packet.destination not in index_of
                ):
                    counters["dropped"] += 1
                    continue
                i = index_of[packet.source]
                ni_queue[i].append(packet)
                ni_active[i] = None
                in_flight += packet.length
                if packet.measured:
                    created_measured += 1
                if tel is not None:
                    inj_flits[packet.source] = (
                        inj_flits.get(packet.source, 0) + packet.length
                    )

        if interval and cycle % interval == 0:
            # emitted at the reference's sample point: after this cycle's
            # packet creations and before the step that moves any flit,
            # so occupancies are the state the previous cycle left behind
            _emit_flat_sample(
                tel, sim_span.id, cycle, nodes, buffered, in_flight,
                inj_flits, ej_flits,
                gated if gating_on else None, gated_cycles, interval,
            )

        if gating_on:
            # the policy observes the pre-step state (reference order:
            # policy.step then network.step), then wakeups due this cycle
            # complete before any allocation pass, and powered-cycle
            # accounting matches the reference's per-cycle accrual
            view.cycle = cycle
            gating_policy.step(view)
            for i in range(count):
                if gated[i]:
                    wa = wake_at_l[i]
                    if wa is not None and cycle >= wa:
                        gated[i] = False
                        wake_at_l[i] = None
                        last_active[i] = cycle
                        wake[i] = cycle
                        if win:
                            powered[i] += 1
                elif win:
                    powered[i] += 1

        # credits scheduled for this cycle
        events = credit_events.pop(cycle, None)
        if events:
            for i, s in events:
                credits[i][s] += 1
                wake[i] = cycle

        # link arrivals scheduled for this cycle (delivered into gated
        # routers too, which then request a demand wake)
        events = arrivals.pop(cycle, None)
        if events:
            for i, s, entry in events:
                buf[i][s].append(entry)
                buffered[i] += 1
                occ[i] |= 1 << s
                if vc_out[i][s] < 0:
                    va_pending[i] |= 1 << s
                wake[i] = cycle
                if gating_on:
                    last_active[i] = cycle
                    if gated[i] and wake_at_l[i] is None:
                        wake_at_l[i] = cycle + _WAKEUP_LATENCY
                if win:
                    writes[i] += 1

        # NI injection: one flit per node per cycle into a claimed LOCAL VC
        if ni_active:
            done = None
            for i in ni_active:
                if gating_on and gated[i]:
                    # NI pressure on a gated router requests a demand wake
                    if wake_at_l[i] is None:
                        wake_at_l[i] = cycle + _WAKEUP_LATENCY
                    continue
                state = ni_state[i]
                buf_i = buf[i]
                if state is None:
                    queue = ni_queue[i]
                    qhead = ni_qhead[i]
                    start = ni_ptr[i]
                    chosen = -1
                    vco = vc_out[i]
                    hd = head[i]
                    for k in range(vcs):
                        v = start + k
                        if v >= vcs:
                            v -= vcs
                        if len(buf_i[v]) == hd[v] and vco[v] < 0:
                            chosen = v
                            break
                    if chosen < 0:
                        continue
                    ni_ptr[i] = chosen + 1 if chosen + 1 < vcs else 0
                    state = [queue[qhead], 0, chosen]
                    ni_state[i] = state
                    if qhead + 1 >= len(queue):
                        queue.clear()
                        ni_qhead[i] = 0
                    else:
                        ni_qhead[i] = qhead + 1
                packet, flit_index, v = state
                if len(buf_i[v]) - head[i][v] >= depth:
                    continue
                buf_i[v].append((cycle, flit_index, packet))
                buffered[i] += 1
                occ[i] |= 1 << v
                if vc_out[i][v] < 0:
                    va_pending[i] |= 1 << v
                wake[i] = cycle
                if win:
                    writes[i] += 1
                state[1] += 1
                if state[1] >= packet.length:
                    ni_state[i] = None
                    if not ni_queue[i]:
                        if done is None:
                            done = [i]
                        else:
                            done.append(i)
            if done is not None:
                for i in done:
                    del ni_active[i]

        # per-router VC allocation then switch allocation (the reference
        # runs VA for every router before any SA, but VA only reads and
        # writes router-local state and SA's cross-router effects are all
        # scheduled >= one cycle ahead, so fusing the passes is exact)
        for i in range(count):
            if not buffered[i] or wake[i] > cycle or (gating_on and gated[i]):
                continue
            acted = False
            min_wait = _NEVER
            mask = occ[i]
            buf_i = buf[i]
            head_i = head[i]
            vco_i = vc_out[i]
            owner_i = out_owner[i]
            credits_i = credits[i]
            neighbor_i = neighbor[i]

            # --- VA: heads of unallocated, occupied VCs request out-VCs
            requests = None
            m = va_pending[i]
            if m:
                route_i = route[i]
                while m:
                    bit = m & -m
                    m ^= bit
                    s = bit.bit_length() - 1
                    entry = buf_i[s][head_i[s]]
                    ready = entry[0] + 2  # BW at t, RC at t+1, VA at t+2
                    if cycle < ready:
                        if ready < min_wait:
                            min_wait = ready
                        continue
                    out_p = route_i[entry[2].destination]
                    if type(out_p) is tuple:
                        # adaptive route: credit-based selection among the
                        # candidates, replicating Network._select_adaptive
                        # (free out-VC first, then most credits; ties to
                        # the first candidate)
                        best = out_p[0]
                        best_free = -1
                        best_creds = -1
                        for cand in out_p:
                            base_c = cand * vcs
                            free = 0
                            creds = 0
                            for v in range(vcs):
                                sc = base_c + v
                                if owner_i[sc] < 0:
                                    free = 1
                                creds += credits_i[sc]
                            if free > best_free or (
                                free == best_free and creds > best_creds
                            ):
                                best_free = free
                                best_creds = creds
                                best = cand
                        out_p = best
                    if requests is None:
                        requests = {out_p: [s]}
                    elif out_p in requests:
                        requests[out_p].append(s)
                    else:
                        requests[out_p] = [s]
            if requests is not None:
                elig_i = vc_elig[i]
                va_ptr_i = va_ptr[i]
                for out_p, requesters in requests.items():
                    base = out_p * vcs
                    free = [
                        base + v for v in range(vcs) if owner_i[base + v] < 0
                    ]
                    if not free:
                        continue
                    if len(requesters) > 1:
                        ptr = va_ptr_i[out_p]
                        requesters.sort(key=lambda s: (s - ptr) % slots)
                    for s, os_ in zip(requesters, free):
                        vco_i[s] = os_
                        elig_i[s] = cycle + 1
                        owner_i[os_] = s
                        va_ptr_i[out_p] = (s + 1) % slots
                        va_pending[i] &= ~(1 << s)
                        acted = True
                        if win:
                            va_grants[i] += 1

            # --- SA stage 1: each input port nominates one ready VC
            nominations = None
            elig_i = vc_elig[i]
            sa_in_i = sa_in_ptr[i]
            for in_p in range(PORT_COUNT):
                port_mask = (mask >> (in_p * vcs)) & vmask
                if not port_mask:
                    continue
                base = in_p * vcs
                start = sa_in_i[in_p]
                for k in range(vcs):
                    v = start + k
                    if v >= vcs:
                        v -= vcs
                    if not (port_mask >> v) & 1:
                        continue
                    s = base + v
                    os_ = vco_i[s]
                    if os_ < 0:
                        continue
                    entry = buf_i[s][head_i[s]]
                    if entry[1] == 0:  # head flit waits out VA + one cycle
                        ready = elig_i[s]
                        if cycle < ready:
                            if ready < min_wait:
                                min_wait = ready
                            continue
                    elif cycle < entry[0] + 1:  # body waits out buffer write
                        if entry[0] + 1 < min_wait:
                            min_wait = entry[0] + 1
                        continue
                    if credits_i[os_] <= 0:
                        continue
                    if gating_on and os_ >= vcs:
                        down = neighbor_i[os_ // vcs]
                        if gated[down]:
                            # blocked on a gated next hop: demand-wake it
                            # and try the input port's next VC, exactly
                            # like the reference nomination pass
                            if wake_at_l[down] is None:
                                wake_at_l[down] = cycle + _WAKEUP_LATENCY
                            wa = wake_at_l[down]
                            if wa < min_wait:
                                min_wait = wa
                            continue
                    if nominations is None:
                        nominations = [(in_p, v, s, os_, entry)]
                    else:
                        nominations.append((in_p, v, s, os_, entry))
                    break
            if nominations is None:
                wake[i] = cycle + 1 if acted else min_wait
                continue

            # --- SA stage 2 + traversal: one grant per output port
            if len(nominations) == 1:
                winners = nominations
            else:
                by_out = {}
                for nom in nominations:
                    out_p = nom[3] // vcs
                    if out_p in by_out:
                        by_out[out_p].append(nom)
                    else:
                        by_out[out_p] = [nom]
                winners = []
                sa_out_i = sa_out_ptr[i]
                for out_p, cands in by_out.items():
                    if len(cands) > 1:
                        ptr = sa_out_i[out_p]
                        cands.sort(key=lambda c: (c[0] - ptr) % PORT_COUNT)
                    winners.append(cands[0])
            sa_out_i = sa_out_ptr[i]
            for in_p, v, s, os_, entry in winners:
                hd = head_i[s] + 1
                queue = buf_i[s]
                if hd >= len(queue):
                    queue.clear()
                    head_i[s] = 0
                    occ[i] &= ~(1 << s)
                else:
                    head_i[s] = hd
                buffered[i] -= 1
                credits_i[os_] -= 1
                if win:
                    reads[i] += 1
                arrival, flit_index, packet = entry
                is_tail = flit_index == packet.length - 1
                if in_p:  # return a credit to the upstream feeder
                    up = neighbor_i[in_p]
                    slot_up = REVERSE_PORT[in_p] * vcs + v
                    bucket = credit_events.get(cycle + 1)
                    if bucket is None:
                        credit_events[cycle + 1] = [(up, slot_up)]
                    else:
                        bucket.append((up, slot_up))
                if is_tail:
                    owner_i[os_] = -1
                    vco_i[s] = -1
                    if occ[i] & (1 << s):  # next packet's head now at front
                        va_pending[i] |= 1 << s
                if os_ < vcs:  # LOCAL output: ejection
                    in_flight -= 1
                    if is_tail:
                        packet.ejected_at = cycle + 2
                        if packet.measured:
                            measured_ejected += 1
                            measured_flits += packet.length
                            lat = cycle + 2 - packet.created_at
                            latency.add(lat)
                            latencies.append(lat)
                            hops_stats.add(packet.hops)
                        if tel is not None:
                            ej_flits[packet.destination] = (
                                ej_flits.get(packet.destination, 0)
                                + packet.length
                            )
                else:
                    if win:
                        links_used[i] += 1
                    if flit_index == 0:
                        packet.hops += 1
                    out_p = os_ // vcs
                    down = neighbor_i[out_p]
                    slot_down = REVERSE_PORT[out_p] * vcs + (os_ - out_p * vcs)
                    target = cycle + 2
                    bucket = arrivals.get(target)
                    item = (down, slot_down, (target, flit_index, packet))
                    if bucket is None:
                        arrivals[target] = [item]
                    else:
                        bucket.append(item)
                sa_in_i[in_p] = v + 1 if v + 1 < vcs else 0
                sa_out_i[os_ // vcs] = (in_p + 1) % PORT_COUNT
            if gating_on:
                last_active[i] = cycle
            wake[i] = cycle + 1

        cycle += 1
        if cycle > measure_end and (
            measured_ejected >= created_measured - counters["lost_measured"]
        ):
            cycles_run = cycle
            break

    saturated = (
        measured_ejected < created_measured - counters["lost_measured"]
    )
    endpoints = len(traffic.endpoints)

    # fold the final region segment's counters and powered cycles
    _fold_activity(activity, nodes, writes, reads, links_used, va_grants)
    if gating_on:
        for i in range(count):
            if powered[i]:
                activity.router(nodes[i]).cycles_powered += powered[i]
    else:
        # every counted cycle powers every (never-gated) router of the
        # segment's region, so the accrual is the window overlap
        span = measure_end - max(seg_start, warmup)
        if span > 0:
            for node in nodes:
                activity.router(node).cycles_powered += span

    if tel is not None:
        _record_sim_metrics(
            tel, cycles_run, created_measured,
            {"measured": measured_ejected, "measured_flits": measured_flits},
            counters, saturated, inj_flits, ej_flits, gated_cycles,
        )
        if tracer is not None:
            phase_span.annotate(end_cycle=cycles_run)
            phase_span.end()
            sim_span.annotate(
                cycles=cycles_run,
                packets=created_measured,
                saturated=saturated,
                reconfigurations=counters["reconfigurations"],
            )
            sim_span.end()

    return SimulationResult(
        avg_latency=latency.mean if latency.count else 0.0,
        avg_hops=hops_stats.mean if hops_stats.count else 0.0,
        max_latency=int(latency.maximum) if latency.count else 0,
        p50_latency=percentile(latencies, 50) if latencies else 0.0,
        p95_latency=percentile(latencies, 95) if latencies else 0.0,
        p99_latency=percentile(latencies, 99) if latencies else 0.0,
        packets_measured=created_measured,
        packets_ejected=measured_ejected,
        offered_flits_per_cycle=traffic.injection_rate,
        accepted_flits_per_cycle=(
            measured_flits / (measure_cycles * endpoints)
            if measure_cycles and endpoints
            else 0.0
        ),
        saturated=saturated,
        cycles_run=cycles_run,
        measure_cycles=measure_cycles,
        activity=activity,
        endpoint_count=endpoints,
        packets_dropped=counters["dropped"],
        packets_retransmitted=counters["retransmitted"],
        packets_rerouted=counters["rerouted"],
        reconfigurations=counters["reconfigurations"],
        min_region_level=min_level,
    )


__all__ = ["VectorizedBackend"]
