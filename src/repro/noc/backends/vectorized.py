"""The vectorized fast-path backend.

Simulates exactly the same five-stage wormhole VC pipeline as the
reference backend (:mod:`repro.noc.backends.reference`) but trades the
object-per-router / object-per-flit model for flat per-mesh state arrays
and batched work:

- **flat state arrays** -- every router's buffers, credit counts, VC
  allocations and round-robin pointers live in flat lists indexed by
  ``slot = port * vcs + vc``, with one bit per slot in a per-router
  occupancy mask, so allocation and switch arbitration scan only the
  slots that actually hold flits instead of all ``ports x vcs`` of them;
- **batched injection draws** -- the spec's Bernoulli traffic process is
  pre-generated in chunks into a NumPy-backed schedule (per-cycle packet
  counts as an array, per-cycle packet lists alongside), which also
  yields the next-arrival lookup that lets the kernel skip runs of
  whole-mesh idle cycles in O(1);
- **analytic accounting** -- counters the reference increments every
  cycle (``cycles_powered``) are computed in closed form from the
  measurement window.

The arbitration order, credit timing and round-robin pointer updates
replicate the reference kernel decision for decision, so for any
fault-free, non-sampled spec the two backends produce *bit-identical*
:class:`~repro.noc.result.SimulationResult` values from the same RNG
stream (enforced by the cross-backend equivalence suite in
``tests/test_backends.py`` and the CI smoke in
``benchmarks/bench_extension_backend.py``).

Capabilities: tracing spans, end-of-run metrics and periodic telemetry
sampling are supported -- sampled runs emit the same per-router sample
events as the reference backend (buffer occupancies are captured from
the flat state arrays at the same pipeline instant, and whole-mesh idle
stretches the kernel fast-forwards over are back-filled with the idle
samples the reference would have taken).  Fault schedules, dynamic
gating policies and adaptive routing are declined with a
:class:`~repro.noc.backends.base.BackendCapabilityError`.
"""

from __future__ import annotations

import numpy as np

from repro.noc.activity import NetworkActivity
from repro.noc.backends.base import CAP_SAMPLING, CAP_TRACING, check_capabilities
from repro.noc.backends.reference import _record_sim_metrics
from repro.noc.result import SimulationResult
from repro.noc.routing import (
    PORT_COUNT,
    PORT_TO_DIRECTION,
    REVERSE_PORT,
)
from repro.noc.spec import SimulationSpec
from repro.noc.traffic import TrafficGenerator
from repro.telemetry import active as _active_telemetry
from repro.util.stats import RunningStats, percentile

_CHUNK = 1024  # cycles of traffic pre-generated per batch


class _PacketSchedule:
    """Chunked pre-generation of the traffic process.

    The network state never feeds back into the open-loop Bernoulli
    source, so the packet sequence is a pure function of the spec: we can
    draw it ahead of the simulation in batches from the *same* generator
    (hence the same RNG stream, pids and destinations as the reference
    driver).  Per-cycle packet counts are kept in a NumPy array so the
    kernel can find the next non-empty cycle with one ``argmax``.
    """

    def __init__(self, traffic: TrafficGenerator, warmup: int, measure_end: int):
        self._traffic = traffic
        self._warmup = warmup
        self._measure_end = measure_end
        self._cycles: list[list] = []
        self._counts = np.zeros(0, dtype=np.int64)
        self._upto = 0  # cycles generated so far

    def _extend(self) -> None:
        base = self._upto
        chunk = np.zeros(_CHUNK, dtype=np.int64)
        cycles = self._cycles
        traffic = self._traffic
        warmup, measure_end = self._warmup, self._measure_end
        for offset in range(_CHUNK):
            cycle = base + offset
            packets = traffic.packets_for_cycle(
                cycle, measured=warmup <= cycle < measure_end
            )
            cycles.append(packets)
            if packets:
                chunk[offset] = len(packets)
        self._counts = np.concatenate((self._counts, chunk))
        self._upto += _CHUNK

    def take(self, cycle: int) -> list:
        """Packets created at ``cycle`` (the driver consumes every cycle)."""
        while cycle >= self._upto:
            self._extend()
        return self._cycles[cycle]

    def next_busy(self, cycle: int, limit: int) -> int | None:
        """First cycle >= ``cycle`` with packets, or None if none < ``limit``."""
        while True:
            window = self._counts[cycle:self._upto]
            if window.size:
                nonzero = np.flatnonzero(window)
                if nonzero.size:
                    busy = cycle + int(nonzero[0])
                    return busy if busy < limit else None
            if self._upto >= limit:
                return None
            self._extend()
            cycle = max(cycle, self._upto - _CHUNK)


class VectorizedBackend:
    """Flat-array exact replica of the reference pipeline."""

    name = "vectorized"
    capabilities = frozenset({CAP_TRACING, CAP_SAMPLING})

    def run(
        self, spec: SimulationSpec, *, gating_policy=None, telemetry=None
    ) -> SimulationResult:
        check_capabilities(self, spec, gating_policy, telemetry)
        # the compiled kernel produces the same bits, faster; telemetry
        # runs ride it too -- the kernel batches per-interval activity
        # captures and the driver replays them as spans/samples/metrics
        from repro.noc.backends import native

        if native.available():
            result = native.execute(spec, telemetry=telemetry)
            if result is not None:
                return result
        return _execute_vectorized(spec, telemetry)


def _emit_flat_sample(
    tel, span_id, cycle, nodes, occ_list, in_flight, inj_flits, ej_flits
) -> None:
    """One periodic sample from flat-array state, byte-compatible with the
    reference backend's :func:`_emit_router_sample` payload.

    ``occ_list`` is the per-router buffered-flit counts at the sample
    instant (``None`` for whole-mesh idle instants the kernel skipped);
    ``gated`` is always 0 -- specs with a gating policy never reach the
    fast path.
    """
    routers = {}
    buffered_total = 0
    for i, node in enumerate(nodes):
        occupancy = occ_list[i] if occ_list is not None else 0
        buffered_total += occupancy
        routers[str(node)] = {
            "inj": inj_flits.get(node, 0),
            "ej": ej_flits.get(node, 0),
            "occ": occupancy,
            "gated": 0,
        }
    tel.metrics.histogram(
        "noc_buffer_occupancy_flits",
        help="total buffered flits at sample instants",
        buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
    ).observe(buffered_total)
    tel.tracer.sample(
        {
            "cycle": cycle,
            "in_flight": in_flight,
            "buffered": buffered_total,
            "routers": routers,
        },
        parent=span_id,
    )


def _emit_idle_samples(
    tel, span_id, start, stop, interval, nodes, inj_flits, ej_flits
) -> None:
    """Back-fill the samples the reference loop would have taken over the
    whole-mesh idle cycles ``[start, stop)`` the kernel fast-forwarded."""
    first = -(-start // interval) * interval  # first multiple >= start
    for c in range(first, stop, interval):
        _emit_flat_sample(tel, span_id, c, nodes, None, 0, inj_flits, ej_flits)


def _execute_vectorized(spec: SimulationSpec, telemetry=None) -> SimulationResult:
    from repro.noc.routing import build_routing_table

    topology = spec.topology
    cfg = spec.config
    vcs = cfg.vcs_per_port
    depth = cfg.buffers_per_vc
    slots = PORT_COUNT * vcs
    vmask = (1 << vcs) - 1

    nodes = list(topology.active_nodes)
    count = len(nodes)
    index_of = {node: i for i, node in enumerate(nodes)}

    table = build_routing_table(topology, spec.routing)
    # route[i] maps a destination *node id* to the output port at router i
    mesh_size = topology.width * topology.height
    route: list[list[int]] = [[0] * mesh_size for _ in range(count)]
    for (current, dest), port in table.items():
        route[index_of[current]][dest] = port

    # neighbor[i][port] -> router index on that side (-1 when unconnected)
    neighbor = [[-1] * PORT_COUNT for _ in range(count)]
    for i, node in enumerate(nodes):
        for port in range(1, PORT_COUNT):
            other = topology.neighbor(node, PORT_TO_DIRECTION[port])
            if other is not None and other in index_of:
                neighbor[i][port] = index_of[other]

    # --- flat per-router state, indexed by slot = port * vcs + vc -------
    buf = [[[] for _ in range(slots)] for _ in range(count)]
    head = [[0] * slots for _ in range(count)]  # consumed prefix of buf[i][s]
    vc_out = [[-1] * slots for _ in range(count)]
    vc_elig = [[0] * slots for _ in range(count)]
    out_owner = [[-1] * slots for _ in range(count)]
    credits = [[0] * slots for _ in range(count)]
    for i in range(count):
        row = credits[i]
        for v in range(vcs):
            row[v] = 1 << 30  # ejection is never back-pressured
        for port in range(1, PORT_COUNT):
            if neighbor[i][port] >= 0:
                base = port * vcs
                for v in range(vcs):
                    row[base + v] = depth
    va_ptr = [[0] * PORT_COUNT for _ in range(count)]
    sa_in_ptr = [[0] * PORT_COUNT for _ in range(count)]
    sa_out_ptr = [[0] * PORT_COUNT for _ in range(count)]
    occ = [0] * count  # bit s set <=> buf[i][s] is non-empty
    va_pending = [0] * count  # bit s set <=> buf[i][s] non-empty, no out-VC
    buffered = [0] * count
    # wake[i]: earliest cycle router i's allocation pass could possibly do
    # anything.  A pass that grants or traverses nothing leaves the router
    # state frozen until an external event (arrival, credit, NI write --
    # which all reset wake) or a pipeline-timing threshold collected during
    # the failed pass, so skipping the pass until then is exact.
    _NEVER = 1 << 60
    wake = [0] * count

    # activity counters (measure window only); cycles_powered is analytic
    writes = [0] * count
    reads = [0] * count  # == crossbar traversals == switch arbitrations
    links_used = [0] * count
    va_grants = [0] * count

    # network interfaces
    ni_queue: list[list] = [[] for _ in range(count)]
    ni_qhead = [0] * count
    ni_state: list[list | None] = [None] * count
    ni_ptr = [0] * count
    ni_active: dict[int, None] = {}

    # event buckets keyed by delivery cycle
    arrivals: dict[int, list] = {}
    credit_events: dict[int, list] = {}

    warmup = spec.warmup_cycles
    measure_cycles = spec.measure_cycles
    measure_end = warmup + measure_cycles
    deadline = measure_end + spec.drain_cycles

    traffic = spec.traffic.build()
    schedule = _PacketSchedule(traffic, warmup, measure_end)

    tel = _active_telemetry(telemetry)
    tracer = tel.tracer if tel is not None else None
    interval = tel.sample_interval if tel is not None else 0
    inj_flits: dict[int, int] = {}
    ej_flits: dict[int, int] = {}
    if tracer is not None:
        sim_span = tracer.span(
            "simulate",
            level=topology.level,
            routing=spec.routing,
            rate=round(traffic.injection_rate, 6),
        )
        phase_span = tracer.span("phase:warmup", parent=sim_span.id)
        phase = 0  # 0 warmup, 1 measure, 2 drain

    latency = RunningStats()
    hops_stats = RunningStats()
    latencies: list[int] = []
    measured_ejected = 0
    measured_flits = 0
    created_measured = 0
    in_flight = 0

    cycle = 0
    cycles_run = 0
    while True:
        if cycle >= deadline:
            cycles_run = deadline
            break

        # whole-mesh idle fast-forward: with nothing buffered, queued or
        # in the air, state can only change at the next scheduled packet
        if not in_flight and not arrivals and not credit_events:
            nxt = schedule.next_busy(cycle, measure_end)
            if nxt is None:
                # no further packet before the measurement window closes:
                # the reference loop idles to measure_end and exits there
                cycles_run = measure_end + 1 if deadline > measure_end else deadline
                if tracer is not None:
                    # walk the remaining phase boundaries the reference
                    # would have crossed while idling
                    if phase == 0:
                        phase = 1
                        phase_span.annotate(end_cycle=warmup)
                        phase_span.end()
                        phase_span = tracer.span(
                            "phase:measure", parent=sim_span.id, start_cycle=warmup
                        )
                    if phase == 1 and deadline > measure_end:
                        phase = 2
                        phase_span.annotate(end_cycle=measure_end)
                        phase_span.end()
                        phase_span = tracer.span(
                            "phase:drain", parent=sim_span.id,
                            start_cycle=measure_end,
                        )
                if interval:
                    _emit_idle_samples(
                        tel, sim_span.id, cycle, measure_end, interval,
                        nodes, inj_flits, ej_flits,
                    )
                if tel is not None and deadline > measure_end:
                    # the reference loop still visits measure_end before
                    # its drained exit and creates that cycle's
                    # (unmeasured) packets; mirror its injection
                    # accounting so samples and final counters agree
                    tail_flits = 0
                    for packet in schedule.take(measure_end):
                        inj_flits[packet.source] = (
                            inj_flits.get(packet.source, 0) + packet.length
                        )
                        tail_flits += packet.length
                    if interval and measure_end % interval == 0:
                        _emit_flat_sample(
                            tel, sim_span.id, measure_end, nodes, None,
                            tail_flits, inj_flits, ej_flits,
                        )
                break
            if interval:
                _emit_idle_samples(
                    tel, sim_span.id, cycle, nxt, interval,
                    nodes, inj_flits, ej_flits,
                )
            cycle = nxt

        if tracer is not None:
            if phase == 0 and cycle >= warmup:
                phase = 1
                phase_span.annotate(end_cycle=warmup)
                phase_span.end()
                phase_span = tracer.span(
                    "phase:measure", parent=sim_span.id, start_cycle=warmup
                )
            if phase == 1 and cycle >= measure_end:
                phase = 2
                phase_span.annotate(end_cycle=measure_end)
                phase_span.end()
                phase_span = tracer.span(
                    "phase:drain", parent=sim_span.id, start_cycle=measure_end
                )

        take_sample = interval and cycle % interval == 0
        if take_sample:
            # the reference samples buffer state as left by the previous
            # cycle's step: capture occupancies before this cycle's link
            # arrivals are delivered
            sample_occ = buffered[:]

        win = warmup <= cycle < measure_end

        # credits scheduled for this cycle
        events = credit_events.pop(cycle, None)
        if events:
            for i, s in events:
                credits[i][s] += 1
                wake[i] = cycle

        # link arrivals scheduled for this cycle
        events = arrivals.pop(cycle, None)
        if events:
            for i, s, entry in events:
                buf[i][s].append(entry)
                buffered[i] += 1
                occ[i] |= 1 << s
                if vc_out[i][s] < 0:
                    va_pending[i] |= 1 << s
                wake[i] = cycle
                if win:
                    writes[i] += 1

        # new packets enter their source NI queues
        packets = schedule.take(cycle)
        if packets:
            for packet in packets:
                i = index_of[packet.source]
                ni_queue[i].append(packet)
                ni_active[i] = None
                in_flight += packet.length
                if packet.measured:
                    created_measured += 1
                if tel is not None:
                    inj_flits[packet.source] = (
                        inj_flits.get(packet.source, 0) + packet.length
                    )

        if take_sample:
            # emitted at the reference's sample point: after this cycle's
            # packet creations, before the step that moves any flit
            _emit_flat_sample(
                tel, sim_span.id, cycle, nodes, sample_occ,
                in_flight, inj_flits, ej_flits,
            )

        # NI injection: one flit per node per cycle into a claimed LOCAL VC
        if ni_active:
            done = None
            for i in ni_active:
                state = ni_state[i]
                buf_i = buf[i]
                if state is None:
                    queue = ni_queue[i]
                    qhead = ni_qhead[i]
                    start = ni_ptr[i]
                    chosen = -1
                    vco = vc_out[i]
                    hd = head[i]
                    for k in range(vcs):
                        v = start + k
                        if v >= vcs:
                            v -= vcs
                        if len(buf_i[v]) == hd[v] and vco[v] < 0:
                            chosen = v
                            break
                    if chosen < 0:
                        continue
                    ni_ptr[i] = chosen + 1 if chosen + 1 < vcs else 0
                    state = [queue[qhead], 0, chosen]
                    ni_state[i] = state
                    if qhead + 1 >= len(queue):
                        queue.clear()
                        ni_qhead[i] = 0
                    else:
                        ni_qhead[i] = qhead + 1
                packet, flit_index, v = state
                if len(buf_i[v]) - head[i][v] >= depth:
                    continue
                buf_i[v].append((cycle, flit_index, packet))
                buffered[i] += 1
                occ[i] |= 1 << v
                if vc_out[i][v] < 0:
                    va_pending[i] |= 1 << v
                wake[i] = cycle
                if win:
                    writes[i] += 1
                state[1] += 1
                if state[1] >= packet.length:
                    ni_state[i] = None
                    if not ni_queue[i]:
                        if done is None:
                            done = [i]
                        else:
                            done.append(i)
            if done is not None:
                for i in done:
                    del ni_active[i]

        # per-router VC allocation then switch allocation (the reference
        # runs VA for every router before any SA, but VA only reads and
        # writes router-local state and SA's cross-router effects are all
        # scheduled >= one cycle ahead, so fusing the passes is exact)
        for i in range(count):
            if not buffered[i] or wake[i] > cycle:
                continue
            acted = False
            min_wait = _NEVER
            mask = occ[i]
            buf_i = buf[i]
            head_i = head[i]
            vco_i = vc_out[i]
            owner_i = out_owner[i]

            # --- VA: heads of unallocated, occupied VCs request out-VCs
            requests = None
            m = va_pending[i]
            if m:
                route_i = route[i]
                while m:
                    bit = m & -m
                    m ^= bit
                    s = bit.bit_length() - 1
                    entry = buf_i[s][head_i[s]]
                    ready = entry[0] + 2  # BW at t, RC at t+1, VA at t+2
                    if cycle < ready:
                        if ready < min_wait:
                            min_wait = ready
                        continue
                    out_p = route_i[entry[2].destination]
                    if requests is None:
                        requests = {out_p: [s]}
                    elif out_p in requests:
                        requests[out_p].append(s)
                    else:
                        requests[out_p] = [s]
            if requests is not None:
                elig_i = vc_elig[i]
                va_ptr_i = va_ptr[i]
                for out_p, requesters in requests.items():
                    base = out_p * vcs
                    free = [
                        base + v for v in range(vcs) if owner_i[base + v] < 0
                    ]
                    if not free:
                        continue
                    if len(requesters) > 1:
                        ptr = va_ptr_i[out_p]
                        requesters.sort(key=lambda s: (s - ptr) % slots)
                    for s, os_ in zip(requesters, free):
                        vco_i[s] = os_
                        elig_i[s] = cycle + 1
                        owner_i[os_] = s
                        va_ptr_i[out_p] = (s + 1) % slots
                        va_pending[i] &= ~(1 << s)
                        acted = True
                        if win:
                            va_grants[i] += 1

            # --- SA stage 1: each input port nominates one ready VC
            nominations = None
            credits_i = credits[i]
            elig_i = vc_elig[i]
            sa_in_i = sa_in_ptr[i]
            for in_p in range(PORT_COUNT):
                port_mask = (mask >> (in_p * vcs)) & vmask
                if not port_mask:
                    continue
                base = in_p * vcs
                start = sa_in_i[in_p]
                for k in range(vcs):
                    v = start + k
                    if v >= vcs:
                        v -= vcs
                    if not (port_mask >> v) & 1:
                        continue
                    s = base + v
                    os_ = vco_i[s]
                    if os_ < 0:
                        continue
                    entry = buf_i[s][head_i[s]]
                    if entry[1] == 0:  # head flit waits out VA + one cycle
                        ready = elig_i[s]
                        if cycle < ready:
                            if ready < min_wait:
                                min_wait = ready
                            continue
                    elif cycle < entry[0] + 1:  # body waits out buffer write
                        if entry[0] + 1 < min_wait:
                            min_wait = entry[0] + 1
                        continue
                    if credits_i[os_] <= 0:
                        continue
                    if nominations is None:
                        nominations = [(in_p, v, s, os_, entry)]
                    else:
                        nominations.append((in_p, v, s, os_, entry))
                    break
            if nominations is None:
                wake[i] = cycle + 1 if acted else min_wait
                continue

            # --- SA stage 2 + traversal: one grant per output port
            if len(nominations) == 1:
                winners = nominations
            else:
                by_out = {}
                for nom in nominations:
                    out_p = nom[3] // vcs
                    if out_p in by_out:
                        by_out[out_p].append(nom)
                    else:
                        by_out[out_p] = [nom]
                winners = []
                sa_out_i = sa_out_ptr[i]
                for out_p, cands in by_out.items():
                    if len(cands) > 1:
                        ptr = sa_out_i[out_p]
                        cands.sort(key=lambda c: (c[0] - ptr) % PORT_COUNT)
                    winners.append(cands[0])
            sa_out_i = sa_out_ptr[i]
            neighbor_i = neighbor[i]
            for in_p, v, s, os_, entry in winners:
                hd = head_i[s] + 1
                queue = buf_i[s]
                if hd >= len(queue):
                    queue.clear()
                    head_i[s] = 0
                    occ[i] &= ~(1 << s)
                else:
                    head_i[s] = hd
                buffered[i] -= 1
                credits_i[os_] -= 1
                if win:
                    reads[i] += 1
                arrival, flit_index, packet = entry
                is_tail = flit_index == packet.length - 1
                if in_p:  # return a credit to the upstream feeder
                    up = neighbor_i[in_p]
                    slot_up = REVERSE_PORT[in_p] * vcs + v
                    bucket = credit_events.get(cycle + 1)
                    if bucket is None:
                        credit_events[cycle + 1] = [(up, slot_up)]
                    else:
                        bucket.append((up, slot_up))
                if is_tail:
                    owner_i[os_] = -1
                    vco_i[s] = -1
                    if occ[i] & (1 << s):  # next packet's head now at front
                        va_pending[i] |= 1 << s
                if os_ < vcs:  # LOCAL output: ejection
                    in_flight -= 1
                    if is_tail:
                        packet.ejected_at = cycle + 2
                        if packet.measured:
                            measured_ejected += 1
                            measured_flits += packet.length
                            lat = cycle + 2 - packet.created_at
                            latency.add(lat)
                            latencies.append(lat)
                            hops_stats.add(packet.hops)
                        if tel is not None:
                            ej_flits[packet.destination] = (
                                ej_flits.get(packet.destination, 0)
                                + packet.length
                            )
                else:
                    if win:
                        links_used[i] += 1
                    if flit_index == 0:
                        packet.hops += 1
                    out_p = os_ // vcs
                    down = neighbor_i[out_p]
                    slot_down = REVERSE_PORT[out_p] * vcs + (os_ - out_p * vcs)
                    target = cycle + 2
                    bucket = arrivals.get(target)
                    item = (down, slot_down, (target, flit_index, packet))
                    if bucket is None:
                        arrivals[target] = [item]
                    else:
                        bucket.append(item)
                sa_in_i[in_p] = v + 1 if v + 1 < vcs else 0
                sa_out_i[os_ // vcs] = (in_p + 1) % PORT_COUNT
            wake[i] = cycle + 1

        cycle += 1
        if cycle > measure_end and measured_ejected >= created_measured:
            cycles_run = cycle
            break

    saturated = measured_ejected < created_measured
    endpoints = len(traffic.endpoints)

    activity = NetworkActivity()
    # every counted cycle powers every (never-gated) router, so the
    # per-router powered-cycle count is exactly the measurement window
    for i, node in enumerate(nodes):
        router_activity = activity.router(node)
        router_activity.buffer_writes = writes[i]
        router_activity.buffer_reads = reads[i]
        router_activity.crossbar_traversals = reads[i]
        router_activity.switch_arbitrations = reads[i]
        router_activity.link_traversals = links_used[i]
        router_activity.vc_allocations = va_grants[i]
        router_activity.cycles_powered = measure_cycles

    if tel is not None:
        _record_sim_metrics(
            tel, cycles_run, created_measured,
            {"measured": measured_ejected, "measured_flits": measured_flits},
            {"dropped": 0, "retransmitted": 0, "reconfigurations": 0},
            saturated, inj_flits, ej_flits, {},
        )
        if tracer is not None:
            phase_span.annotate(end_cycle=cycles_run)
            phase_span.end()
            sim_span.annotate(
                cycles=cycles_run,
                packets=created_measured,
                saturated=saturated,
                reconfigurations=0,
            )
            sim_span.end()

    return SimulationResult(
        avg_latency=latency.mean if latency.count else 0.0,
        avg_hops=hops_stats.mean if hops_stats.count else 0.0,
        max_latency=int(latency.maximum) if latency.count else 0,
        p50_latency=percentile(latencies, 50) if latencies else 0.0,
        p95_latency=percentile(latencies, 95) if latencies else 0.0,
        p99_latency=percentile(latencies, 99) if latencies else 0.0,
        packets_measured=created_measured,
        packets_ejected=measured_ejected,
        offered_flits_per_cycle=traffic.injection_rate,
        accepted_flits_per_cycle=(
            measured_flits / (measure_cycles * endpoints)
            if measure_cycles and endpoints
            else 0.0
        ),
        saturated=saturated,
        cycles_run=cycles_run,
        measure_cycles=measure_cycles,
        activity=activity,
        endpoint_count=endpoints,
    )


__all__ = ["VectorizedBackend"]
