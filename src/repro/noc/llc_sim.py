"""Request/reply LLC simulation over the cycle network (Section 3.4).

Drives the wormhole simulator with an LLC access stream: each access is a
short request packet (1 flit) to the home bank and a cache-line reply
(5 flits, one 64 B line at 16 B flits) back to the requester, after a
fixed bank service latency.  Three configurations reproduce the paper's
LLC discussion:

- **gated + bypass** -- the sprint region is powered, CDOR routes, and
  accesses to dark banks detour to the bank's bypass proxy (an active
  router) paying the bypass latency instead of a router wakeup;
- **full network** -- the tiled LLC keeps every router powered so dark
  banks stay directly reachable (what gating would cost without bypass);
- **centralized / private** -- all network-visible accesses target the
  master tile, so gating is trivially safe (no dark-bank traffic).

Round-trip latency is measured from request issue to reply ejection.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.cmp.llc import LlcAccessStream, LlcRequest
from repro.config import NoCConfig
from repro.core.bypass import BypassPlan
from repro.core.topological import SprintTopology
from repro.noc.activity import NetworkActivity
from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.noc.routing import build_routing_table
from repro.util.stats import RunningStats, percentile

REQUEST_FLITS = 1
BANK_SERVICE_CYCLES = 6
LOCAL_ACCESS_CYCLES = 8  # local bank: pipeline + service, no network


@dataclass
class LlcSimulationResult:
    """Outcome of an LLC request/reply simulation."""

    avg_round_trip: float
    p95_round_trip: float
    max_round_trip: int
    requests_measured: int
    requests_completed: int
    requests_issued_total: int
    local_accesses: int
    dark_bank_accesses: int
    bypass_flits: int
    saturated: bool
    cycles_run: int
    measure_cycles: int
    activity: NetworkActivity = field(repr=False, default_factory=NetworkActivity)

    @property
    def dark_access_fraction(self) -> float:
        """Fraction of all issued accesses whose home bank was dark."""
        total = self.requests_issued_total
        return self.dark_bank_accesses / total if total else 0.0


def run_llc_simulation(
    topology: SprintTopology,
    access_stream: LlcAccessStream,
    config: NoCConfig | None = None,
    routing: str = "cdor",
    bypass: BypassPlan | None = None,
    warmup_cycles: int = 400,
    measure_cycles: int = 1500,
    drain_cycles: int = 30000,
) -> LlcSimulationResult:
    """Simulate an LLC access stream; see the module docstring.

    ``bypass`` must be given when the topology gates nodes that the stream
    can address (TILED interleaving on a sprint region); without it, a
    dark-bank access raises, which is exactly the failure the paper's
    Section 3.4 warns about.
    """
    cfg = config or NoCConfig()
    table = build_routing_table(topology, routing)
    network = Network(topology, table, cfg)

    round_trip = RunningStats()
    round_trips: list[int] = []
    counters = {
        "measured_issued": 0,
        "measured_done": 0,
        "issued_total": 0,
        "completed": 0,
        "local": 0,
        "dark": 0,
        "bypass_flits": 0,
    }
    # pid -> (issue_cycle, measured, requester) for requests in flight
    outstanding: dict[int, tuple[int, bool, int]] = {}
    reply_queue: dict[int, list[tuple[int, int, bool]]] = defaultdict(list)
    next_pid = [0]

    def issue(request: LlcRequest, cycle: int, measured: bool) -> None:
        counters["issued_total"] += 1
        bank_node = request.bank
        extra = 0
        if not topology.is_active(bank_node):
            if bypass is None:
                raise RuntimeError(
                    f"access to dark bank {bank_node} with no bypass plan; "
                    "tile-interleaved LLCs need bypass paths (Section 3.4)"
                )
            counters["dark"] += 1
            counters["bypass_flits"] += REQUEST_FLITS + cfg.packet_length_flits
            extra = bypass.latency_cycles
            bank_node = bypass.proxy_for(bank_node)
        if bank_node == request.requester:
            # local bank (or the proxy is the requester): no network hops
            finish = cycle + LOCAL_ACCESS_CYCLES + extra
            reply_queue[finish].append((-1, request.requester, measured))
            counters["local"] += 1
            if measured:
                counters["measured_issued"] += 1
            return
        pid = next_pid[0]
        next_pid[0] += 1
        outstanding[pid] = (cycle, measured, request.requester)
        if measured:
            counters["measured_issued"] += 1
        network.inject(
            Packet(pid=pid, source=request.requester, destination=bank_node,
                   length=REQUEST_FLITS, created_at=cycle)
        )
        if extra:
            # remember the bypass penalty: charged at the bank side
            _bypass_extra[pid] = extra

    _bypass_extra: dict[int, int] = {}

    def on_eject(packet: Packet) -> None:
        if packet.pid in outstanding:
            # a request reached its bank: schedule the reply
            issue_cycle, measured, requester = outstanding.pop(packet.pid)
            extra = _bypass_extra.pop(packet.pid, 0)
            ready = packet.ejected_at + BANK_SERVICE_CYCLES + extra
            reply_queue[ready].append(
                (_reply_pid(packet.pid, issue_cycle, measured, requester,
                            packet.destination), 0, False)
            )
        else:
            # a reply came home: complete the round trip
            issue_cycle, measured = _reply_meta.pop(packet.pid)
            _finish(packet.ejected_at - issue_cycle, measured)

    _reply_meta: dict[int, tuple[int, bool]] = {}

    def _reply_pid(request_pid, issue_cycle, measured, requester, bank) -> int:
        pid = next_pid[0]
        next_pid[0] += 1
        _reply_meta[pid] = (issue_cycle, measured)
        _pending_replies[pid] = (bank, requester)
        return pid

    _pending_replies: dict[int, tuple[int, int]] = {}

    def _finish(latency: int, measured: bool) -> None:
        counters["completed"] += 1
        if measured:
            counters["measured_done"] += 1
            round_trip.add(latency)
            round_trips.append(latency)

    network.on_packet_ejected = on_eject

    measure_end = warmup_cycles + measure_cycles
    deadline = measure_end + drain_cycles
    while True:
        cycle = network.cycle
        if cycle >= deadline:
            break
        in_window = warmup_cycles <= cycle < measure_end
        for request in access_stream.requests_for_cycle(cycle):
            issue(request, cycle, in_window)
        for pid, destination, measured_local in reply_queue.pop(cycle, ()):
            if pid == -1:
                # local access completing
                _finish(LOCAL_ACCESS_CYCLES, measured_local)
                continue
            bank, requester = _pending_replies.pop(pid)
            network.inject(
                Packet(pid=pid, source=bank, destination=requester,
                       length=cfg.packet_length_flits, created_at=cycle)
            )
        if cycle == warmup_cycles:
            network.counting = True
        if cycle == measure_end:
            network.counting = False
        network.step()
        if (
            cycle >= measure_end
            and counters["measured_done"] >= counters["measured_issued"]
            and not reply_queue
        ):
            break

    saturated = counters["measured_done"] < counters["measured_issued"]
    return LlcSimulationResult(
        avg_round_trip=round_trip.mean if round_trip.count else 0.0,
        p95_round_trip=percentile(round_trips, 95) if round_trips else 0.0,
        max_round_trip=int(round_trip.maximum) if round_trip.count else 0,
        requests_measured=counters["measured_issued"],
        requests_completed=counters["measured_done"],
        requests_issued_total=counters["issued_total"],
        local_accesses=counters["local"],
        dark_bank_accesses=counters["dark"],
        bypass_flits=counters["bypass_flits"],
        saturated=saturated,
        cycles_run=network.cycle,
        measure_cycles=measure_cycles,
        activity=network.activity,
    )
