"""Synthetic traffic generation.

Traffic is defined over a list of *endpoints* -- the nodes whose cores are
active and inject/accept packets.  For NoC-sprinting the endpoints are the
convex sprint region; for the full-sprinting comparison of Figure 11 they
are a random subset of the fully-powered mesh.

``injection_rate`` is in flits/cycle/endpoint (the unit the paper uses);
each endpoint runs an independent Bernoulli process generating
``rate / packet_length`` packets per cycle.

Patterns:

- ``uniform``        uniform-random over the other endpoints (paper Fig. 11)
- ``neighbor``       endpoint i -> endpoint (i+1) mod k
- ``bit_complement`` endpoint i -> endpoint (k-1-i)
- ``tornado``        endpoint i -> endpoint (i + ceil(k/2) - 1) mod k
- ``transpose``      grid transpose over the endpoint list (k must be square)
- ``shuffle``        perfect shuffle: rotate the endpoint index left by one
                     bit (k must be a power of two)
- ``hotspot``        a fraction of packets target a hotspot endpoint
                     (defaults to the first endpoint, i.e. the master node),
                     the rest are uniform

The permutation patterns are defined over the endpoint *index space* so
they stay meaningful on irregular sprint regions; on the full mesh with
endpoints 0..N-1 they reduce to the textbook mesh patterns.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.noc.flit import Packet
from repro.util.rng import stream


class TrafficGenerator:
    """Bernoulli packet source over a set of endpoints."""

    def __init__(
        self,
        endpoints: Sequence[int],
        injection_rate: float,
        packet_length: int,
        pattern: str = "uniform",
        seed: int = 0,
        hotspot_fraction: float = 0.5,
        hotspot_endpoint: int | None = None,
    ):
        if not endpoints:
            raise ValueError("traffic needs at least one endpoint")
        if injection_rate < 0:
            raise ValueError("injection rate must be non-negative")
        if packet_length < 1:
            raise ValueError("packet length must be positive")
        if not 0 <= hotspot_fraction <= 1:
            raise ValueError("hotspot fraction must be in [0, 1]")
        self.endpoints = list(endpoints)
        self.injection_rate = injection_rate
        self.packet_length = packet_length
        self.pattern = pattern
        self.hotspot_fraction = hotspot_fraction
        self.hotspot_endpoint = (
            hotspot_endpoint if hotspot_endpoint is not None else self.endpoints[0]
        )
        if self.hotspot_endpoint not in self.endpoints:
            raise ValueError("hotspot endpoint must be one of the endpoints")
        self._index = {node: i for i, node in enumerate(self.endpoints)}
        self._rng = stream(seed, f"traffic-{pattern}")
        self._next_pid = 0
        self._packet_probability = injection_rate / packet_length
        self._validate_pattern()

    def _validate_pattern(self) -> None:
        k = len(self.endpoints)
        known = {
            "uniform", "neighbor", "bit_complement", "tornado", "transpose",
            "shuffle", "hotspot",
        }
        if self.pattern not in known:
            raise ValueError(f"unknown traffic pattern {self.pattern!r}")
        if self.pattern == "transpose":
            side = math.isqrt(k)
            if side * side != k:
                raise ValueError("transpose traffic needs a square endpoint count")
        if self.pattern == "shuffle" and (k < 2 or k & (k - 1)):
            raise ValueError("shuffle traffic needs a power-of-two endpoint count")
        if self.pattern != "uniform" and k < 2:
            raise ValueError(f"{self.pattern} traffic needs at least 2 endpoints")

    def _destination(self, source: int) -> int | None:
        """Destination endpoint for a packet from ``source`` (None = skip)."""
        k = len(self.endpoints)
        i = self._index[source]
        if self.pattern == "uniform":
            if k < 2:
                return None
            j = self._rng.randrange(k - 1)
            if j >= i:
                j += 1
            return self.endpoints[j]
        if self.pattern == "neighbor":
            return self.endpoints[(i + 1) % k]
        if self.pattern == "bit_complement":
            j = k - 1 - i
            return None if j == i else self.endpoints[j]
        if self.pattern == "tornado":
            j = (i + (k + 1) // 2 - 1) % k
            return None if j == i else self.endpoints[j]
        if self.pattern == "transpose":
            side = math.isqrt(k)
            row, col = divmod(i, side)
            j = col * side + row
            return None if j == i else self.endpoints[j]
        if self.pattern == "shuffle":
            bits = k.bit_length() - 1
            j = ((i << 1) | (i >> (bits - 1))) & (k - 1)
            return None if j == i else self.endpoints[j]
        if self.pattern == "hotspot":
            if self._rng.random() < self.hotspot_fraction:
                j = self._index[self.hotspot_endpoint]
                if j != i:
                    return self.hotspot_endpoint
            if k < 2:
                return None
            j = self._rng.randrange(k - 1)
            if j >= i:
                j += 1
            return self.endpoints[j]
        raise AssertionError("unreachable")

    def packets_for_cycle(self, cycle: int, measured: bool) -> list[Packet]:
        """Packets created at this cycle (possibly empty)."""
        packets = []
        for source in self.endpoints:
            if self._rng.random() >= self._packet_probability:
                continue
            destination = self._destination(source)
            if destination is None:
                continue
            packets.append(
                Packet(
                    pid=self._next_pid,
                    source=source,
                    destination=destination,
                    length=self.packet_length,
                    created_at=cycle,
                    measured=measured,
                )
            )
            self._next_pid += 1
        return packets
