"""Route-computation tables for the cycle simulator.

The simulator works with integer port ids for speed; this module holds the
Direction<->port mapping and builds per-topology routing tables for the two
routing algorithms the paper evaluates:

- ``"xy"``   -- conventional dimension-order routing on the full mesh
- ``"cdor"`` -- Algorithm 2 on the convex active region
"""

from __future__ import annotations

from repro.core.cdor import CdorRouter
from repro.core.topological import SprintTopology
from repro.util.directions import Direction

PORT_LOCAL = 0
PORT_NORTH = 1
PORT_EAST = 2
PORT_SOUTH = 3
PORT_WEST = 4
PORT_COUNT = 5

DIRECTION_TO_PORT = {
    Direction.LOCAL: PORT_LOCAL,
    Direction.NORTH: PORT_NORTH,
    Direction.EAST: PORT_EAST,
    Direction.SOUTH: PORT_SOUTH,
    Direction.WEST: PORT_WEST,
}

PORT_TO_DIRECTION = {v: k for k, v in DIRECTION_TO_PORT.items()}

# port id of the input port a flit lands on after leaving through `port`
REVERSE_PORT = {
    PORT_NORTH: PORT_SOUTH,
    PORT_SOUTH: PORT_NORTH,
    PORT_EAST: PORT_WEST,
    PORT_WEST: PORT_EAST,
}


def build_table(
    topology: SprintTopology, algorithm: str = "cdor"
) -> dict[tuple[int, int], int] | dict[tuple[int, int], tuple[int, ...]]:
    """The routing table for *any* supported algorithm, one source of truth.

    Deterministic algorithms (``"cdor"``, ``"xy"``) yield integer output
    ports; adaptive turn models (``"west_first"``, ``"negative_first"``)
    yield candidate-port tuples that the engines resolve at VC-allocation
    time with credit-based selection.  Every backend builds its tables
    through this dispatcher so the engines can never disagree on a route.
    """
    if algorithm in ("cdor", "xy"):
        return build_routing_table(topology, algorithm)
    from repro.noc.adaptive import build_adaptive_table

    return build_adaptive_table(topology, algorithm)


def build_routing_table(
    topology: SprintTopology, algorithm: str = "cdor"
) -> dict[tuple[int, int], int]:
    """Precompute the output port for every (current, destination) pair.

    Only active-node pairs are included; the simulator never routes at a
    dark router.
    """
    table: dict[tuple[int, int], int] = {}
    if algorithm == "cdor":
        router = CdorRouter(topology)
        for current in topology.active_nodes:
            for dest in topology.active_nodes:
                table[(current, dest)] = DIRECTION_TO_PORT[
                    router.next_port(current, dest)
                ]
    elif algorithm == "xy":
        from repro.core.cdor import dor_output_port

        for current in topology.active_nodes:
            for dest in topology.active_nodes:
                table[(current, dest)] = DIRECTION_TO_PORT[
                    dor_output_port(topology.coord(current), topology.coord(dest))
                ]
    else:
        raise ValueError(f"unknown routing algorithm {algorithm!r}")
    return table
