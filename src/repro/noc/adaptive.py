"""Partially-adaptive turn-model routing (west-first, negative-first).

The paper's CDOR is deterministic; classic NoC simulators also ship the
Glass & Ni turn-model routers, which give the sprint network an adaptive
baseline for the routing ablation.  Both algorithms below are deadlock-free
on the full mesh by turn elimination:

- **west-first**: all westward hops are taken first (deterministically);
  once no west progress remains, the packet routes fully adaptively among
  its productive {east, north, south} directions.  The NW/SW turns are
  never taken, which breaks both abstract cycles.
- **negative-first**: all negative-direction hops (west and north, with
  our top-left origin) come first, adaptively between themselves; then the
  positive directions (east, south) adaptively.  No positive-to-negative
  turn exists.

The simulator resolves multi-candidate routes at VC allocation time with
credit-based selection (the output with the most downstream buffer space
wins), the standard congestion-aware policy.
"""

from __future__ import annotations

from repro.core.topological import SprintTopology
from repro.noc.routing import DIRECTION_TO_PORT
from repro.util.directions import Direction
from repro.util.geometry import Coord


def west_first_candidates(current: Coord, destination: Coord) -> tuple[Direction, ...]:
    """Productive output ports under the west-first turn model."""
    dx = destination.x - current.x
    dy = destination.y - current.y
    if dx == 0 and dy == 0:
        return (Direction.LOCAL,)
    if dx < 0:
        # all west hops first; no adaptivity while westbound
        return (Direction.WEST,)
    candidates = []
    if dx > 0:
        candidates.append(Direction.EAST)
    if dy > 0:
        candidates.append(Direction.SOUTH)
    elif dy < 0:
        candidates.append(Direction.NORTH)
    return tuple(candidates)


def negative_first_candidates(current: Coord, destination: Coord) -> tuple[Direction, ...]:
    """Productive output ports under the negative-first turn model.

    Negative directions are WEST (x decreasing) and NORTH (y decreasing,
    origin top-left).
    """
    dx = destination.x - current.x
    dy = destination.y - current.y
    if dx == 0 and dy == 0:
        return (Direction.LOCAL,)
    negative = []
    if dx < 0:
        negative.append(Direction.WEST)
    if dy < 0:
        negative.append(Direction.NORTH)
    if negative:
        return tuple(negative)
    positive = []
    if dx > 0:
        positive.append(Direction.EAST)
    if dy > 0:
        positive.append(Direction.SOUTH)
    return tuple(positive)


_CANDIDATE_FUNCTIONS = {
    "west_first": west_first_candidates,
    "negative_first": negative_first_candidates,
}

ADAPTIVE_ALGORITHMS = tuple(_CANDIDATE_FUNCTIONS)


def build_adaptive_table(
    topology: SprintTopology, algorithm: str
) -> dict[tuple[int, int], tuple[int, ...]]:
    """Candidate-port table for an adaptive algorithm on the full mesh.

    Turn models assume the full mesh (their turn sets do not account for
    dark routers), so irregular sprint regions are rejected -- CDOR is the
    scheme for those.
    """
    try:
        candidates_for = _CANDIDATE_FUNCTIONS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown adaptive algorithm {algorithm!r}; "
            f"options: {ADAPTIVE_ALGORITHMS}"
        ) from None
    if topology.level != topology.width * topology.height:
        raise ValueError(
            "adaptive turn models require the full mesh; "
            "use CDOR on irregular sprint regions"
        )
    table: dict[tuple[int, int], tuple[int, ...]] = {}
    for current in topology.active_nodes:
        for dest in topology.active_nodes:
            candidates = candidates_for(topology.coord(current), topology.coord(dest))
            table[(current, dest)] = tuple(
                DIRECTION_TO_PORT[d] for d in candidates
            )
    return table


def candidate_dependency_edges(
    topology: SprintTopology, algorithm: str
) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """All channel dependencies any adaptive choice could create.

    The conservative CDG for an adaptive routing function includes an edge
    for *every* candidate continuation; turn-model deadlock freedom means
    even this superset is acyclic (verified in tests).
    """
    candidates_for = _CANDIDATE_FUNCTIONS[algorithm]
    edges = []
    for src in topology.active_nodes:
        for dst in topology.active_nodes:
            if src == dst:
                continue
            # walk the candidate DAG: every reachable (node, in-channel)
            frontier = [(src, None)]
            seen = set()
            while frontier:
                node, in_channel = frontier.pop()
                if (node, in_channel) in seen or node == dst:
                    continue
                seen.add((node, in_channel))
                for direction in candidates_for(
                    topology.coord(node), topology.coord(dst)
                ):
                    if direction is Direction.LOCAL:
                        continue
                    nxt = topology.neighbor(node, direction)
                    if nxt is None:
                        continue
                    out_channel = (node, nxt)
                    if in_channel is not None:
                        edges.append((in_channel, out_channel))
                    frontier.append((nxt, out_channel))
    return edges
