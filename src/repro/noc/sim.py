"""Simulation facade: spec in, result out, backend-pluggable.

:func:`simulate` (and its keyword-friendly wrapper :func:`run_simulation`)
is the single entry point every caller -- the sweep engine, the CMP model,
the CLI, the benchmarks -- goes through to run a network simulation.  The
actual engine is looked up in the backend registry
(:mod:`repro.noc.backends`) by name: ``"reference"`` is the cycle-accurate
object-model simulator and the default; ``"vectorized"`` is the flat-array
fast path.  The spec's declared capability needs (faults, gating,
adaptive routing, telemetry sampling) are checked against the chosen
backend before the run starts, so a fast path declines what it cannot
simulate instead of silently mis-simulating it.

The warmup / measure / drain methodology itself lives with the backends
(see :mod:`repro.noc.backends.reference`); :class:`SimulationResult` is
re-exported here for compatibility -- including for results pickled by
older versions into the on-disk result cache.
"""

from __future__ import annotations

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.noc.backends import check_capabilities, get_backend
from repro.noc.result import SimulationResult
from repro.noc.spec import SimulationSpec, stable_key
from repro.noc.traffic import TrafficGenerator

__all__ = [
    "SimulationResult",
    "run_simulation",
    "simulate",
    "zero_load_cache",
    "zero_load_latency",
]


def simulate(
    spec: SimulationSpec, gating_policy=None, telemetry=None, backend: str | None = None
) -> SimulationResult:
    """Run the simulation a :class:`~repro.noc.spec.SimulationSpec` describes.

    The traffic generator is rebuilt from the spec's declarative traffic
    description, so the result is a pure function of the spec: the same
    spec yields bit-identical results in any process, which is what lets
    the sweep engine (:mod:`repro.exec`) parallelize and cache runs.

    ``backend`` overrides the spec's ``backend`` field for this call (the
    spec field is what the result cache keys on; the override is for
    callers that own their caching, like the equivalence tests).  The
    chosen engine's declared capabilities are checked against what the
    run needs -- a :class:`~repro.noc.backends.BackendCapabilityError`
    explains any mismatch.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`, optional) records
    phase spans, periodic per-router samples and run counters; it never
    influences the simulation itself, so results stay bit-identical with
    telemetry on, off, or absent.

    ``backend="auto"`` (in the spec or the override) picks the fastest
    registered backend whose capabilities cover this run, via
    :func:`repro.noc.backends.resolve_backend`.
    """
    name = backend if backend is not None else spec.backend
    if name == "auto":
        from repro.noc.backends import resolve_backend

        engine = resolve_backend(
            spec, gating_policy=gating_policy, telemetry=telemetry
        )
    else:
        engine = get_backend(name)
        check_capabilities(engine, spec, gating_policy, telemetry)
    return engine.run(spec, gating_policy=gating_policy, telemetry=telemetry)


def run_simulation(
    topology: SprintTopology | SimulationSpec,
    traffic: TrafficGenerator | None = None,
    config: NoCConfig | None = None,
    routing: str = "cdor",
    warmup_cycles: int = 500,
    measure_cycles: int = 2000,
    drain_cycles: int = 30000,
    gating_policy=None,
    faults=None,
    telemetry=None,
    backend: str | None = None,
) -> SimulationResult:
    """Simulate a topology under a traffic load and collect statistics.

    Preferred form: ``run_simulation(spec)`` with a single
    :class:`~repro.noc.spec.SimulationSpec` (see :func:`simulate`), where
    ``backend=`` selects the simulation engine by registry name.  The
    keyword form below is retained as a thin back-compat wrapper and may be
    deprecated in a future release; it takes a live
    :class:`~repro.noc.traffic.TrafficGenerator`, whose consumed RNG state
    makes the run ineligible for result caching (and, for the same reason,
    restricts the keyword form to the ``"reference"`` backend: the other
    engines consume the traffic process on their own schedule).

    ``routing`` is ``"cdor"``, ``"xy"``, or one of the adaptive turn models
    (``"west_first"``, ``"negative_first"``; full mesh only).
    ``gating_policy``, if given, is a
    :class:`repro.noc.power_gating.GatingPolicy` driven once per cycle (used
    by the run-time power-gating ablation; the main NoC-sprinting experiments
    power-gate statically by never instantiating dark routers).
    """
    if isinstance(topology, SimulationSpec):
        return simulate(topology, gating_policy=gating_policy,
                        telemetry=telemetry, backend=backend)
    if traffic is None:
        raise TypeError("run_simulation needs a TrafficGenerator (or a SimulationSpec)")
    if backend is not None and backend != "reference":
        raise ValueError(
            "a live TrafficGenerator pins run_simulation to the 'reference' "
            "backend; pass a SimulationSpec to select another engine"
        )
    from repro.noc.backends.reference import _execute

    return _execute(
        topology,
        traffic,
        config or NoCConfig(),
        routing,
        warmup_cycles,
        measure_cycles,
        drain_cycles,
        gating_policy,
        faults=faults,
        telemetry=telemetry,
    )


_zero_load_cache = None


def zero_load_cache():
    """The process-wide memo behind :func:`zero_load_latency` (lazy)."""
    global _zero_load_cache
    if _zero_load_cache is None:
        from repro.exec.cache import ResultCache

        _zero_load_cache = ResultCache()
    return _zero_load_cache


def zero_load_latency(
    topology: SprintTopology,
    config: NoCConfig | None = None,
    routing: str = "cdor",
    backend: str = "reference",
) -> float:
    """Analytic zero-load packet latency averaged over all endpoint pairs.

    Head latency is ``pipeline_stages`` cycles per hop plus the final
    ejection, and the tail trails the head by ``packet_length - 1`` cycles.
    Used by the CMP performance model as its communication-cost proxy when
    no cycle simulation is attached.

    The O(n^2) pair walk is memoized per (backend, topology, config,
    routing) in a process-wide :class:`~repro.exec.cache.ResultCache`:
    callers in hot loops (the performance model evaluates this per workload
    per scheme) pay for each distinct topology once.  The backend is part
    of the memo key (with the default keeping its historical key) so a
    backend with its own zero-load model can never serve, or be served,
    another backend's entries.
    """
    cfg = config or NoCConfig()
    cache = zero_load_cache()
    if backend == "reference":
        # historical key shape: entries memoized before backends existed
        # stay valid for the default engine
        key = stable_key(("zero_load_latency", topology, cfg, routing))
    else:
        key = stable_key(("zero_load_latency", backend, topology, cfg, routing))
    cached = cache.get(key)
    if cached is not None:
        return cached
    value = _zero_load_latency(topology, cfg, routing)
    cache.put(key, value)
    return value


def _zero_load_latency(
    topology: SprintTopology, cfg: NoCConfig, routing: str
) -> float:
    from repro.core.cdor import CdorRouter
    nodes = topology.active_nodes
    if len(nodes) < 2:
        # local delivery: injection + ejection pipeline only
        return cfg.router_pipeline_stages + cfg.packet_length_flits - 1
    router = CdorRouter(topology)
    total = 0.0
    pairs = 0
    for src in nodes:
        for dst in nodes:
            if src == dst:
                continue
            hop_count = router.hop_count(src, dst)
            head = cfg.router_pipeline_stages * (hop_count + 1)
            total += head + cfg.packet_length_flits - 1
            pairs += 1
    return total / pairs
