"""Traffic trace recording and replay.

Synthetic traffic answers "what if" questions; traces answer "what
happened" ones.  This module records any traffic source's packet stream to
a JSON-lines file and replays it deterministically -- the standard way to
(a) pin a regression to an exact packet sequence, (b) share a workload
between tools, and (c) compare routing/gating schemes on *identical*
traffic rather than identically-distributed traffic.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.noc.flit import Packet


class TraceRecorder:
    """Wraps a traffic generator and logs every packet it produces."""

    def __init__(self, source):
        self._source = source
        self.records: list[dict] = []

    @property
    def endpoints(self) -> list[int]:
        return self._source.endpoints

    @property
    def injection_rate(self) -> float:
        return self._source.injection_rate

    def packets_for_cycle(self, cycle: int, measured: bool) -> list[Packet]:
        packets = self._source.packets_for_cycle(cycle, measured)
        for packet in packets:
            self.records.append(
                {
                    "cycle": cycle,
                    "src": packet.source,
                    "dst": packet.destination,
                    "len": packet.length,
                }
            )
        return packets

    def save(self, path: str | Path) -> int:
        """Write the trace as JSON lines; returns the packet count."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(record) + "\n")
        return len(self.records)


class TraceTraffic:
    """Replays a recorded trace as a traffic source.

    Duck-types :class:`repro.noc.traffic.TrafficGenerator`: the simulator
    only needs ``endpoints``, ``injection_rate`` and ``packets_for_cycle``.
    """

    def __init__(self, records: Iterable[dict] | Sequence[dict]):
        self._by_cycle: dict[int, list[dict]] = {}
        endpoints: set[int] = set()
        total_flits = 0
        last_cycle = 0
        count = 0
        for record in records:
            self._validate(record)
            self._by_cycle.setdefault(record["cycle"], []).append(record)
            endpoints.add(record["src"])
            endpoints.add(record["dst"])
            total_flits += record["len"]
            last_cycle = max(last_cycle, record["cycle"])
            count += 1
        if count == 0:
            raise ValueError("empty trace")
        self.endpoints = sorted(endpoints)
        self.packet_count = count
        self.last_cycle = last_cycle
        # average offered load over the trace span, flits/cycle/endpoint
        span = last_cycle + 1
        self.injection_rate = total_flits / (span * len(self.endpoints))
        self._next_pid = 0

    @staticmethod
    def _validate(record: dict) -> None:
        for key in ("cycle", "src", "dst", "len"):
            if key not in record:
                raise ValueError(f"trace record missing {key!r}: {record}")
        if record["cycle"] < 0 or record["len"] < 1:
            raise ValueError(f"malformed trace record: {record}")

    @classmethod
    def load(cls, path: str | Path) -> "TraceTraffic":
        """Load a JSON-lines trace file."""
        records = []
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return cls(records)

    def packets_for_cycle(self, cycle: int, measured: bool) -> list[Packet]:
        packets = []
        for record in self._by_cycle.get(cycle, ()):
            packets.append(
                Packet(
                    pid=self._next_pid,
                    source=record["src"],
                    destination=record["dst"],
                    length=record["len"],
                    created_at=cycle,
                    measured=measured,
                )
            )
            self._next_pid += 1
        return packets
