"""Run-time router power gating.

NoC-sprinting gates the network *statically*: the sprint topology decides
which routers exist, CDOR never routes into the dark region, and the gated
routers stay off for the whole sprint -- no wakeups, no break-even risk.

This module models the *conventional* alternative the paper argues against
(timeout-based per-router gating that ignores core status, cf. [4,5,14,18])
so the ablation bench can quantify the difference:

- :class:`TimeoutGatingPolicy` gates any router idle longer than a timeout
  and wakes it (paying ``wakeup_latency`` cycles) when a flit needs it.
- :func:`break_even_cycles` computes the minimum profitable idle period
  from the power model's leakage and wakeup energies.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def break_even_cycles(
    leakage_power_w: float,
    wakeup_energy_j: float,
    frequency_hz: float,
) -> float:
    """Idle cycles a router must stay gated to amortize one wakeup.

    Gating saves ``leakage_power / frequency`` joules per cycle and a
    gate-off/wake-on pair costs ``wakeup_energy``; the break-even idle
    period is their ratio.
    """
    if leakage_power_w <= 0:
        raise ValueError("leakage power must be positive")
    saved_per_cycle = leakage_power_w / frequency_hz
    return wakeup_energy_j / saved_per_cycle


@dataclass
class GatingStats:
    """Bookkeeping for a gating policy run."""

    gate_events: int = 0
    wake_events: int = 0
    gated_router_cycles: int = 0


@dataclass
class TimeoutGatingPolicy:
    """Gate a router after ``idle_timeout`` cycles without traffic.

    The policy never gates routers that hold flits.  Wakeups are demand
    driven: the simulator calls ``request_wake`` when a flit's next hop is
    gated, and the router comes back ``wakeup_latency`` cycles later (the
    flit waits upstream meanwhile -- the latency penalty the paper's
    static scheme avoids).
    """

    idle_timeout: int = 64
    protected_nodes: frozenset[int] = field(default_factory=frozenset)

    def step(self, network) -> None:
        cycle = network.cycle
        for node, router in network.routers.items():
            if node in self.protected_nodes:
                continue
            if router.gated:
                self.stats.gated_router_cycles += 1
                if router.wake_at is not None and router.wake_at == cycle:
                    self.stats.wake_events += 1
                continue
            if (
                router.buffered_flits == 0
                and not network.ni_busy(node)
                and cycle - router.last_active_cycle >= self.idle_timeout
            ):
                if router.gate():
                    self.stats.gate_events += 1

    def __post_init__(self) -> None:
        self.stats = GatingStats()


@dataclass(frozen=True)
class StaticGatingPlan:
    """The NoC-sprinting gating decision for one sprint level.

    Purely declarative: which routers are powered, which are gated, and the
    fraction of network leakage eliminated.  The cycle simulator realises
    the plan by instantiating only the powered routers.
    """

    powered: tuple[int, ...]
    gated: tuple[int, ...]

    @property
    def leakage_fraction_saved(self) -> float:
        total = len(self.powered) + len(self.gated)
        return len(self.gated) / total if total else 0.0


def static_plan_for_topology(topology) -> StaticGatingPlan:
    """Derive the static gating plan from a sprint topology."""
    from repro.core.topological import dark_nodes

    return StaticGatingPlan(
        powered=tuple(topology.active_nodes),
        gated=tuple(dark_nodes(topology)),
    )
