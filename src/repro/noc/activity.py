"""Per-router activity counters.

The cycle simulator increments these as events happen; the power models in
:mod:`repro.power` convert them into dynamic energy.  Keeping the counters
in a plain dataclass decouples the simulator from any power model.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RouterActivity:
    """Event counts for one router over a simulation run."""

    buffer_writes: int = 0
    buffer_reads: int = 0
    crossbar_traversals: int = 0
    link_traversals: int = 0  # flits sent over non-local output links
    vc_allocations: int = 0
    switch_arbitrations: int = 0  # granted switch requests
    cycles_powered: int = 0

    def merge(self, other: "RouterActivity") -> None:
        self.buffer_writes += other.buffer_writes
        self.buffer_reads += other.buffer_reads
        self.crossbar_traversals += other.crossbar_traversals
        self.link_traversals += other.link_traversals
        self.vc_allocations += other.vc_allocations
        self.switch_arbitrations += other.switch_arbitrations
        self.cycles_powered += other.cycles_powered


@dataclass
class NetworkActivity:
    """Activity of the whole network: per-router counters plus run length."""

    routers: dict[int, RouterActivity] = field(default_factory=dict)
    cycles: int = 0

    def router(self, node: int) -> RouterActivity:
        if node not in self.routers:
            self.routers[node] = RouterActivity()
        return self.routers[node]

    @property
    def total(self) -> RouterActivity:
        agg = RouterActivity()
        for activity in self.routers.values():
            agg.merge(activity)
        return agg
