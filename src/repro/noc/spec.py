"""Declarative simulation specs: one picklable value per network run.

A :class:`SimulationSpec` fully describes a cycle simulation -- topology,
traffic process, interconnect configuration, routing algorithm and the
warmup/measure/drain windows -- as a frozen, hashable, picklable value
object.  It replaces the keyword soup previously threaded through
``run_simulation``, the benchmark harness and ``NoCSprintingSystem``, and
is the unit the sweep engine (:mod:`repro.exec`) fans out over worker
processes and keys its result cache on.

Because a spec carries its own traffic *seed* rather than a live
:class:`~repro.noc.traffic.TrafficGenerator`, rebuilding the generator in
any process reproduces the exact packet sequence: serial and parallel
sweeps over the same specs are bit-identical.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.noc.traffic import TrafficGenerator


def _canonical(obj):
    """A JSON-serializable canonical form of nested dataclasses/values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        payload = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        payload["__class__"] = type(obj).__name__
        return payload
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, frozenset):
        return sorted(_canonical(item) for item in obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for a cache key")


def stable_key(obj) -> str:
    """Content-addressed key: SHA-256 of the canonical JSON form.

    Stable across processes and Python versions (no reliance on ``hash``),
    so on-disk cache entries written by one interpreter are valid in any
    other.
    """
    blob = json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class TrafficSpec:
    """Declarative description of a synthetic traffic process.

    Mirrors the :class:`~repro.noc.traffic.TrafficGenerator` constructor;
    :meth:`build` instantiates a fresh generator whose packet sequence is
    fully determined by these fields (the generator keeps the mutable RNG
    state, the spec stays a value).
    """

    endpoints: tuple[int, ...]
    injection_rate: float
    packet_length: int
    pattern: str = "uniform"
    seed: int = 0
    hotspot_fraction: float = 0.5
    hotspot_endpoint: int | None = None

    def build(self) -> TrafficGenerator:
        """A fresh generator reproducing this spec's packet sequence."""
        return TrafficGenerator(
            list(self.endpoints),
            self.injection_rate,
            self.packet_length,
            self.pattern,
            seed=self.seed,
            hotspot_fraction=self.hotspot_fraction,
            hotspot_endpoint=self.hotspot_endpoint,
        )


@dataclass(frozen=True)
class SimulationSpec:
    """Everything needed to run (and cache) one network simulation.

    Frozen and hashable, so specs work as dict keys; picklable, so the
    sweep engine can ship them to worker processes; and content-addressed
    via :meth:`cache_key`, so identical runs are never simulated twice.
    """

    topology: SprintTopology
    traffic: TrafficSpec
    config: NoCConfig = field(default_factory=NoCConfig)
    routing: str = "cdor"
    warmup_cycles: int = 500
    measure_cycles: int = 2000
    drain_cycles: int = 30000

    def __post_init__(self) -> None:
        if self.warmup_cycles < 0 or self.measure_cycles < 1 or self.drain_cycles < 0:
            raise ValueError("simulation windows must be non-negative (measure >= 1)")
        for node in self.traffic.endpoints:
            if not self.topology.is_active(node):
                raise ValueError(f"traffic endpoint {node} is dark in this topology")

    def cache_key(self) -> str:
        """Canonical content hash of the full run description."""
        return stable_key(("simulate", self))

    def with_seed(self, seed: int) -> "SimulationSpec":
        """The same run under a different traffic seed."""
        return dataclasses.replace(
            self, traffic=dataclasses.replace(self.traffic, seed=seed)
        )


__all__ = ["SimulationSpec", "TrafficSpec", "stable_key"]
