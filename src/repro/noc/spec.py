"""Declarative simulation specs: one picklable value per network run.

A :class:`SimulationSpec` fully describes a cycle simulation -- topology,
traffic process, interconnect configuration, routing algorithm and the
warmup/measure/drain windows -- as a frozen, hashable, picklable value
object.  It replaces the keyword soup previously threaded through
``run_simulation``, the benchmark harness and ``NoCSprintingSystem``, and
is the unit the sweep engine (:mod:`repro.exec`) fans out over worker
processes and keys its result cache on.

Because a spec carries its own traffic *seed* rather than a live
:class:`~repro.noc.traffic.TrafficGenerator`, rebuilding the generator in
any process reproduces the exact packet sequence: serial and parallel
sweeps over the same specs are bit-identical.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.noc.traffic import TrafficGenerator


def _field_default(f: dataclasses.Field):
    if f.default is not dataclasses.MISSING:
        return f.default
    if f.default_factory is not dataclasses.MISSING:
        return f.default_factory()
    return dataclasses.MISSING


def _canonical(obj):
    """A JSON-serializable canonical form of nested dataclasses/values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        payload = {}
        for f in dataclasses.fields(obj):
            value = getattr(obj, f.name)
            # Fields marked `omit_when_default` vanish from the canonical
            # form while they hold their default value, so adding such a
            # field to a spec class never invalidates existing cache keys.
            if f.metadata.get("omit_when_default") and value == _field_default(f):
                continue
            payload[f.name] = _canonical(value)
        payload["__class__"] = type(obj).__name__
        return payload
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, frozenset):
        return sorted(_canonical(item) for item in obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for a cache key")


def stable_key(obj) -> str:
    """Content-addressed key: SHA-256 of the canonical JSON form.

    Stable across processes and Python versions (no reliance on ``hash``),
    so on-disk cache entries written by one interpreter are valid in any
    other.
    """
    blob = json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# the versioned wire format (the repro.service / `repro serve` contract)
# ----------------------------------------------------------------------
#: Wire-format schema version.  The v1 body is *pinned bit-for-bit* to the
#: omit-when-default canonical form that cache keys and ledger records are
#: hashed from, so a spec that round-trips through the wire keeps the
#: exact cache key it had in-process.  Any change to the canonicalization
#: is therefore a wire-format break and must bump this number.
WIRE_VERSION = 1


class WireFormatError(ValueError):
    """A wire payload could not be decoded into a spec.

    Carries the same structured payload shape as
    :class:`~repro.noc.backends.BackendCapabilityError` (``type`` /
    ``message`` plus optional detail lists), so HTTP clients can branch on
    one error schema.  ``code`` distinguishes the failure classes:
    ``"version"`` (unknown/unsupported ``v``), ``"schema"`` (malformed or
    drifted payload shape) and ``"value"`` (well-formed payload whose
    values fail spec validation).
    """

    def __init__(self, message: str, code: str = "schema"):
        self.code = code
        super().__init__(message)


def _wire_classes() -> dict:
    # late import: NoCConfig/SprintTopology are already module-level
    # imports; the map just names every dataclass legal on the wire
    return {
        "SimulationSpec": SimulationSpec,
        "TrafficSpec": TrafficSpec,
        "FaultSchedule": FaultSchedule,
        "FaultEvent": FaultEvent,
        "SprintTopology": SprintTopology,
        "NoCConfig": NoCConfig,
    }


def _revive(payload, classes: dict):
    """Rebuild the canonical-form value tree into live dataclasses.

    Strict by design: an unknown ``__class__`` or an unrecognized field
    name is a :class:`WireFormatError`, not a silent drop -- schema drift
    must fail loudly, never decode into a subtly different run.  JSON
    lists become tuples (every sequence field in the spec tree is a
    tuple), so a decoded spec compares equal to the original.
    """
    if isinstance(payload, dict):
        cls_name = payload.get("__class__")
        if cls_name is None:
            return {key: _revive(value, classes) for key, value in payload.items()}
        cls = classes.get(cls_name)
        if cls is None:
            raise WireFormatError(f"unknown wire class {cls_name!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {}
        for key, value in payload.items():
            if key == "__class__":
                continue
            if key not in known:
                raise WireFormatError(
                    f"unknown field {key!r} on wire class {cls_name!r}"
                )
            kwargs[key] = _revive(value, classes)
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as err:
            raise WireFormatError(
                f"invalid {cls_name} on the wire: {err}", code="value"
            ) from err
    if isinstance(payload, list):
        return tuple(_revive(item, classes) for item in payload)
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return payload
    raise WireFormatError(f"unserializable wire value {type(payload).__name__}")


def spec_to_wire(spec: "SimulationSpec") -> dict:
    """Encode a spec as a version-tagged, JSON-ready wire document.

    The ``"spec"`` body is exactly the canonical form :func:`stable_key`
    hashes (omit-when-default fields vanish at their defaults), so
    ``spec_from_wire(spec_to_wire(s)).cache_key() == s.cache_key()`` by
    construction -- a spec submitted over HTTP hits the same cache and
    ledger entries as the in-process original.
    """
    return {"v": WIRE_VERSION, "kind": "simulation_spec",
            "spec": _canonical(spec)}


def spec_from_wire(payload) -> "SimulationSpec":
    """Decode a :func:`spec_to_wire` document (strictly validated).

    Raises :class:`WireFormatError` on any malformation: missing or
    unsupported ``"v"``, a body that is not the canonical form of a
    :class:`SimulationSpec`, unknown classes or fields (schema drift), or
    field values the spec constructors reject.
    """
    if not isinstance(payload, dict):
        raise WireFormatError("wire payload must be a JSON object")
    version = payload.get("v")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {version!r} (this build speaks "
            f"v{WIRE_VERSION})", code="version",
        )
    kind = payload.get("kind", "simulation_spec")
    if kind != "simulation_spec":
        raise WireFormatError(f"expected a simulation_spec document, got "
                              f"kind {kind!r}")
    body = payload.get("spec")
    if not isinstance(body, dict):
        raise WireFormatError('wire payload needs a "spec" object body')
    if body.get("__class__") != "SimulationSpec":
        raise WireFormatError('the "spec" body must canonicalize a '
                              "SimulationSpec")
    spec = _revive(body, _wire_classes())
    assert isinstance(spec, SimulationSpec)
    return spec


@dataclass(frozen=True)
class TrafficSpec:
    """Declarative description of a synthetic traffic process.

    Mirrors the :class:`~repro.noc.traffic.TrafficGenerator` constructor;
    :meth:`build` instantiates a fresh generator whose packet sequence is
    fully determined by these fields (the generator keeps the mutable RNG
    state, the spec stays a value).
    """

    endpoints: tuple[int, ...]
    injection_rate: float
    packet_length: int
    pattern: str = "uniform"
    seed: int = 0
    hotspot_fraction: float = 0.5
    hotspot_endpoint: int | None = None

    def build(self) -> TrafficGenerator:
        """A fresh generator reproducing this spec's packet sequence."""
        return TrafficGenerator(
            list(self.endpoints),
            self.injection_rate,
            self.packet_length,
            self.pattern,
            seed=self.seed,
            hotspot_fraction=self.hotspot_fraction,
            hotspot_endpoint=self.hotspot_endpoint,
        )


@dataclass(frozen=True)
class FaultEvent:
    """One injected failure in the simulated silicon.

    ``kind`` is ``"router"`` (a whole node fails) or ``"link"`` (one mesh
    link fails; the region reconfigures to exclude the endpoint farther
    from the master so CDOR never sees a broken internal link).
    ``duration`` is ``None`` for a permanent (hard) fault, or the number of
    cycles a transient fault lasts before the component recovers.
    """

    cycle: int
    kind: str = "router"
    node: int | None = None
    link: tuple[int, int] | None = None
    duration: int | None = None

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("fault cycle must be non-negative")
        if self.kind not in ("router", "link"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "router" and (self.node is None or self.link is not None):
            raise ValueError("a router fault names exactly one node")
        if self.kind == "link":
            if self.link is None or self.node is not None:
                raise ValueError("a link fault names exactly one (a, b) link")
            if len(self.link) != 2 or self.link[0] == self.link[1]:
                raise ValueError(f"malformed link {self.link!r}")
        if self.duration is not None and self.duration < 1:
            raise ValueError("transient fault duration must be >= 1 cycle")

    @property
    def recovery_cycle(self) -> int | None:
        """Cycle the component comes back, or None for a permanent fault."""
        return None if self.duration is None else self.cycle + self.duration

    def active_at(self, cycle: int) -> bool:
        if cycle < self.cycle:
            return False
        return self.duration is None or cycle < self.cycle + self.duration


@dataclass(frozen=True)
class FaultSchedule:
    """A declarative, content-hashable set of fault injections.

    The empty schedule is the default everywhere and canonicalizes to
    nothing at all, so fault-free specs keep the cache keys they had
    before faults existed.
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def boundaries(self) -> list[int]:
        """Sorted cycles at which the fault set changes (onset + recovery)."""
        cycles = set()
        for event in self.events:
            cycles.add(event.cycle)
            if event.recovery_cycle is not None:
                cycles.add(event.recovery_cycle)
        return sorted(cycles)

    def faulty_routers_at(self, cycle: int) -> frozenset[int]:
        return frozenset(
            e.node for e in self.events if e.kind == "router" and e.active_at(cycle)
        )

    def faulty_links_at(self, cycle: int) -> frozenset[tuple[int, int]]:
        return frozenset(
            (min(e.link), max(e.link))
            for e in self.events
            if e.kind == "link" and e.active_at(cycle)
        )


@dataclass(frozen=True)
class SimulationSpec:
    """Everything needed to run (and cache) one network simulation.

    Frozen and hashable, so specs work as dict keys; picklable, so the
    sweep engine can ship them to worker processes; and content-addressed
    via :meth:`cache_key`, so identical runs are never simulated twice.
    """

    topology: SprintTopology
    traffic: TrafficSpec
    config: NoCConfig = field(default_factory=NoCConfig)
    routing: str = "cdor"
    warmup_cycles: int = 500
    measure_cycles: int = 2000
    drain_cycles: int = 30000
    faults: FaultSchedule = field(
        default_factory=FaultSchedule, metadata={"omit_when_default": True}
    )
    # which registered simulation engine executes the run (see
    # repro.noc.backends).  Omitted from the canonical form at its default,
    # so every pre-existing cache key is preserved; a non-default backend
    # keys separately, as two engines are only *required* to agree on the
    # feature set both support.  The sentinel "auto" defers the choice to
    # the registry (fastest backend covering the spec's requirements) and
    # canonicalizes to the *resolved* name in cache keys.
    backend: str = field(default="reference", metadata={"omit_when_default": True})

    def __post_init__(self) -> None:
        if self.warmup_cycles < 0 or self.measure_cycles < 1 or self.drain_cycles < 0:
            raise ValueError("simulation windows must be non-negative (measure >= 1)")
        if not isinstance(self.backend, str) or not self.backend:
            raise ValueError("backend must be a non-empty backend name")
        for node in self.traffic.endpoints:
            if not self.topology.is_active(node):
                raise ValueError(f"traffic endpoint {node} is dark in this topology")
        if self.faults:
            self._validate_faults()

    def _validate_faults(self) -> None:
        if self.routing not in ("cdor", "xy"):
            raise ValueError(
                "fault injection needs deterministic reconfiguration; "
                f"routing {self.routing!r} is not supported with faults"
            )
        n = self.topology.width * self.topology.height
        for event in self.faults.events:
            if event.kind == "router":
                if not 0 <= event.node < n:
                    raise ValueError(f"fault node {event.node} outside the mesh")
                if event.node == self.topology.master:
                    raise ValueError(
                        "the master node cannot be faulted: it anchors every "
                        "reconfigured sprint region"
                    )
            else:
                a, b = event.link
                if not (0 <= a < n and 0 <= b < n):
                    raise ValueError(f"fault link {event.link} outside the mesh")
                ca = self.topology.coord(a)
                cb = self.topology.coord(b)
                if abs(ca.x - cb.x) + abs(ca.y - cb.y) != 1:
                    raise ValueError(f"fault link {event.link} is not a mesh link")

    def resolved_backend(self) -> str:
        """The concrete engine name this spec will execute on.

        Explicit backends resolve to themselves; ``"auto"`` asks the
        registry for the fastest backend whose declared capabilities
        cover this spec's requirements (the public
        :func:`repro.noc.backends.requirements` /
        :func:`repro.noc.backends.supports` API).
        """
        if self.backend != "auto":
            return self.backend
        from repro.noc.backends import resolve_backend

        return resolve_backend(self).name

    def cache_key(self) -> str:
        """Canonical content hash of the full run description.

        ``backend="auto"`` hashes as the *resolved* engine name, so cache
        entries and ledger records are unambiguous about which engine
        produced them -- and an auto spec that resolves to the default
        engine shares the default spec's key (backends that agree bit-for-
        bit may share results; the omit-when-default rule already makes
        the explicit default and the omitted field identical).
        """
        spec = self
        if self.backend == "auto":
            spec = dataclasses.replace(self, backend=self.resolved_backend())
        return stable_key(("simulate", spec))

    def with_seed(self, seed: int) -> "SimulationSpec":
        """The same run under a different traffic seed."""
        return dataclasses.replace(
            self, traffic=dataclasses.replace(self.traffic, seed=seed)
        )

    def with_backend(self, backend: str) -> "SimulationSpec":
        """The same run executed by a different simulation engine."""
        return dataclasses.replace(self, backend=backend)

    def to_wire(self) -> dict:
        """Version-tagged JSON-ready document; see :func:`spec_to_wire`."""
        return spec_to_wire(self)

    @classmethod
    def from_wire(cls, payload) -> "SimulationSpec":
        """Decode a wire document; see :func:`spec_from_wire`."""
        return spec_from_wire(payload)


__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "SimulationSpec",
    "TrafficSpec",
    "WIRE_VERSION",
    "WireFormatError",
    "spec_from_wire",
    "spec_to_wire",
    "stable_key",
]
