"""The experiment service engine: coalesced, budgeted spec evaluation.

:class:`ExperimentService` is the transport-free core behind the
``repro serve`` HTTP front door (:mod:`repro.service.http`) and the
``repro submit --local`` parity path.  One instance owns:

- a shared :class:`~repro.exec.cache.ResultCache` -- the content-addressed
  store every submission is answered from;
- a **singleflight table**: for each cache key at most one computation is
  ever in flight, arbitrated by :meth:`ResultCache.get_or_begin` claims
  (cross-process) plus an in-process event table (cross-thread), so N
  concurrent identical submissions cost exactly one simulation;
- the existing execution engine: claimed specs are batched through a
  :class:`~repro.exec.runner.SweepRunner` (process pool or sweep
  fabric), which also writes the run ledger -- service runs file under
  ``kind="service"`` with the client identity as the label;
- per-client admission (:class:`~repro.service.budget.ClientAccounts`)
  and the ``service_*`` metrics series.

Everything here is stdlib-only and thread-safe; HTTP handler threads
call straight into it.
"""

from __future__ import annotations

import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.exec.cache import ResultCache
from repro.exec.runner import SweepRunner
from repro.noc.backends import check_capabilities, get_backend
from repro.noc.spec import SimulationSpec, WireFormatError, spec_from_wire
from repro.service.budget import (
    CLOCK_HZ,
    SERVICE_COUNTER_HELP,
    SERVICE_GAUGE_HELP,
    BudgetExhausted,
    ClientAccounts,
    RateLimited,
)
from repro.telemetry.ledger import Ledger, RunRecord
from repro.telemetry.metrics import MetricsRegistry

#: How long a coalescing waiter polls an *external* claim holder (another
#: process computing the same key) before taking the key over itself.
EXTERNAL_POLL_S = 0.05


class _Inflight:
    """One in-process computation: waiters block on the event."""

    __slots__ = ("event", "error")

    def __init__(self):
        self.event = threading.Event()
        self.error: str | None = None


@dataclass(frozen=True)
class SweepTicket:
    """The handle a batch submission returns (``POST /v1/sweeps`` body)."""

    sweep_id: str
    client: str
    keys: tuple[str, ...]       # one per submitted spec, input order
    new: int                    # claimed by this submission
    coalesced: int              # joined an identical in-flight computation
    cached: int                 # answered straight from the cache
    created_ts: float = 0.0

    def to_dict(self) -> dict:
        return {
            "sweep_id": self.sweep_id,
            "client": self.client,
            "keys": list(self.keys),
            "total": len(self.keys),
            "new": self.new,
            "coalesced": self.coalesced,
            "cached": self.cached,
            "created_ts": self.created_ts,
        }


class ExperimentService:
    """Accept wire-format specs, evaluate each unique one exactly once.

    ``workers`` is the process fan-out each claimed batch is executed
    with; ``fabric`` (a :class:`~repro.exec.fabric.FabricConfig`) routes
    batches through the lease-based work queue instead, each batch under
    a queue derived via :meth:`FabricConfig.for_batch`.  ``accounts``
    carries the per-client admission policy; the default is permissive
    (no budget, generous rate).  ``executor_threads`` bounds concurrent
    batch executions *and* external-claim waiters.
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        workers: int = 1,
        accounts: ClientAccounts | None = None,
        registry: MetricsRegistry | None = None,
        ledger: Ledger | None = None,
        fabric=None,
        executor_threads: int = 4,
    ):
        self.cache = cache if cache is not None else ResultCache()
        self.workers = workers
        self.accounts = accounts if accounts is not None else ClientAccounts()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.ledger = ledger if ledger is not None else Ledger()
        self.fabric = fabric
        # MetricsRegistry is not thread-safe; every touch goes through
        # this lock (handler threads + executor charge-back race it)
        self._metrics_lock = threading.Lock()
        with self._metrics_lock:
            self.registry.preregister(SERVICE_COUNTER_HELP,
                                      gauges=SERVICE_GAUGE_HELP)
        self._lock = threading.Lock()
        self._inflight: dict[str, _Inflight] = {}
        self._errors: dict[str, str] = {}
        self._tickets: dict[str, SweepTicket] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=executor_threads, thread_name_prefix="repro-service"
        )
        self._closed = False

    # ------------------------------------------------------------------
    # metrics plumbing
    # ------------------------------------------------------------------
    def _count(self, name: str, n: int = 1, **labels) -> None:
        with self._metrics_lock:
            self.registry.counter(name).inc(n)
            if labels:
                self.registry.counter(name, **labels).inc(n)

    def metrics_text(self) -> str:
        """The Prometheus exposition body (pull-style gauges refreshed)."""
        with self._lock:
            inflight = len(self._inflight)
        with self._metrics_lock:
            self.registry.gauge("service_inflight").set(inflight)
            self.cache.export_metrics(self.registry)
            self.accounts.export_metrics(self.registry)
            return self.registry.render_prometheus()

    def counter_value(self, name: str, **labels):
        with self._metrics_lock:
            return self.registry.value(name, **labels)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def decode(self, payload) -> SimulationSpec:
        """Wire document -> validated spec (raises on any malformation).

        Capability validation happens here, eagerly, so an impossible
        spec is refused at the front door with the structured
        :class:`~repro.noc.backends.BackendCapabilityError` payload --
        not hours later inside a worker process.
        """
        try:
            spec = spec_from_wire(payload)
        except WireFormatError:
            self._count("service_wire_errors_total")
            raise
        check_capabilities(get_backend(spec.resolved_backend()), spec)
        return spec

    def submit(self, payloads, client: str = "anonymous") -> SweepTicket:
        """Admit and dispatch one batch of wire-format specs.

        Every payload is decoded and validated *before* any is admitted
        or executed -- a batch is all-or-nothing at the front door.
        Returns a :class:`SweepTicket`; results land in the cache and
        are awaited per-key (:meth:`wait`) or per-ticket
        (:meth:`sweep_status`).
        """
        if self._closed:
            raise RuntimeError("service is closed")
        specs = [self.decode(payload) for payload in payloads]
        try:
            self.accounts.admit(client, max(1, len(specs)))
        except RateLimited:
            self._count("service_rate_limited_total", client=client)
            raise
        except BudgetExhausted:
            self._count("service_budget_refusals_total", client=client)
            raise
        self._count("service_specs_total", len(specs), client=client)

        keys = [spec.cache_key() for spec in specs]
        to_run: dict[str, SimulationSpec] = {}
        claims: dict[str, object] = {}
        new = coalesced = cached = 0
        for spec, key in zip(specs, keys):
            if key in to_run:
                coalesced += 1  # duplicate within this very batch
                continue
            with self._lock:
                if key in self._inflight:
                    coalesced += 1
                    continue
            value, claim = self.cache.get_or_begin(key)
            if value is not None:
                cached += 1
                continue
            entry = _Inflight()
            with self._lock:
                self._errors.pop(key, None)
                self._inflight[key] = entry
            if claim is not None:
                to_run[key] = spec
                claims[key] = claim
                new += 1
            else:
                # another *process* holds the claim: wait on its result,
                # taking the key over if the holder orphans it
                coalesced += 1
                self._pool.submit(self._await_external, spec, key, client)
        self._count("service_cache_served_total", cached)
        self._count("service_coalesced_total", coalesced)
        if to_run:
            self._pool.submit(
                self._execute_batch, list(to_run.values()), claims, client
            )
        ticket = SweepTicket(
            sweep_id=uuid.uuid4().hex[:16],
            client=client,
            keys=tuple(keys),
            new=new,
            coalesced=coalesced,
            cached=cached,
            created_ts=time.time(),
        )
        with self._lock:
            self._tickets[ticket.sweep_id] = ticket
        return ticket

    # ------------------------------------------------------------------
    # execution (executor threads)
    # ------------------------------------------------------------------
    def _make_runner(self, batch_keys) -> SweepRunner:
        fabric = self.fabric
        if fabric is not None:
            from repro.noc.spec import stable_key

            fabric = fabric.for_batch(stable_key(tuple(sorted(batch_keys))))
        return SweepRunner(
            workers=self.workers,
            cache=self.cache,
            ledger=self.ledger,
            ledger_label=None,
            ledger_kind="service",
            fabric=fabric,
        )

    def _execute_batch(self, specs, claims, client: str) -> None:
        keys = list(claims)
        try:
            runner = self._make_runner(keys)
            runner.ledger_label = client
            report = runner.run(specs)
        except BaseException as err:  # noqa: BLE001 -- waiter threads must wake
            for key, claim in claims.items():
                claim.abandon()
                self._resolve(key, error=f"{type(err).__name__}: {err}")
            self._count("service_failures_total", len(claims))
            return
        simulated = [p for p in report.points if not p.cached]
        spent = self.accounts.charge(
            client,
            sum(p.result.cycles_run for p in simulated) / CLOCK_HZ,
        )
        self._count("service_simulations_total", len(simulated))
        if report.failures:
            self._count("service_failures_total", len(report.failures))
        with self._metrics_lock:
            self.registry.gauge(
                "service_budget_spent_seconds", client=client
            ).set(round(spent, 6))
        failed = {point.key: point for point in report.failures}
        for key, claim in claims.items():
            failure = failed.get(key)
            if failure is not None:
                claim.abandon()
                self._resolve(key, error=failure.error)
            else:
                # the runner already published the value crash-atomically
                claim.release()
                self._resolve(key)

    def _await_external(self, spec, key: str, client: str,
                        timeout_s: float = 300.0) -> None:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            value, claim = self.cache.get_or_begin(key)
            if value is not None:
                self._resolve(key)
                return
            if claim is not None:
                # the external holder released without publishing (crash
                # or abandon): this waiter inherits the computation
                self._execute_batch([spec], {key: claim}, client)
                return
            time.sleep(EXTERNAL_POLL_S)
        self._resolve(key, error="timed out waiting for an external "
                                 "claim holder")

    def _resolve(self, key: str, error: str | None = None) -> None:
        with self._lock:
            entry = self._inflight.pop(key, None)
            if error is not None:
                self._errors[key] = error
        if entry is not None:
            entry.error = error
            entry.event.set()

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def status(self, key: str) -> str:
        """``"done"`` | ``"failed"`` | ``"running"`` | ``"unknown"``."""
        if key in self.cache:
            return "done"
        with self._lock:
            if key in self._errors:
                return "failed"
            if key in self._inflight:
                return "running"
        if self.cache.has_claim(key):
            return "running"  # another process is computing it
        return "unknown"

    def error(self, key: str) -> str | None:
        with self._lock:
            return self._errors.get(key)

    def wait(self, key: str, timeout_s: float | None = None):
        """Block until ``key`` resolves; the result, or ``None``.

        ``None`` means failed, still running at timeout, or never
        submitted -- disambiguate with :meth:`status`.
        """
        with self._lock:
            entry = self._inflight.get(key)
        if entry is not None:
            entry.event.wait(timeout_s)
        return self.cache.get(key)

    def result(self, key: str):
        """The cached value for ``key`` (no blocking), or ``None``."""
        return self.cache.get(key)

    def ledger_lookup(self, key: str) -> RunRecord | None:
        """The durable fallback: the newest run whose points include key."""
        return self.ledger.latest_with_point(key)

    def run_record(self, ref: str) -> RunRecord | None:
        return self.ledger.get(ref)

    def sweep_status(self, sweep_id: str) -> dict | None:
        """The ticket's progress document (``GET /v1/sweeps/{id}``)."""
        with self._lock:
            ticket = self._tickets.get(sweep_id)
        if ticket is None:
            return None
        done = failed = running = 0
        errors: dict[str, str] = {}
        for key in set(ticket.keys):
            state = self.status(key)
            if state == "done":
                done += 1
            elif state == "failed":
                failed += 1
                errors[key] = self.error(key) or "failed"
            else:
                running += 1
        doc = ticket.to_dict()
        doc.update({
            "done": done,
            "failed": failed,
            "running": running,
            "complete": running == 0,
        })
        if errors:
            doc["errors"] = errors
        return doc

    def close(self) -> None:
        """Drain the executor; idempotent."""
        self._closed = True
        self._pool.shutdown(wait=True)


__all__ = ["EXTERNAL_POLL_S", "ExperimentService", "SweepTicket"]
