"""Experiment-as-a-service: the HTTP front door over the sweep engine.

``repro serve`` turns the in-process evaluation API into a network
service: clients POST :class:`~repro.noc.spec.SimulationSpec` documents
in the versioned wire format (:func:`repro.noc.spec.spec_to_wire`),
identical concurrent submissions coalesce onto one simulation through
:meth:`~repro.exec.cache.ResultCache.get_or_begin` claims, execution
rides the existing pool/fabric runners, and results are served from the
content-addressed cache with the run ledger as the durable fallback.
Per-client token buckets and simulated-seconds budgets keep multi-tenant
load legible (``service_*`` metrics series).

Layers:

- :mod:`repro.service.core` -- :class:`ExperimentService`, the
  transport-free engine (also the ``repro submit --local`` parity path);
- :mod:`repro.service.http` -- :class:`ExperimentServer`, the stdlib
  ``http.server`` JSON API;
- :mod:`repro.service.budget` -- :class:`ClientAccounts` admission
  (token buckets + post-paid simulated-seconds budgets).

See ``docs/service.md`` for the endpoint reference, the wire-format
versioning policy, coalescing semantics, and budget accounting.
"""

from repro.service.budget import (
    CLOCK_HZ,
    SERVICE_COUNTER_HELP,
    SERVICE_GAUGE_HELP,
    BudgetExhausted,
    ClientAccounts,
    RateLimited,
    TokenBucket,
)
from repro.service.core import ExperimentService, SweepTicket
from repro.service.http import (
    CLIENT_HEADER,
    DEFAULT_WAIT_S,
    ExperimentServer,
    error_payload,
)

__all__ = [
    "BudgetExhausted",
    "CLIENT_HEADER",
    "CLOCK_HZ",
    "ClientAccounts",
    "DEFAULT_WAIT_S",
    "ExperimentServer",
    "ExperimentService",
    "RateLimited",
    "SERVICE_COUNTER_HELP",
    "SERVICE_GAUGE_HELP",
    "SweepTicket",
    "TokenBucket",
    "error_payload",
]
