"""The ``repro serve`` HTTP front door over :class:`ExperimentService`.

Stdlib ``http.server`` only, the same zero-dependency approach as the
watch plane's :class:`~repro.telemetry.live.MetricsServer`.  JSON in,
JSON out; every error response carries one structured shape -- the same
payload fields as :class:`~repro.noc.backends.BackendCapabilityError`::

    {"error": {"type": ..., "message": ..., "missing": [...],
               "alternatives": [...]}}

so a client can branch on ``type`` without parsing prose.  Endpoints:

==========================  ===================================================
``POST /v1/evaluate``       submit one spec; blocks up to ``wait_s`` for the
                            result (202 with the key if still running)
``POST /v1/sweeps``         submit a batch; 202 with a sweep ticket
``GET /v1/sweeps/{id}``     ticket progress; results inlined once complete
``GET /v1/results/{key}``   cache hit 200 / in flight 202 / ledger fallback
                            200 (headline only) / 404
``GET /v1/runs/{run_id}``   one run-ledger record (id or unique prefix)
``GET /metrics``            Prometheus exposition (``service_*`` + cache)
``GET /healthz``            liveness probe
==========================  ===================================================

Clients identify themselves with the ``X-Repro-Client`` header
(``anonymous`` otherwise); rate limits and simulated-seconds budgets are
accounted per client.
"""

from __future__ import annotations

import json
import threading

from repro.noc.backends import BackendCapabilityError
from repro.noc.spec import WireFormatError
from repro.service.budget import BudgetExhausted, RateLimited
from repro.service.core import ExperimentService

#: Default seconds ``POST /v1/evaluate`` blocks before answering 202.
DEFAULT_WAIT_S = 60.0

#: Submission bodies above this are refused (413) unread.
MAX_BODY_BYTES = 8 * 1024 * 1024

CLIENT_HEADER = "X-Repro-Client"


def error_payload(err: Exception) -> tuple[int, dict]:
    """(HTTP status, structured body) for every refusal the API issues.

    One shape for every error type -- ``missing`` and ``alternatives``
    are meaningful for capability refusals and empty otherwise, exactly
    the fields :class:`BackendCapabilityError` carries in-process.
    """
    body = {
        "type": "error",
        "message": str(err),
        "missing": [],
        "alternatives": [],
    }
    if isinstance(err, BackendCapabilityError):
        body.update(
            type="backend_capability",
            missing=sorted(err.missing),
            alternatives=list(err.alternatives),
            backend=err.backend,
        )
        return 400, body
    if isinstance(err, WireFormatError):
        body.update(type="wire_format", code=err.code)
        return 400, body
    if isinstance(err, RateLimited):
        body.update(type="rate_limited", client=err.client,
                    retry_after_s=round(err.retry_after_s, 3))
        return 429, body
    if isinstance(err, BudgetExhausted):
        body.update(type="budget_exhausted", client=err.client,
                    spent_s=err.spent_s, budget_s=err.budget_s)
        return 402, body
    if isinstance(err, (ValueError, TypeError, KeyError)):
        body.update(type="validation")
        return 400, body
    body.update(type="internal")
    return 500, body


def _wire_value(value) -> dict:
    """Serialize whatever the cache holds (results carry ``to_wire``)."""
    to_wire = getattr(value, "to_wire", None)
    if callable(to_wire):
        return to_wire()
    return {"v": 1, "kind": "opaque", "repr": repr(value)}


class ExperimentServer:
    """A threaded ``http.server`` front end over one ExperimentService.

    ``port=0`` binds an ephemeral port (``server.port`` reports it);
    handler threads are daemons, so a hung client never wedges shutdown.
    :meth:`stop` also closes the service (drains its executor) when the
    server owns it (``own_service=True``, the CLI default).
    """

    def __init__(self, service: ExperimentService, host: str = "127.0.0.1",
                 port: int = 0, own_service: bool = True):
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        outer = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            # -- plumbing ----------------------------------------------
            def _client(self) -> str:
                return self.headers.get(CLIENT_HEADER, "").strip() or "anonymous"

            def _send_json(self, status: int, payload: dict,
                           headers: dict | None = None) -> None:
                body = json.dumps(payload, sort_keys=True).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type",
                                 "application/json; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                for name, value in (headers or {}).items():
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(body)

            def _send_error_payload(self, err: Exception) -> None:
                status, body = error_payload(err)
                headers = {}
                if isinstance(err, RateLimited):
                    headers["Retry-After"] = str(
                        max(1, int(err.retry_after_s + 0.999)))
                self._send_json(status, {"error": body}, headers)

            def _read_json(self):
                length = int(self.headers.get("Content-Length") or 0)
                if length > MAX_BODY_BYTES:
                    self._send_json(413, {"error": {
                        "type": "too_large",
                        "message": f"body exceeds {MAX_BODY_BYTES} bytes",
                        "missing": [], "alternatives": [],
                    }})
                    return None
                raw = self.rfile.read(length) if length else b""
                try:
                    return json.loads(raw.decode("utf-8") or "null")
                except (UnicodeDecodeError, ValueError):
                    self._send_json(400, {"error": {
                        "type": "bad_json",
                        "message": "request body is not valid JSON",
                        "missing": [], "alternatives": [],
                    }})
                    return None

            def log_message(self, *args):  # quiet: metrics own the story
                pass

            # -- GET ---------------------------------------------------
            def do_GET(self):  # noqa: N802 (http.server API)
                outer.service._count("service_requests_total")
                path = self.path.split("?", 1)[0].rstrip("/")
                if path == "":
                    self._send_json(200, outer._index())
                elif path == "/healthz":
                    self._send_json(200, {"ok": True})
                elif path == "/metrics":
                    body = outer.service.metrics_text().encode("utf-8")
                    self.send_response(200)
                    self.send_header(
                        "Content-Type",
                        "text/plain; version=0.0.4; charset=utf-8")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                elif path.startswith("/v1/results/"):
                    outer._get_result(self, path[len("/v1/results/"):])
                elif path.startswith("/v1/runs/"):
                    outer._get_run(self, path[len("/v1/runs/"):])
                elif path.startswith("/v1/sweeps/"):
                    outer._get_sweep(self, path[len("/v1/sweeps/"):])
                else:
                    self._send_json(404, outer._not_found(path))

            # -- POST --------------------------------------------------
            def do_POST(self):  # noqa: N802 (http.server API)
                outer.service._count("service_requests_total")
                path = self.path.split("?", 1)[0].rstrip("/")
                payload = self._read_json()
                if payload is None:
                    return
                try:
                    if path == "/v1/evaluate":
                        outer._post_evaluate(self, payload)
                    elif path == "/v1/sweeps":
                        outer._post_sweeps(self, payload)
                    else:
                        self._send_json(404, outer._not_found(path))
                except Exception as err:  # noqa: BLE001 -- one error schema
                    self._send_error_payload(err)

            def do_PUT(self):  # noqa: N802
                self._send_json(405, {"error": {
                    "type": "method_not_allowed",
                    "message": "only GET and POST are supported",
                    "missing": [], "alternatives": [],
                }})

            do_DELETE = do_PUT

        self.service = service
        self._own_service = own_service
        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        daemon=True)

    # ------------------------------------------------------------------
    # endpoint bodies (methods on the server so tests can drive them)
    # ------------------------------------------------------------------
    @staticmethod
    def _index() -> dict:
        return {
            "service": "repro",
            "endpoints": [
                "POST /v1/evaluate", "POST /v1/sweeps",
                "GET /v1/sweeps/{sweep_id}", "GET /v1/results/{cache_key}",
                "GET /v1/runs/{run_id}", "GET /metrics", "GET /healthz",
            ],
        }

    @staticmethod
    def _not_found(path: str) -> dict:
        return {"error": {"type": "not_found",
                          "message": f"no such endpoint: {path or '/'}",
                          "missing": [], "alternatives": []}}

    def _post_evaluate(self, handler, payload) -> None:
        # accept a bare wire document or an {"spec": ..., "wait_s": ...}
        # envelope; the bare form is what `repro submit` sends
        if isinstance(payload, dict) and "spec" in payload and "v" not in payload:
            wait_s = float(payload.get("wait_s", DEFAULT_WAIT_S))
            document = payload["spec"]
        else:
            wait_s = DEFAULT_WAIT_S
            document = payload
        ticket = self.service.submit([document], client=handler._client())
        key = ticket.keys[0]
        if wait_s > 0:
            value = self.service.wait(key, timeout_s=wait_s)
        else:
            value = self.service.result(key)
        if value is not None:
            handler._send_json(200, {
                "key": key, "status": "done", "sweep_id": ticket.sweep_id,
                "cached": bool(ticket.cached), "result": _wire_value(value),
            })
            return
        state = self.service.status(key)
        if state == "failed":
            handler._send_json(500, {"error": {
                "type": "simulation_failed",
                "message": self.service.error(key) or "simulation failed",
                "missing": [], "alternatives": [], "key": key,
            }})
            return
        handler._send_json(202, {
            "key": key, "status": "running", "sweep_id": ticket.sweep_id,
        })

    def _post_sweeps(self, handler, payload) -> None:
        if not isinstance(payload, dict) or not isinstance(
                payload.get("specs"), list) or not payload["specs"]:
            raise ValueError('batch body must be {"specs": [<wire spec>, ...]}')
        ticket = self.service.submit(payload["specs"],
                                     client=handler._client())
        handler._send_json(202, ticket.to_dict())

    def _get_sweep(self, handler, sweep_id: str) -> None:
        doc = self.service.sweep_status(sweep_id)
        if doc is None:
            handler._send_json(404, self._not_found(f"/v1/sweeps/{sweep_id}"))
            return
        if doc["complete"] and not doc["failed"]:
            doc["results"] = {
                key: _wire_value(self.service.result(key))
                for key in set(doc["keys"])
            }
        handler._send_json(200, doc)

    def _get_result(self, handler, key: str) -> None:
        value = self.service.result(key)
        if value is not None:
            handler._send_json(200, {"key": key, "status": "done",
                                     "source": "cache",
                                     "result": _wire_value(value)})
            return
        state = self.service.status(key)
        if state == "running":
            handler._send_json(202, {"key": key, "status": "running"})
            return
        if state == "failed":
            handler._send_json(500, {"error": {
                "type": "simulation_failed",
                "message": self.service.error(key) or "simulation failed",
                "missing": [], "alternatives": [], "key": key,
            }})
            return
        record = self.service.ledger_lookup(key)
        if record is not None:
            # durable fallback: the cache was wiped but the run ledger
            # still holds the point's headline metrics
            handler._send_json(200, {"key": key, "status": "done",
                                     "source": "ledger",
                                     "run_id": record.run_id,
                                     "headline": record.points[key]})
            return
        handler._send_json(404, {"error": {
            "type": "not_found", "message": f"unknown result key {key}",
            "missing": [], "alternatives": [], "key": key,
        }})

    def _get_run(self, handler, ref: str) -> None:
        record = self.service.run_record(ref)
        if record is None:
            handler._send_json(404, self._not_found(f"/v1/runs/{ref}"))
            return
        handler._send_json(200, {"run": record.to_json()})

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    @property
    def url(self) -> str:
        return f"http://{self.address}"

    def start(self) -> "ExperimentServer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._own_service:
            self.service.close()


__all__ = [
    "CLIENT_HEADER",
    "DEFAULT_WAIT_S",
    "MAX_BODY_BYTES",
    "ExperimentServer",
    "error_payload",
]
