"""Multi-tenant admission control for the experiment service.

Two independent meters, both keyed by the caller's ``X-Repro-Client``
identity:

- a **token bucket** per client bounds the *submission rate* (one token
  per submitted spec, refilled continuously) -- exceeding it is a
  transient :class:`RateLimited` refusal carrying the retry-after hint;
- a **simulated-seconds budget** per client bounds the *total machine
  time simulated* on the client's behalf.  Charging is post-paid: each
  newly simulated point costs ``cycles_run / CLOCK_HZ`` seconds once it
  completes, and a client whose cumulative spend has reached its budget
  is refused (:class:`BudgetExhausted`) at the next admission.  Cache
  hits and coalesced requests are free -- resubmitting known work never
  burns budget, which is exactly the incentive a content-addressed
  service wants to set.

Both meters surface as ``service_*`` series (per-client labels) on the
service's :class:`~repro.telemetry.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import threading
import time

#: The paper's 2 GHz mesh clock: converts a result's ``cycles_run``
#: into the simulated seconds the budget meter charges for it.
CLOCK_HZ = 2.0e9

#: Retry-After ceiling: a zero-refill bucket (``rate_per_s=0``) would
#: otherwise quote an infinite wait, which no HTTP header can carry.
MAX_RETRY_AFTER_S = 3600.0

#: Counters the service pre-registers so the very first ``/metrics``
#: scrape renders the full series set (zeros, not absences) -- the same
#: discipline as ``CACHE_GAUGE_HELP`` and ``WATCH_GAUGE_HELP``.
SERVICE_COUNTER_HELP = {
    "service_requests_total": "HTTP requests handled by the front door.",
    "service_specs_total": "Specs submitted for evaluation.",
    "service_simulations_total": "Specs this service actually simulated "
                                 "(not cache- or coalesce-served).",
    "service_cache_served_total": "Specs answered straight from the "
                                  "result cache.",
    "service_coalesced_total": "Specs coalesced onto an identical "
                               "in-flight computation.",
    "service_failures_total": "Specs that exhausted retries and failed.",
    "service_rate_limited_total": "Submissions refused by the per-client "
                                  "token bucket (HTTP 429).",
    "service_budget_refusals_total": "Submissions refused on an exhausted "
                                     "simulated-seconds budget (HTTP 402).",
    "service_wire_errors_total": "Submissions rejected as malformed or "
                                 "wrong-version wire payloads (HTTP 400).",
}

SERVICE_GAUGE_HELP = {
    "service_inflight": "Specs currently being computed.",
    "service_budget_spent_seconds": "Simulated seconds charged so far "
                                    "(per-client series).",
}


class RateLimited(Exception):
    """The client's token bucket is empty; retry after ``retry_after_s``."""

    def __init__(self, client: str, retry_after_s: float):
        self.client = client
        self.retry_after_s = retry_after_s
        super().__init__(
            f"client {client!r} exceeded the submission rate; "
            f"retry in {retry_after_s:.2f}s"
        )


class BudgetExhausted(Exception):
    """The client has simulated its whole budget; admission is refused."""

    def __init__(self, client: str, spent_s: float, budget_s: float):
        self.client = client
        self.spent_s = spent_s
        self.budget_s = budget_s
        super().__init__(
            f"client {client!r} has spent {spent_s:.3f}s of its "
            f"{budget_s:.3f}s simulated-seconds budget"
        )


class TokenBucket:
    """A continuously refilled token bucket (not thread-safe by itself;
    :class:`ClientAccounts` serializes access under its lock)."""

    def __init__(self, rate_per_s: float, burst: float,
                 clock=time.monotonic):
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.clock = clock
        self._updated = clock()

    def try_take(self, n: float = 1.0) -> float:
        """Take ``n`` tokens; 0.0 on success, else seconds until refill.

        An oversized request (``n > burst``) reports the time to fill
        the whole bucket rather than an unreachable wait.
        """
        now = self.clock()
        self.tokens = min(
            self.burst, self.tokens + (now - self._updated) * self.rate_per_s
        )
        self._updated = now
        if self.tokens >= n:
            self.tokens -= n
            return 0.0
        if self.rate_per_s <= 0:
            return MAX_RETRY_AFTER_S
        deficit = min(n, self.burst) - self.tokens
        return min(max(deficit, 0.0) / self.rate_per_s, MAX_RETRY_AFTER_S)


class ClientAccounts:
    """Per-client admission state: token buckets + budget ledgers.

    ``budget_simulated_s=None`` disables the budget meter (rate limiting
    still applies); ``rate_per_s=0`` with a positive ``burst`` gives
    every client a fixed allowance and no refill, which is what the
    refusal tests use.  Thread-safe: every method takes the internal
    lock, so HTTP handler threads and the executor's charge-back path
    can hit one instance concurrently.
    """

    def __init__(self, rate_per_s: float = 50.0, burst: float = 200.0,
                 budget_simulated_s: float | None = None,
                 clock=time.monotonic):
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self.budget_simulated_s = budget_simulated_s
        self.clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._spent_s: dict[str, float] = {}

    def admit(self, client: str, specs: int = 1) -> None:
        """Gate one submission of ``specs`` points for ``client``.

        Raises :class:`BudgetExhausted` (checked first: a broke client
        gets the permanent refusal, not the transient one) or
        :class:`RateLimited`.  Admission charges the bucket only --
        simulated seconds are charged post-hoc via :meth:`charge`.
        """
        with self._lock:
            spent = self._spent_s.get(client, 0.0)
            if (self.budget_simulated_s is not None
                    and spent >= self.budget_simulated_s):
                raise BudgetExhausted(client, spent, self.budget_simulated_s)
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate_per_s, self.burst, self.clock)
                self._buckets[client] = bucket
            retry_after = bucket.try_take(float(specs))
            if retry_after > 0.0:
                raise RateLimited(client, retry_after)

    def charge(self, client: str, simulated_s: float) -> float:
        """Add post-paid simulated seconds; returns the client's total."""
        with self._lock:
            total = self._spent_s.get(client, 0.0) + max(0.0, simulated_s)
            self._spent_s[client] = total
            return total

    def spent_s(self, client: str) -> float:
        with self._lock:
            return self._spent_s.get(client, 0.0)

    def clients(self) -> tuple[str, ...]:
        """Every client that has been admitted or charged, sorted."""
        with self._lock:
            return tuple(sorted(set(self._buckets) | set(self._spent_s)))

    def export_metrics(self, registry) -> None:
        """Publish per-client ``service_budget_spent_seconds`` gauges."""
        with self._lock:
            spends = dict(self._spent_s)
        for client, spent in spends.items():
            registry.gauge("service_budget_spent_seconds",
                           client=client).set(round(spent, 6))


__all__ = [
    "BudgetExhausted",
    "CLOCK_HZ",
    "ClientAccounts",
    "RateLimited",
    "SERVICE_COUNTER_HELP",
    "SERVICE_GAUGE_HELP",
    "TokenBucket",
]
