"""Mesh port directions.

The coordinate origin is the top-left corner of the mesh (as in the paper),
so NORTH decreases ``y`` and SOUTH increases it.
"""

from __future__ import annotations

from enum import Enum

from repro.util.geometry import Coord


class Direction(Enum):
    """A router port: the four mesh directions plus the local (NI) port."""

    LOCAL = "local"
    NORTH = "north"
    EAST = "east"
    SOUTH = "south"
    WEST = "west"

    @property
    def offset(self) -> Coord:
        """Coordinate delta of one hop in this direction."""
        return _OFFSETS[self]

    @property
    def opposite(self) -> "Direction":
        """The direction a flit arrives from after a hop in this direction."""
        return _OPPOSITES[self]


_OFFSETS = {
    Direction.LOCAL: Coord(0, 0),
    Direction.NORTH: Coord(0, -1),
    Direction.EAST: Coord(1, 0),
    Direction.SOUTH: Coord(0, 1),
    Direction.WEST: Coord(-1, 0),
}

_OPPOSITES = {
    Direction.LOCAL: Direction.LOCAL,
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
}

MESH_DIRECTIONS = (Direction.NORTH, Direction.EAST, Direction.SOUTH, Direction.WEST)
ALL_PORTS = (Direction.LOCAL,) + MESH_DIRECTIONS
