"""Seeded random-number streams.

Every stochastic component in the simulator draws from its own named stream
derived from a single experiment seed, so results are reproducible and
independent components do not perturb each other's sequences when one of
them changes how many numbers it draws.
"""

from __future__ import annotations

import random
import zlib


def stream(seed: int, name: str) -> random.Random:
    """Return an independent :class:`random.Random` for (seed, name).

    The stream seed mixes the experiment seed with a CRC of the stream name,
    which is stable across processes and Python versions (unlike ``hash``).
    """
    mixed = (seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) & 0xFFFFFFFF
    return random.Random(mixed)
