"""Shared utilities: lattice geometry, seeded RNG streams, statistics,
and text-table rendering for experiment output."""

from repro.util.geometry import (
    Coord,
    average_pairwise_manhattan,
    centroid,
    convex_hull,
    coord_to_node,
    euclidean,
    euclidean_sq,
    is_connected,
    is_discretely_convex,
    is_orthogonally_convex,
    lattice_points_in_hull,
    manhattan,
    node_to_coord,
    point_in_hull,
)
from repro.util.rng import stream
from repro.util.stats import (
    RunningStats,
    geometric_mean,
    mean,
    percent_change,
    percent_saving,
)
from repro.util.tables import format_series, format_table, render_heatmap

__all__ = [
    "Coord",
    "average_pairwise_manhattan",
    "centroid",
    "convex_hull",
    "coord_to_node",
    "euclidean",
    "euclidean_sq",
    "is_connected",
    "is_discretely_convex",
    "is_orthogonally_convex",
    "lattice_points_in_hull",
    "manhattan",
    "node_to_coord",
    "point_in_hull",
    "stream",
    "RunningStats",
    "geometric_mean",
    "mean",
    "percent_change",
    "percent_saving",
    "format_series",
    "format_table",
    "render_heatmap",
]
