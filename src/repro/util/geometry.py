"""Lattice geometry for 2D mesh networks.

The coordinate system follows the paper: the origin is at the *top-left*
corner of the mesh, ``x`` grows eastward (to the right) and ``y`` grows
southward (downward).  Node ids number the mesh in row-major order, so for a
``width``-column mesh node ``k`` sits at ``(k % width, k // width)``.

All arithmetic in this module is exact integer arithmetic; nothing here
depends on floating point, which keeps the convexity tests robust.
"""

from __future__ import annotations

import math
from typing import Iterable, NamedTuple, Sequence


class Coord(NamedTuple):
    """An (x, y) lattice coordinate with the origin at the top-left."""

    x: int
    y: int

    def __add__(self, other: "Coord") -> "Coord":  # type: ignore[override]
        return Coord(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Coord") -> "Coord":  # type: ignore[override]
        return Coord(self.x - other.x, self.y - other.y)


def node_to_coord(node: int, width: int) -> Coord:
    """Return the coordinate of a row-major node id."""
    if node < 0:
        raise ValueError(f"node id must be non-negative, got {node}")
    return Coord(node % width, node // width)


def coord_to_node(coord: Coord, width: int) -> int:
    """Return the row-major node id of a coordinate."""
    if coord.x < 0 or coord.x >= width or coord.y < 0:
        raise ValueError(f"coordinate {coord} outside a width-{width} mesh")
    return coord.y * width + coord.x


def euclidean_sq(a: Coord, b: Coord) -> int:
    """Squared Euclidean distance (exact integer)."""
    return (a.x - b.x) ** 2 + (a.y - b.y) ** 2


def euclidean(a: Coord, b: Coord) -> float:
    """Euclidean distance."""
    return math.sqrt(euclidean_sq(a, b))


def manhattan(a: Coord, b: Coord) -> int:
    """Manhattan (Hamming, in the paper's terminology) distance."""
    return abs(a.x - b.x) + abs(a.y - b.y)


def _cross(o: Coord, a: Coord, b: Coord) -> int:
    """Cross product of vectors OA and OB (z component, exact)."""
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)


def convex_hull(points: Iterable[Coord]) -> list[Coord]:
    """Convex hull via the monotone chain algorithm.

    Returns hull vertices in counter-clockwise order (in standard math
    orientation; note our y axis points down, which does not affect the
    containment tests below).  Collinear input degenerates to the two
    extreme points; a single point degenerates to itself.
    """
    pts = sorted(set(points))
    if len(pts) <= 2:
        return pts
    lower: list[Coord] = []
    for p in pts:
        while len(lower) >= 2 and _cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list[Coord] = []
    for p in reversed(pts):
        while len(upper) >= 2 and _cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    return lower[:-1] + upper[:-1]


def point_in_hull(point: Coord, hull: Sequence[Coord]) -> bool:
    """Inclusive containment test of a lattice point in a convex hull.

    ``hull`` must be the output of :func:`convex_hull` (CCW order, possibly
    degenerate).  Boundary points count as inside.
    """
    if not hull:
        return False
    if len(hull) == 1:
        return point == hull[0]
    if len(hull) == 2:
        a, b = hull
        if _cross(a, b, point) != 0:
            return False
        return (
            min(a.x, b.x) <= point.x <= max(a.x, b.x)
            and min(a.y, b.y) <= point.y <= max(a.y, b.y)
        )
    n = len(hull)
    for i in range(n):
        if _cross(hull[i], hull[(i + 1) % n], point) < 0:
            return False
    return True


def lattice_points_in_hull(hull: Sequence[Coord]) -> list[Coord]:
    """Every integer lattice point inside (or on) a convex hull."""
    if not hull:
        return []
    xmin = min(p.x for p in hull)
    xmax = max(p.x for p in hull)
    ymin = min(p.y for p in hull)
    ymax = max(p.y for p in hull)
    return [
        Coord(x, y)
        for x in range(xmin, xmax + 1)
        for y in range(ymin, ymax + 1)
        if point_in_hull(Coord(x, y), hull)
    ]


def is_discretely_convex(points: Iterable[Coord]) -> bool:
    """True if the set contains every lattice point of its convex hull.

    This is the convexity notion the paper appeals to: "the topology region
    contains all the line segments connecting any pair of nodes inside it".
    """
    pts = set(points)
    if not pts:
        return True
    hull = convex_hull(pts)
    return all(p in pts for p in lattice_points_in_hull(hull))


def is_orthogonally_convex(points: Iterable[Coord]) -> bool:
    """True if every horizontal/vertical segment between members stays inside.

    Orthogonal convexity is the property CDOR routing actually needs: if two
    active nodes share a row (column), every node between them in that row
    (column) is active, so dimension-order moves never exit the region.
    """
    pts = set(points)
    for a in pts:
        for b in pts:
            if a.y == b.y and a.x < b.x:
                if any(Coord(x, a.y) not in pts for x in range(a.x + 1, b.x)):
                    return False
            if a.x == b.x and a.y < b.y:
                if any(Coord(a.x, y) not in pts for y in range(a.y + 1, b.y)):
                    return False
    return True


def is_connected(points: Iterable[Coord]) -> bool:
    """True if the set is 4-neighbour (mesh) connected."""
    pts = set(points)
    if not pts:
        return True
    start = next(iter(pts))
    seen = {start}
    frontier = [start]
    while frontier:
        cur = frontier.pop()
        for d in (Coord(1, 0), Coord(-1, 0), Coord(0, 1), Coord(0, -1)):
            nxt = cur + d
            if nxt in pts and nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen == pts


def centroid(points: Sequence[Coord]) -> tuple[float, float]:
    """Arithmetic mean of a non-empty set of coordinates."""
    if not points:
        raise ValueError("centroid of an empty set is undefined")
    return (
        sum(p.x for p in points) / len(points),
        sum(p.y for p in points) / len(points),
    )


def average_pairwise_manhattan(points: Sequence[Coord]) -> float:
    """Mean Manhattan distance over ordered distinct pairs.

    Useful as a zero-load hop-count proxy when comparing topologies.
    """
    pts = list(points)
    if len(pts) < 2:
        return 0.0
    total = 0
    count = 0
    for i, a in enumerate(pts):
        for b in pts[i + 1 :]:
            total += manhattan(a, b)
            count += 1
    return total / count
