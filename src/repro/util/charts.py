"""Text-mode charts for experiment output.

No plotting library is available offline, so the benches and examples
render figures as Unicode bar charts and line plots.  These are honest
renderings of the same series the paper plots -- good enough to eyeball
shapes (who wins, where curves cross) straight from the terminal.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    value_format: str = "{:.2f}",
    title: str | None = None,
) -> str:
    """Horizontal bar chart, one row per labelled value."""
    if not values:
        raise ValueError("bar chart needs at least one value")
    if width < 1:
        raise ValueError("width must be positive")
    maximum = max(values.values())
    if maximum < 0:
        raise ValueError("bar charts need non-negative values")
    label_width = max(len(label) for label in values)
    lines = [] if title is None else [title]
    for label, value in values.items():
        if value < 0:
            raise ValueError("bar charts need non-negative values")
        fraction = value / maximum if maximum else 0.0
        cells = fraction * width
        full = int(cells)
        remainder = cells - full
        partial = _BLOCKS[round(remainder * (len(_BLOCKS) - 1))] if full < width else ""
        bar = "█" * full + partial
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)}| "
            + value_format.format(value)
        )
    return "\n".join(lines)


def line_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Scatter/line plot of one or more (x, y) series on a text canvas.

    Each series gets a marker from ``*+ox#@``; points falling on the same
    cell keep the first series' marker.  Axes are annotated with the data
    ranges.
    """
    if not series:
        raise ValueError("line plot needs at least one series")
    if width < 8 or height < 4:
        raise ValueError("canvas too small")
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise ValueError("line plot needs at least one point")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    markers = "*+ox#@"
    for marker, (name, pts) in zip(markers, series.items()):
        for x, y in pts:
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            col = round((x - xmin) / xspan * (width - 1))
            row = height - 1 - round((y - ymin) / yspan * (height - 1))
            if canvas[row][col] == " ":
                canvas[row][col] = marker

    lines = [] if title is None else [title]
    lines.append(f"y: {ymin:.3g} .. {ymax:.3g}")
    for row in canvas:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" x: {xmin:.3g} .. {xmax:.3g}")
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(markers, series)
    )
    lines.append(f" {legend}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line trend of a series (8-level Unicode blocks)."""
    if not values:
        raise ValueError("sparkline needs at least one value")
    levels = "▁▂▃▄▅▆▇█"
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    return "".join(
        levels[round((v - low) / span * (len(levels) - 1))] for v in values
    )
