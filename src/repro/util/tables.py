"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this module renders them as aligned monospace tables (no
plotting dependency is available offline).
"""

from __future__ import annotations

import io
from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as an aligned text table.

    Floats are formatted with ``float_format``; everything else with ``str``.
    """
    rendered: list[list[str]] = []
    for row in rows:
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    out.write(line.rstrip() + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in rendered:
        out.write("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip() + "\n")
    return out.getvalue()


def format_series(series: Mapping[str, Sequence[float]], x_name: str, x: Sequence[float]) -> str:
    """Render one or more y-series against a shared x axis as a table."""
    headers = [x_name] + list(series)
    rows = []
    for i, xv in enumerate(x):
        rows.append([xv] + [ys[i] for ys in series.values()])
    return format_table(headers, rows)


def render_heatmap(grid, value_format: str = "{:6.1f}") -> str:
    """Render a 2D array (row-major, row 0 at the top) as aligned text."""
    lines = []
    for row in grid:
        lines.append(" ".join(value_format.format(float(v)) for v in row))
    return "\n".join(lines)
