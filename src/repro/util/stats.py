"""Small statistics helpers shared by the simulator and the benches."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class RunningStats:
    """Streaming mean/variance/min/max (Welford's algorithm)."""

    count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0
    minimum: float = field(default=math.inf)
    maximum: float = field(default=-math.inf)

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("mean of an empty sample")
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance; zero for samples of size < 2."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of an empty sequence")
    return sum(values) / len(values)


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation.

    Matches numpy's default ('linear') method but works on plain lists
    without materialising an array.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def percent_change(baseline: float, value: float) -> float:
    """Signed percent change of ``value`` relative to ``baseline``.

    Negative means ``value`` is smaller (an improvement for latency/power).
    """
    if baseline == 0:
        raise ValueError("percent change relative to a zero baseline")
    return 100.0 * (value - baseline) / baseline


def percent_saving(baseline: float, value: float) -> float:
    """Percent saved relative to ``baseline`` (positive = saving)."""
    return -percent_change(baseline, value)
