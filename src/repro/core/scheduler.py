"""Multi-burst sprint scheduling.

The paper evaluates one burst at a time; real interactive workloads issue
*sequences* of computation bursts with idle gaps in between, and the PCM
budget couples them: a sprint spends thermal capacitance that only
recovers during cooldown.  This scheduler plays a burst sequence through
the :class:`~repro.core.sprinting.SprintController`, accounting for budget
depletion, mid-burst fallback to nominal execution, and inter-burst
re-solidification -- and compares total completion time across sprinting
schemes (an extension experiment; see ``bench_extension_scheduler.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cmp.perf_model import BenchmarkProfile, profile_workload
from repro.config import SystemConfig, default_config
from repro.core.sprinting import SprintController
from repro.power.chip_power import ChipPowerModel
from repro.thermal.pcm import DEFAULT_PCM, PCMParams


@dataclass(frozen=True)
class Burst:
    """One computation burst: a workload and its single-core duration."""

    workload: BenchmarkProfile
    arrival_s: float
    work_s: float  # seconds of single-core work

    def __post_init__(self) -> None:
        if self.arrival_s < 0 or self.work_s <= 0:
            raise ValueError("bursts need a non-negative arrival and positive work")


@dataclass(frozen=True)
class ScheduledSprint:
    """How one burst actually executed."""

    burst: Burst
    start_s: float
    level: int
    sprint_seconds: float  # time spent sprinting
    nominal_seconds: float  # time spent finishing at nominal speed
    end_s: float

    @property
    def completion_time_s(self) -> float:
        return self.end_s - self.burst.arrival_s

    @property
    def fell_back_to_nominal(self) -> bool:
        return self.nominal_seconds > 0


@dataclass
class ScheduleResult:
    """Outcome of playing a burst sequence."""

    scheme: str
    sprints: list[ScheduledSprint] = field(default_factory=list)

    @property
    def makespan_s(self) -> float:
        return max(s.end_s for s in self.sprints) if self.sprints else 0.0

    @property
    def total_completion_s(self) -> float:
        return sum(s.completion_time_s for s in self.sprints)

    @property
    def fallback_count(self) -> int:
        return sum(1 for s in self.sprints if s.fell_back_to_nominal)


class SprintScheduler:
    """Run burst sequences under a sprinting scheme.

    Schemes mirror :mod:`repro.core.system`: ``"non_sprinting"`` executes
    every burst on one core; ``"full_sprinting"`` sprints all 16 cores;
    ``"noc_sprinting"`` sprints each burst's optimal level.  Bursts are
    served FCFS; a burst whose sprint budget runs dry completes at nominal
    speed while the PCM starts re-solidifying.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        pcm: PCMParams = DEFAULT_PCM,
    ):
        self.config = config or default_config()
        self.pcm = pcm
        self.chip_model = ChipPowerModel(self.config.core_count)

    def _sprint_level(self, burst: Burst, scheme: str) -> int:
        if scheme == "non_sprinting":
            return 1
        if scheme == "full_sprinting":
            return self.config.core_count
        if scheme == "noc_sprinting":
            return profile_workload(burst.workload, self.config.core_count).level
        raise ValueError(f"unknown scheme {scheme!r}")

    def run(self, bursts: list[Burst], scheme: str = "noc_sprinting") -> ScheduleResult:
        """Play the bursts FCFS and report per-burst outcomes."""
        ordered = sorted(bursts, key=lambda b: b.arrival_s)
        controller = SprintController(config=self.config, pcm=self.pcm)
        result = ScheduleResult(scheme=scheme)
        now = 0.0
        for burst in ordered:
            if burst.arrival_s > now:
                controller.advance(burst.arrival_s - now)  # idle: re-solidify
                now = burst.arrival_s
            level = self._sprint_level(burst, scheme)
            if level <= 1:
                end = now + burst.work_s
                result.sprints.append(
                    ScheduledSprint(burst, now, 1, 0.0, burst.work_s, end)
                )
                now = end
                continue

            speedup = 1.0 / burst.workload.relative_time(level)
            sprint_need = burst.work_s / speedup
            power = self.chip_model.sprint_chip_power(
                level, "noc_sprinting" if scheme == "noc_sprinting" else "full"
            ).total
            sprinted = controller.drain_budget(power, sprint_need)
            done_work = sprinted * speedup
            remaining = max(0.0, burst.work_s - done_work)
            nominal = remaining  # single-core nominal finishes the rest
            if nominal > 0:
                controller.advance(nominal)  # re-solidify while limping home
            end = now + sprinted + nominal
            result.sprints.append(
                ScheduledSprint(burst, now, level, sprinted, nominal, end)
            )
            now = end
        return result

    def compare_schemes(self, bursts: list[Burst]) -> dict[str, ScheduleResult]:
        """Run the same burst sequence under all three schemes."""
        return {
            scheme: self.run(bursts, scheme)
            for scheme in ("non_sprinting", "full_sprinting", "noc_sprinting")
        }
