"""The paper's contribution: fine-grained NoC-sprinting.

- :mod:`repro.core.topological` -- Algorithm 1, irregular topological sprinting
- :mod:`repro.core.cdor` -- Algorithm 2, convex dimension-order routing
- :mod:`repro.core.deadlock` -- channel-dependency-graph deadlock checker
- :mod:`repro.core.floorplanning` -- Algorithms 3-4, thermal-aware floorplanning
- :mod:`repro.core.cdor_area` -- CDOR vs DOR gate-level area model
- :mod:`repro.core.sprinting` -- the fine-grained sprint controller
- :mod:`repro.core.gating_policy` -- sprint-aware network power gating
- :mod:`repro.core.system` -- the end-to-end NoC-sprinting system
"""

from repro.core.cdor import (
    CdorRouter,
    ConnectivityBits,
    RoutingError,
    cdor_output_port,
    dor_output_port,
)
from repro.core.cdor_area import cdor_area_overhead, router_area
from repro.core.deadlock import (
    DeadlockReport,
    channel_dependency_graph,
    check_all_sprint_levels,
    check_deadlock_freedom,
)
from repro.core.floorplanning import (
    Floorplan,
    identity_floorplan,
    thermal_aware_floorplan,
    thermal_spread,
)
from repro.core.bypass import BypassPlan, plan_bypass
from repro.core.coschedule import (
    CoScheduledSprint,
    CoScheduleError,
    co_sprint_regions,
    plan_co_sprint,
)
from repro.core.faults import (
    FaultError,
    degraded_topology,
    fault_aware_sprint_region,
    fault_aware_topology,
    link_fault_exclusions,
)
from repro.core.gating_policy import (
    SprintAwareGating,
    sprint_aware_gating,
    xy_wakeups_through_dark,
)
from repro.core.lbdr import LbdrRouter, bit_cost_comparison, derive_lbdr_bits
from repro.core.scheduler import Burst, ScheduleResult, SprintScheduler
from repro.core.sprinting import (
    RetreatPolicy,
    SprintController,
    SprintMode,
    SprintPlan,
)
from repro.core.system import (
    SCHEMES,
    EvaluationReport,
    NetworkEvaluation,
    NoCSprintingSystem,
    WorkloadEvaluation,
)
from repro.core.topological import (
    SprintTopology,
    dark_nodes,
    sprint_order,
    sprint_region,
)

__all__ = [
    "CdorRouter",
    "ConnectivityBits",
    "RoutingError",
    "cdor_output_port",
    "dor_output_port",
    "cdor_area_overhead",
    "router_area",
    "DeadlockReport",
    "channel_dependency_graph",
    "check_all_sprint_levels",
    "check_deadlock_freedom",
    "Floorplan",
    "identity_floorplan",
    "thermal_aware_floorplan",
    "thermal_spread",
    "SprintTopology",
    "dark_nodes",
    "sprint_order",
    "sprint_region",
    "SprintAwareGating",
    "sprint_aware_gating",
    "xy_wakeups_through_dark",
    "SprintController",
    "SprintMode",
    "SprintPlan",
    "SCHEMES",
    "EvaluationReport",
    "NetworkEvaluation",
    "NoCSprintingSystem",
    "WorkloadEvaluation",
    "BypassPlan",
    "plan_bypass",
    "LbdrRouter",
    "bit_cost_comparison",
    "derive_lbdr_bits",
    "Burst",
    "ScheduleResult",
    "SprintScheduler",
    "CoScheduledSprint",
    "CoScheduleError",
    "co_sprint_regions",
    "plan_co_sprint",
    "FaultError",
    "RetreatPolicy",
    "degraded_topology",
    "fault_aware_sprint_region",
    "fault_aware_topology",
    "link_fault_exclusions",
]
