"""End-to-end NoC-sprinting system evaluation.

:class:`NoCSprintingSystem` is the facade the examples and the benchmark
harness drive: given a workload profile and a sprinting scheme it produces
the execution time, core power, network latency/power (from the cycle
simulator), thermal peak and sprint duration -- i.e. one row of each of the
paper's evaluation figures.

The single entry point is :meth:`NoCSprintingSystem.evaluate`, which
returns a structured :class:`EvaluationReport`; the per-axis methods
(``speedup``, ``core_power``, ``evaluate_network``, ``peak_temperature``)
are deprecated delegates kept one release for callers that want one
number -- they warn and forward to :meth:`~NoCSprintingSystem.evaluate`.
Network
simulations are described by :class:`~repro.noc.spec.SimulationSpec`
values and executed through the sweep engine (:mod:`repro.exec`), so
repeated evaluations hit the system's result cache instead of
re-simulating.

Schemes:

- ``"non_sprinting"``  -- always one core under TDP (the naive baseline)
- ``"full_sprinting"`` -- all 16 cores, fully-powered network (Raghavan et al.)
- ``"naive_fine_grained"`` -- optimal core count but no power gating at all
- ``"noc_sprinting"``  -- the paper: optimal level, convex topology, CDOR,
  static network gating, optional thermal-aware floorplan
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass

from repro.cmp.perf_model import BenchmarkProfile, profile_workload
from repro.cmp.traffic_model import traffic_spec_for_workload
from repro.cmp.workloads import SINGLE_CORE_BURST_S, get_profile
from repro.config import SystemConfig, default_config
from repro.core.floorplanning import Floorplan, thermal_aware_floorplan
from repro.core.topological import SprintTopology
from repro.exec import ResultCache, SweepReport, SweepRunner
from repro.noc.sim import SimulationResult
from repro.noc.spec import SimulationSpec, stable_key
from repro.telemetry.ledger import Ledger, result_headline
from repro.power.activity import NetworkPowerReport, network_power
from repro.power.chip_power import ChipPowerModel, ChipPowerReport
from repro.thermal.floorplan import sprint_tile_powers
from repro.thermal.grid import ThermalGrid
from repro.thermal.pcm import DEFAULT_PCM, PCMParams
from repro.thermal.sprint_duration import useful_sprint_duration
from repro.util.rng import stream

SCHEMES = ("non_sprinting", "full_sprinting", "naive_fine_grained", "noc_sprinting")


@dataclass
class NetworkEvaluation:
    """Network-level outcome for one (workload, scheme) pair."""

    sim: SimulationResult
    power: NetworkPowerReport

    @property
    def avg_latency(self) -> float:
        return self.sim.avg_latency

    @property
    def total_power_w(self) -> float:
        return self.power.total


@dataclass
class EvaluationReport:
    """One full row of the paper's evaluation for a workload + scheme.

    Always populated: the performance and power axes.  ``network``,
    ``peak_temperature_k`` and ``sprint_duration_s`` are filled in only
    when the corresponding axis was requested from :meth:`evaluate`.
    """

    benchmark: str
    scheme: str
    level: int
    relative_time: float
    speedup: float
    core_power_w: float
    chip_power: ChipPowerReport
    network: NetworkEvaluation | None = None
    peak_temperature_k: float | None = None
    sprint_duration_s: float | None = None

    def to_wire(self) -> dict:
        """Version-tagged JSON-ready document for the service API.

        Same versioning policy as :func:`repro.noc.spec.spec_to_wire`:
        the shape is the v1 contract, so removing or renaming a field is
        a wire break.  Power breakdowns flatten to scalar watts; the
        network axis embeds :meth:`SimulationResult.to_wire`'s scalar
        body plus the power totals.
        """
        network = None
        if self.network is not None:
            network = {
                "sim": self.network.sim.to_wire()["result"],
                "power": {
                    "total_w": self.network.power.total,
                    "dynamic_w": self.network.power.dynamic,
                    "leakage_w": self.network.power.leakage,
                    "powered_router_count": self.network.power.powered_router_count,
                    "powered_link_count": self.network.power.powered_link_count,
                },
            }
        return {
            "v": 1,
            "kind": "evaluation_report",
            "report": {
                "benchmark": self.benchmark,
                "scheme": self.scheme,
                "level": self.level,
                "relative_time": self.relative_time,
                "speedup": self.speedup,
                "core_power_w": self.core_power_w,
                "chip_power": {
                    "cores": self.chip_power.cores,
                    "l2": self.chip_power.l2,
                    "memory_controllers": self.chip_power.memory_controllers,
                    "noc": self.chip_power.noc,
                    "others": self.chip_power.others,
                    "total": self.chip_power.total,
                },
                "network": network,
                "peak_temperature_k": self.peak_temperature_k,
                "sprint_duration_s": self.sprint_duration_s,
            },
        }


#: Back-compat alias; ``EvaluationReport`` is the current name.
WorkloadEvaluation = EvaluationReport


def _warn_deprecated(name: str, field: str) -> None:
    warnings.warn(
        f"NoCSprintingSystem.{name}() is deprecated; call evaluate() and "
        f"read {field} off the EvaluationReport",
        DeprecationWarning,
        stacklevel=3,
    )


class NoCSprintingSystem:
    """The reproduced system: all four sprinting schemes over one CMP.

    ``cache`` (a :class:`~repro.exec.ResultCache`) stores every network
    simulation result keyed on its spec's content hash; pass a shared
    cache to reuse results across system instances or give it a directory
    for cross-process persistence.  ``workers`` sets the process fan-out
    for :meth:`sweep` batches (single evaluations always run in-process).
    ``backend`` names the registered simulation engine every induced
    :class:`~repro.noc.spec.SimulationSpec` carries (see
    :mod:`repro.noc.backends`); non-default backends key the cache
    separately.  ``backend="auto"`` defers to the registry, which picks
    the fastest engine covering each spec's requirements.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        pcm: PCMParams = DEFAULT_PCM,
        use_floorplan: bool = False,
        seed: int = 0,
        cache: ResultCache | None = None,
        workers: int = 1,
        backend: str = "reference",
        ledger: Ledger | None = None,
    ):
        self.config = config or default_config()
        self.pcm = pcm
        self.seed = seed
        self.cache = cache if cache is not None else ResultCache()
        self.workers = workers
        self.backend = backend
        # run history: evaluate() and sweep() append RunRecords here
        # (None: the env-configured default; Ledger.disabled() opts out)
        self.ledger = ledger if ledger is not None else Ledger()
        self.chip_model = ChipPowerModel(self.config.core_count)
        self.floorplan: Floorplan | None = (
            thermal_aware_floorplan(
                self.config.noc.mesh_width,
                self.config.noc.mesh_height,
                self.config.master_node,
            )
            if use_floorplan
            else None
        )
        self._full_topology = SprintTopology.for_level(
            self.config.noc.mesh_width,
            self.config.noc.mesh_height,
            self.config.core_count,
            self.config.master_node,
        )
        self.thermal_grid = ThermalGrid(
            self.config.noc.mesh_width, self.config.noc.mesh_height
        )

    # ------------------------------------------------------------------
    def _resolve(self, workload: str | BenchmarkProfile) -> BenchmarkProfile:
        if isinstance(workload, str):
            return get_profile(workload)
        return workload

    def scheme_level(self, profile: BenchmarkProfile, scheme: str) -> int:
        """Active core count under a scheme."""
        if scheme == "non_sprinting":
            return 1
        if scheme == "full_sprinting":
            return self.config.core_count
        if scheme in ("naive_fine_grained", "noc_sprinting"):
            return profile_workload(profile, self.config.core_count).level
        raise ValueError(f"unknown scheme {scheme!r}; options: {SCHEMES}")

    def topology_for(self, profile: BenchmarkProfile, scheme: str) -> SprintTopology:
        """The powered network under a scheme.

        Only NoC-sprinting powers a sub-region; every other scheme keeps
        the whole mesh on (a dark router would block forwarding).
        """
        if scheme == "noc_sprinting":
            level = self.scheme_level(profile, scheme)
            return SprintTopology.for_level(
                self.config.noc.mesh_width,
                self.config.noc.mesh_height,
                level,
                self.config.master_node,
            )
        return self._full_topology

    # ------------------------------------------------------------------
    # the unified entry point
    # ------------------------------------------------------------------
    def evaluate(
        self,
        workload: str | BenchmarkProfile,
        scheme: str,
        simulate_network: bool = False,
        thermal: bool = False,
        *,
        seed: int | None = None,
        warmup_cycles: int = 500,
        measure_cycles: int = 2000,
        floorplanned: bool | None = None,
    ) -> EvaluationReport:
        """Evaluate one (workload, scheme) pair across every requested axis.

        The performance and power axes are always computed; pass
        ``simulate_network=True`` for the cycle-simulated network axis
        (served from the result cache when the identical spec has already
        run) and ``thermal=True`` for the steady-state hotspot.
        ``floorplanned`` defaults to whether the system was built with a
        thermal-aware floorplan.
        """
        start = time.perf_counter()
        cpu_start = time.process_time()
        profile = self._resolve(workload)
        level = self.scheme_level(profile, scheme)
        spec = None
        network = None
        if simulate_network:
            spec, network = self._network_evaluation(
                profile, scheme, seed, warmup_cycles, measure_cycles
            )
        if floorplanned is None:
            floorplanned = self.floorplan is not None
        peak = (
            self._peak_temperature(profile, scheme, floorplanned) if thermal else None
        )
        duration = (
            self.sprint_duration_gain(profile) if scheme == "noc_sprinting" else None
        )
        relative_time = profile.relative_time(level)
        report = EvaluationReport(
            benchmark=profile.name,
            scheme=scheme,
            level=level,
            relative_time=relative_time,
            speedup=1.0 / relative_time,
            core_power_w=self._core_power(level, scheme),
            chip_power=self._chip_power(level, scheme),
            network=network,
            peak_temperature_k=peak,
            sprint_duration_s=duration,
        )
        self._record_evaluation(
            report, spec,
            wall_s=time.perf_counter() - start,
            cpu_s=time.process_time() - cpu_start,
        )
        return report

    def _record_evaluation(self, report: EvaluationReport,
                           spec: SimulationSpec | None,
                           wall_s: float, cpu_s: float) -> None:
        """Append one ``evaluate`` RunRecord to the ledger (best-effort)."""
        if not self.ledger.enabled:
            return
        headline = {
            "speedup": report.speedup,
            "core_power_w": report.core_power_w,
            "chip_power_w": report.chip_power.total,
        }
        if report.network is not None:
            headline["avg_latency"] = report.network.avg_latency
            headline["network_power_w"] = report.network.total_power_w
        if report.peak_temperature_k is not None:
            headline["peak_temperature_k"] = report.peak_temperature_k
        if report.sprint_duration_s is not None:
            headline["sprint_duration_s"] = report.sprint_duration_s
        points: dict[str, dict] = {}
        keys: tuple[str, ...] = ()
        if spec is not None and report.network is not None:
            key = spec.cache_key()
            keys = (key,)
            points[key] = result_headline(report.network.sim)
        self.ledger.record(
            "evaluate",
            label=f"{report.benchmark}/{report.scheme}",
            backend=self.backend,
            spec_keys=keys,
            wall_s=wall_s,
            cpu_s=cpu_s,
            points=points,
            headline=headline,
            fingerprint=stable_key(
                (report.benchmark, report.scheme, self.backend)
            ),
        )

    # ------------------------------------------------------------------
    # performance (Figure 7) -- delegates
    # ------------------------------------------------------------------
    def execution_time(self, workload: str | BenchmarkProfile, scheme: str) -> float:
        """Deprecated: use :meth:`evaluate` and read ``relative_time``."""
        _warn_deprecated("execution_time", "relative_time")
        return self.evaluate(workload, scheme).relative_time

    def speedup(self, workload: str | BenchmarkProfile, scheme: str) -> float:
        """Deprecated: use :meth:`evaluate` and read ``speedup``."""
        _warn_deprecated("speedup", "speedup")
        return self.evaluate(workload, scheme).speedup

    # ------------------------------------------------------------------
    # power (Figures 8 and 10) -- delegates over private helpers
    # ------------------------------------------------------------------
    def _core_power(self, level: int, scheme: str) -> float:
        policy = "idle" if scheme == "naive_fine_grained" else "gated"
        return self.chip_model.core_power(level, policy)

    def _chip_power(self, level: int, scheme: str) -> ChipPowerReport:
        if scheme == "non_sprinting":
            return self.chip_model.nominal_breakdown()
        mapping = {
            "full_sprinting": "full",
            "naive_fine_grained": "naive",
            "noc_sprinting": "noc_sprinting",
        }
        return self.chip_model.sprint_chip_power(level, mapping[scheme])

    def core_power(self, workload: str | BenchmarkProfile, scheme: str) -> float:
        """Deprecated: use :meth:`evaluate` and read ``core_power_w``."""
        _warn_deprecated("core_power", "core_power_w")
        return self.evaluate(workload, scheme).core_power_w

    def chip_power(self, workload: str | BenchmarkProfile, scheme: str) -> ChipPowerReport:
        """Deprecated: use :meth:`evaluate` and read ``chip_power``."""
        _warn_deprecated("chip_power", "chip_power")
        return self.evaluate(workload, scheme).chip_power

    # ------------------------------------------------------------------
    # network (Figures 9, 10, 11)
    # ------------------------------------------------------------------
    def simulation_spec(
        self,
        workload: str | BenchmarkProfile,
        scheme: str,
        seed: int | None = None,
        warmup_cycles: int = 500,
        measure_cycles: int = 2000,
        drain_cycles: int = 30000,
    ) -> SimulationSpec:
        """The :class:`SimulationSpec` a (workload, scheme) pair induces.

        Under NoC-sprinting the endpoints are the convex region and routing
        is CDOR; under every other scheme the workload's active cores all
        sit on the fully-powered mesh with XY routing.  The spec is a pure
        value: hand batches of them to :meth:`sweep` or a
        :class:`~repro.exec.SweepRunner` for parallel, cached execution.
        """
        profile = self._resolve(workload)
        topology = self.topology_for(profile, scheme)
        routing = "cdor" if scheme == "noc_sprinting" else "xy"
        use_seed = self.seed if seed is None else seed
        endpoints = None
        if scheme == "non_sprinting":
            endpoints = [self.config.master_node]
        elif scheme == "naive_fine_grained":
            # the naive scheme picks the right core count but is oblivious
            # to placement: the active cores land anywhere on the full mesh
            level = self.scheme_level(profile, scheme)
            endpoints = stream(use_seed, "naive-mapping").sample(
                range(self.config.core_count), level
            )
        traffic = traffic_spec_for_workload(
            profile,
            topology,
            self.config.noc,
            seed=use_seed,
            endpoints=endpoints,
        )
        return SimulationSpec(
            topology=topology,
            traffic=traffic,
            config=self.config.noc,
            routing=routing,
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
            drain_cycles=drain_cycles,
            backend=self.backend,
        )

    def sweep(self, specs) -> SweepReport:
        """Run a batch of specs through the cached sweep engine."""
        return SweepRunner(
            workers=self.workers, cache=self.cache, ledger=self.ledger
        ).run(specs)

    def network_evaluation_for(
        self, spec: SimulationSpec, sim: SimulationResult, scheme: str
    ) -> NetworkEvaluation:
        """Attach the power model to a simulated spec."""
        floorplan = self.floorplan if scheme == "noc_sprinting" else None
        power = network_power(sim, spec.topology, spec.config, floorplan=floorplan)
        return NetworkEvaluation(sim=sim, power=power)

    def _network_evaluation(
        self,
        profile: BenchmarkProfile,
        scheme: str,
        seed: int | None,
        warmup_cycles: int,
        measure_cycles: int,
    ) -> tuple[SimulationSpec, NetworkEvaluation]:
        spec = self.simulation_spec(
            profile,
            scheme,
            seed=seed,
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
        )
        # the nested runner's ledger is disabled: evaluate() records the
        # enclosing run itself, so the point is never double-counted
        runner = SweepRunner(
            workers=self.workers, cache=self.cache, ledger=Ledger.disabled()
        )
        sim = runner.run([spec]).results[0]
        return spec, self.network_evaluation_for(spec, sim, scheme)

    def evaluate_network(
        self,
        workload: str | BenchmarkProfile,
        scheme: str,
        seed: int | None = None,
        warmup_cycles: int = 500,
        measure_cycles: int = 2000,
    ) -> NetworkEvaluation:
        """Deprecated: use :meth:`evaluate` with ``simulate_network=True``."""
        _warn_deprecated("evaluate_network", "network")
        report = self.evaluate(
            workload,
            scheme,
            simulate_network=True,
            seed=seed,
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
        )
        assert report.network is not None
        return report.network

    # ------------------------------------------------------------------
    # thermal (Figure 12 / Section 4.4)
    # ------------------------------------------------------------------
    def _peak_temperature(
        self, profile: BenchmarkProfile, scheme: str, floorplanned: bool
    ) -> float:
        level = self.scheme_level(profile, scheme)
        if scheme == "noc_sprinting":
            topology = SprintTopology.for_level(
                self.config.noc.mesh_width,
                self.config.noc.mesh_height,
                level,
                self.config.master_node,
            )
            floorplan = (
                self.floorplan
                or thermal_aware_floorplan(
                    self.config.noc.mesh_width,
                    self.config.noc.mesh_height,
                    self.config.master_node,
                )
            ) if floorplanned else None
            tiles = sprint_tile_powers(topology, self.chip_model, floorplan)
        else:
            tiles = sprint_tile_powers(self._full_topology, self.chip_model)
        return self.thermal_grid.peak_temperature(tiles)

    def peak_temperature(
        self, workload: str | BenchmarkProfile, scheme: str, floorplanned: bool = False
    ) -> float:
        """Deprecated: use :meth:`evaluate` with ``thermal=True``."""
        _warn_deprecated("peak_temperature", "peak_temperature_k")
        report = self.evaluate(workload, scheme, thermal=True, floorplanned=floorplanned)
        assert report.peak_temperature_k is not None
        return report.peak_temperature_k

    def sprint_duration_gain(self, workload: str | BenchmarkProfile) -> float:
        """Useful sprint duration, NoC-sprinting over full-sprinting.

        A level-1 optimum means the chip never leaves nominal operation, so
        there is no sprint to extend (gain 1.0).  Gains are clamped at 1.0:
        finishing the burst early is a win, not a shorter sprint.
        """
        profile = self._resolve(workload)
        level = self.scheme_level(profile, "noc_sprinting")
        if level in (1, self.config.core_count):
            return 1.0
        noc_power = self.chip_model.sprint_chip_power(level, "noc_sprinting").total
        full_power = self.chip_model.sprint_chip_power(level, "full").total
        noc_burst = SINGLE_CORE_BURST_S * profile.relative_time(level)
        full_burst = SINGLE_CORE_BURST_S * profile.relative_time(self.config.core_count)
        noc = useful_sprint_duration(noc_power, noc_burst, self.pcm)
        full = useful_sprint_duration(full_power, full_burst, self.pcm)
        return max(1.0, noc.useful_duration_s / full.useful_duration_s)
