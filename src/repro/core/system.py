"""End-to-end NoC-sprinting system evaluation.

:class:`NoCSprintingSystem` is the facade the examples and the benchmark
harness drive: given a workload profile and a sprinting scheme it produces
the execution time, core power, network latency/power (from the cycle
simulator), thermal peak and sprint duration -- i.e. one row of each of the
paper's evaluation figures.

Schemes:

- ``"non_sprinting"``  -- always one core under TDP (the naive baseline)
- ``"full_sprinting"`` -- all 16 cores, fully-powered network (Raghavan et al.)
- ``"naive_fine_grained"`` -- optimal core count but no power gating at all
- ``"noc_sprinting"``  -- the paper: optimal level, convex topology, CDOR,
  static network gating, optional thermal-aware floorplan
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cmp.perf_model import BenchmarkProfile, profile_workload
from repro.cmp.traffic_model import traffic_for_workload
from repro.cmp.workloads import SINGLE_CORE_BURST_S, get_profile
from repro.config import SystemConfig, default_config
from repro.core.floorplanning import Floorplan, thermal_aware_floorplan
from repro.core.topological import SprintTopology
from repro.noc.sim import SimulationResult, run_simulation
from repro.power.activity import NetworkPowerReport, network_power
from repro.power.chip_power import ChipPowerModel, ChipPowerReport
from repro.thermal.floorplan import sprint_tile_powers
from repro.thermal.grid import ThermalGrid
from repro.thermal.pcm import DEFAULT_PCM, PCMParams
from repro.thermal.sprint_duration import useful_sprint_duration
from repro.util.rng import stream

SCHEMES = ("non_sprinting", "full_sprinting", "naive_fine_grained", "noc_sprinting")


@dataclass
class NetworkEvaluation:
    """Network-level outcome for one (workload, scheme) pair."""

    sim: SimulationResult
    power: NetworkPowerReport

    @property
    def avg_latency(self) -> float:
        return self.sim.avg_latency

    @property
    def total_power_w(self) -> float:
        return self.power.total


@dataclass
class WorkloadEvaluation:
    """One full row of the paper's evaluation for a workload + scheme."""

    benchmark: str
    scheme: str
    level: int
    relative_time: float
    speedup: float
    core_power_w: float
    chip_power: ChipPowerReport
    network: NetworkEvaluation | None = None
    peak_temperature_k: float | None = None
    sprint_duration_s: float | None = None


class NoCSprintingSystem:
    """The reproduced system: all four sprinting schemes over one CMP."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        pcm: PCMParams = DEFAULT_PCM,
        use_floorplan: bool = False,
        seed: int = 0,
    ):
        self.config = config or default_config()
        self.pcm = pcm
        self.seed = seed
        self.chip_model = ChipPowerModel(self.config.core_count)
        self.floorplan: Floorplan | None = (
            thermal_aware_floorplan(
                self.config.noc.mesh_width,
                self.config.noc.mesh_height,
                self.config.master_node,
            )
            if use_floorplan
            else None
        )
        self._full_topology = SprintTopology.for_level(
            self.config.noc.mesh_width,
            self.config.noc.mesh_height,
            self.config.core_count,
            self.config.master_node,
        )
        self.thermal_grid = ThermalGrid(
            self.config.noc.mesh_width, self.config.noc.mesh_height
        )

    # ------------------------------------------------------------------
    def _resolve(self, workload: str | BenchmarkProfile) -> BenchmarkProfile:
        if isinstance(workload, str):
            return get_profile(workload)
        return workload

    def scheme_level(self, profile: BenchmarkProfile, scheme: str) -> int:
        """Active core count under a scheme."""
        if scheme == "non_sprinting":
            return 1
        if scheme == "full_sprinting":
            return self.config.core_count
        if scheme in ("naive_fine_grained", "noc_sprinting"):
            return profile_workload(profile, self.config.core_count).level
        raise ValueError(f"unknown scheme {scheme!r}; options: {SCHEMES}")

    def topology_for(self, profile: BenchmarkProfile, scheme: str) -> SprintTopology:
        """The powered network under a scheme.

        Only NoC-sprinting powers a sub-region; every other scheme keeps
        the whole mesh on (a dark router would block forwarding).
        """
        if scheme == "noc_sprinting":
            level = self.scheme_level(profile, scheme)
            return SprintTopology.for_level(
                self.config.noc.mesh_width,
                self.config.noc.mesh_height,
                level,
                self.config.master_node,
            )
        return self._full_topology

    # ------------------------------------------------------------------
    # performance (Figure 7)
    # ------------------------------------------------------------------
    def execution_time(self, workload: str | BenchmarkProfile, scheme: str) -> float:
        """Relative execution time (single-core nominal = 1.0)."""
        profile = self._resolve(workload)
        return profile.relative_time(self.scheme_level(profile, scheme))

    def speedup(self, workload: str | BenchmarkProfile, scheme: str) -> float:
        return 1.0 / self.execution_time(workload, scheme)

    # ------------------------------------------------------------------
    # power (Figures 8 and 10)
    # ------------------------------------------------------------------
    def core_power(self, workload: str | BenchmarkProfile, scheme: str) -> float:
        """Total core power while executing under a scheme (Figure 8)."""
        profile = self._resolve(workload)
        level = self.scheme_level(profile, scheme)
        policy = "idle" if scheme == "naive_fine_grained" else "gated"
        return self.chip_model.core_power(level, policy)

    def chip_power(self, workload: str | BenchmarkProfile, scheme: str) -> ChipPowerReport:
        profile = self._resolve(workload)
        level = self.scheme_level(profile, scheme)
        if scheme == "non_sprinting":
            return self.chip_model.nominal_breakdown()
        mapping = {
            "full_sprinting": "full",
            "naive_fine_grained": "naive",
            "noc_sprinting": "noc_sprinting",
        }
        return self.chip_model.sprint_chip_power(level, mapping[scheme])

    # ------------------------------------------------------------------
    # network (Figures 9, 10, 11)
    # ------------------------------------------------------------------
    def evaluate_network(
        self,
        workload: str | BenchmarkProfile,
        scheme: str,
        seed: int | None = None,
        warmup_cycles: int = 500,
        measure_cycles: int = 2000,
    ) -> NetworkEvaluation:
        """Run the cycle simulator with the workload's traffic.

        Under NoC-sprinting the endpoints are the convex region and routing
        is CDOR; under every other scheme the workload's active cores all
        sit on the fully-powered mesh with XY routing.
        """
        profile = self._resolve(workload)
        topology = self.topology_for(profile, scheme)
        routing = "cdor" if scheme == "noc_sprinting" else "xy"
        use_seed = self.seed if seed is None else seed
        endpoints = None
        if scheme == "non_sprinting":
            endpoints = [self.config.master_node]
        elif scheme == "naive_fine_grained":
            # the naive scheme picks the right core count but is oblivious
            # to placement: the active cores land anywhere on the full mesh
            level = self.scheme_level(profile, scheme)
            endpoints = stream(use_seed, "naive-mapping").sample(
                range(self.config.core_count), level
            )
        traffic = traffic_for_workload(
            profile,
            topology,
            self.config.noc,
            seed=use_seed,
            endpoints=endpoints,
        )
        sim = run_simulation(
            topology,
            traffic,
            self.config.noc,
            routing=routing,
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
        )
        floorplan = self.floorplan if scheme == "noc_sprinting" else None
        power = network_power(sim, topology, self.config.noc, floorplan=floorplan)
        return NetworkEvaluation(sim=sim, power=power)

    # ------------------------------------------------------------------
    # thermal (Figure 12 / Section 4.4)
    # ------------------------------------------------------------------
    def peak_temperature(
        self, workload: str | BenchmarkProfile, scheme: str, floorplanned: bool = False
    ) -> float:
        """Steady-state hotspot temperature while sprinting (Figure 12)."""
        profile = self._resolve(workload)
        level = self.scheme_level(profile, scheme)
        if scheme == "noc_sprinting":
            topology = SprintTopology.for_level(
                self.config.noc.mesh_width,
                self.config.noc.mesh_height,
                level,
                self.config.master_node,
            )
            floorplan = (
                self.floorplan
                or thermal_aware_floorplan(
                    self.config.noc.mesh_width,
                    self.config.noc.mesh_height,
                    self.config.master_node,
                )
            ) if floorplanned else None
            tiles = sprint_tile_powers(topology, self.chip_model, floorplan)
        else:
            tiles = sprint_tile_powers(self._full_topology, self.chip_model)
        return self.thermal_grid.peak_temperature(tiles)

    def sprint_duration_gain(self, workload: str | BenchmarkProfile) -> float:
        """Useful sprint duration, NoC-sprinting over full-sprinting.

        A level-1 optimum means the chip never leaves nominal operation, so
        there is no sprint to extend (gain 1.0).  Gains are clamped at 1.0:
        finishing the burst early is a win, not a shorter sprint.
        """
        profile = self._resolve(workload)
        level = self.scheme_level(profile, "noc_sprinting")
        if level in (1, self.config.core_count):
            return 1.0
        noc_power = self.chip_model.sprint_chip_power(level, "noc_sprinting").total
        full_power = self.chip_model.sprint_chip_power(level, "full").total
        noc_burst = SINGLE_CORE_BURST_S * profile.relative_time(level)
        full_burst = SINGLE_CORE_BURST_S * profile.relative_time(self.config.core_count)
        noc = useful_sprint_duration(noc_power, noc_burst, self.pcm)
        full = useful_sprint_duration(full_power, full_burst, self.pcm)
        return max(1.0, noc.useful_duration_s / full.useful_duration_s)

    # ------------------------------------------------------------------
    # the full row
    # ------------------------------------------------------------------
    def evaluate(
        self,
        workload: str | BenchmarkProfile,
        scheme: str,
        simulate_network: bool = False,
        thermal: bool = False,
    ) -> WorkloadEvaluation:
        """Evaluate one (workload, scheme) pair across every axis."""
        profile = self._resolve(workload)
        level = self.scheme_level(profile, scheme)
        network = (
            self.evaluate_network(profile, scheme) if simulate_network else None
        )
        peak = (
            self.peak_temperature(profile, scheme, floorplanned=self.floorplan is not None)
            if thermal
            else None
        )
        duration = (
            self.sprint_duration_gain(profile) if scheme == "noc_sprinting" else None
        )
        return WorkloadEvaluation(
            benchmark=profile.name,
            scheme=scheme,
            level=level,
            relative_time=self.execution_time(profile, scheme),
            speedup=self.speedup(profile, scheme),
            core_power_w=self.core_power(profile, scheme),
            chip_power=self.chip_power(profile, scheme),
            network=network,
            peak_temperature_k=peak,
            sprint_duration_s=duration,
        )
