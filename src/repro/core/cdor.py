"""Algorithm 2: convex dimension-order routing (CDOR).

CDOR extends X-Y dimension-order routing to the irregular-but-convex
regions produced by topological sprinting (Algorithm 1).  Each router keeps
two connectivity bits, ``Cw`` and ``Ce``, saying whether its western/eastern
neighbour is part of the active region.  A packet normally travels X-first
as in conventional DOR; when the X-direction port it wants is disconnected
(the neighbour is dark), it detours in Y *towards the destination* and
retries X on the new row.  Convexity of the region guarantees the detour
makes progress and, as the paper argues, that the extra NE/SE turns cannot
close a channel-dependency cycle (the WN/ WS turns that would complete the
cycle are impossible exactly where the NE/SE turns occur).

The routing function is purely combinational per hop -- the hardware cost
is two comparators plus a few gates per port (see :mod:`repro.core.cdor_area`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.topological import SprintTopology
from repro.util.directions import Direction
from repro.util.geometry import Coord


class RoutingError(Exception):
    """The destination cannot be reached inside the active region."""


@dataclass(frozen=True)
class ConnectivityBits:
    """The per-router CDOR state: west/east connectivity.

    North/south bits are carried too because the simulator uses them to know
    which links are powered, but the routing decision of Algorithm 2 only
    consults ``cw`` and ``ce``.
    """

    cw: bool
    ce: bool
    cn: bool = True
    cs: bool = True

    @classmethod
    def from_topology(cls, topology: SprintTopology, node: int) -> "ConnectivityBits":
        bits = topology.connectivity_bits(node)
        return cls(
            cw=bits[Direction.WEST],
            ce=bits[Direction.EAST],
            cn=bits[Direction.NORTH],
            cs=bits[Direction.SOUTH],
        )


def cdor_output_port(
    current: Coord,
    destination: Coord,
    bits: ConnectivityBits,
) -> Direction:
    """One CDOR routing decision (Algorithm 2).

    Returns the output port for a packet at ``current`` headed to
    ``destination`` given the router's connectivity bits.  Raises
    :class:`RoutingError` when the decision is impossible, which cannot
    happen inside an orthogonally convex region.
    """
    dx = destination.x - current.x
    dy = destination.y - current.y
    if dx == 0 and dy == 0:
        return Direction.LOCAL
    if dx > 0:
        if bits.ce:
            return Direction.EAST
        if dy > 0:
            return Direction.SOUTH
        if dy < 0:
            return Direction.NORTH
        raise RoutingError(
            f"destination {destination} due east of {current} but the east "
            "port is disconnected; the active region is not convex"
        )
    if dx < 0:
        if bits.cw:
            return Direction.WEST
        if dy > 0:
            return Direction.SOUTH
        if dy < 0:
            return Direction.NORTH
        raise RoutingError(
            f"destination {destination} due west of {current} but the west "
            "port is disconnected; the active region is not convex"
        )
    return Direction.SOUTH if dy > 0 else Direction.NORTH


def dor_output_port(current: Coord, destination: Coord) -> Direction:
    """Conventional X-Y dimension-order routing (the baseline CDOR extends)."""
    if destination.x > current.x:
        return Direction.EAST
    if destination.x < current.x:
        return Direction.WEST
    if destination.y > current.y:
        return Direction.SOUTH
    if destination.y < current.y:
        return Direction.NORTH
    return Direction.LOCAL


class CdorRouter:
    """CDOR route computation over a sprint topology.

    Precomputes the connectivity bits of every active router and exposes
    per-hop decisions plus full-path walking (used by the deadlock checker
    and the tests; the cycle-level simulator makes the same per-hop calls).
    """

    def __init__(self, topology: SprintTopology):
        self._topology = topology
        self._bits = {
            node: ConnectivityBits.from_topology(topology, node)
            for node in topology.active_nodes
        }

    @property
    def topology(self) -> SprintTopology:
        return self._topology

    def bits(self, node: int) -> ConnectivityBits:
        try:
            return self._bits[node]
        except KeyError:
            raise RoutingError(f"router {node} is power-gated") from None

    def next_port(self, current: int, destination: int) -> Direction:
        """The output port chosen at ``current`` for ``destination``."""
        topo = self._topology
        if not topo.is_active(destination):
            raise RoutingError(f"destination {destination} is power-gated")
        return cdor_output_port(
            topo.coord(current), topo.coord(destination), self.bits(current)
        )

    def walk(self, source: int, destination: int) -> list[int]:
        """The full router path from source to destination (inclusive).

        Raises :class:`RoutingError` if the path would enter a dark router
        or fails to terminate within ``width * height`` hops (livelock).
        """
        topo = self._topology
        if not topo.is_active(source):
            raise RoutingError(f"source {source} is power-gated")
        path = [source]
        current = source
        max_hops = topo.width * topo.height + 1
        while current != destination:
            port = self.next_port(current, destination)
            nxt = topo.neighbor(current, port)
            if nxt is None or not topo.is_active(nxt):
                raise RoutingError(
                    f"CDOR would forward through dark/absent router {nxt} "
                    f"(from {current} via {port.value})"
                )
            path.append(nxt)
            current = nxt
            if len(path) > max_hops:
                raise RoutingError(
                    f"CDOR livelock routing {source} -> {destination}"
                )
        return path

    def hop_count(self, source: int, destination: int) -> int:
        return len(self.walk(source, destination)) - 1

    def turns(self, source: int, destination: int) -> list[tuple[int, Direction, Direction]]:
        """The (node, in-direction, out-direction) turns along a path."""
        path = self.walk(source, destination)
        result = []
        for i in range(1, len(path) - 1):
            prev_c = self._topology.coord(path[i - 1])
            cur_c = self._topology.coord(path[i])
            nxt_c = self._topology.coord(path[i + 1])
            d_in = _direction_of(prev_c, cur_c)
            d_out = _direction_of(cur_c, nxt_c)
            if d_in != d_out:
                result.append((path[i], d_in, d_out))
        return result


def _direction_of(a: Coord, b: Coord) -> Direction:
    """The mesh direction of a single hop from a to b."""
    delta = b - a
    for direction in Direction:
        if direction.offset == delta and direction is not Direction.LOCAL:
            return direction
    raise ValueError(f"{a} -> {b} is not a single mesh hop")
