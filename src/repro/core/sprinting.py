"""The fine-grained sprint controller.

Ties the paper's pieces into the run-time mechanism of Section 3.1: when a
computation burst arrives, the controller picks the workload's optimal
sprint level (from off-line profiling), activates the convex Algorithm-1
region of cores/routers, and tracks the thermal budget of the phase-change
heat sink; when the budget is exhausted -- or the burst completes -- the
chip falls back to single-core nominal operation and the PCM re-solidifies
during cooldown.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

from repro.cmp.perf_model import BenchmarkProfile, profile_workload
from repro.config import SystemConfig, default_config
from repro.core.floorplanning import Floorplan
from repro.core.topological import SprintTopology
from repro.noc.power_gating import StaticGatingPlan, static_plan_for_topology
from repro.power.chip_power import ChipPowerModel
from repro.telemetry import Telemetry
from repro.telemetry import active as _active_telemetry
from repro.thermal.pcm import DEFAULT_PCM, PCMParams


class SprintMode(Enum):
    """Chip operating mode."""

    NOMINAL = "nominal"  # single master core under TDP
    SPRINTING = "sprinting"  # a sprint region is active
    COOLDOWN = "cooldown"  # PCM re-solidifying, sprinting unavailable


@dataclass(frozen=True)
class RetreatPolicy:
    """Staged degradation of an active sprint.

    Instead of the all-or-nothing abort when the PCM budget empties, the
    controller steps the sprint level down as the budget drains: each time
    the thermal headroom falls through a threshold the level halves, and
    when the budget is fully exhausted the sprint retreats to the largest
    *thermally sustainable* level (power under the sustainable TDP) and
    holds it indefinitely, rather than dropping straight to nominal.
    """

    thresholds: tuple[float, ...] = (0.5, 0.25, 0.1)

    def __post_init__(self) -> None:
        if any(not 0.0 < t < 1.0 for t in self.thresholds):
            raise ValueError("retreat thresholds must be headroom fractions in (0, 1)")
        if tuple(sorted(self.thresholds, reverse=True)) != tuple(self.thresholds):
            raise ValueError("retreat thresholds must be strictly descending")


@dataclass(frozen=True)
class SprintPlan:
    """Everything needed to execute one fine-grained sprint."""

    level: int
    topology: SprintTopology
    gating: StaticGatingPlan
    sprint_power_w: float
    expected_speedup: float

    @property
    def active_cores(self) -> tuple[int, ...]:
        return self.topology.active_nodes


@dataclass
class SprintController:
    """Plans and executes fine-grained sprints on one CMP.

    The controller is deliberately simple: parallelism prediction is out of
    the paper's scope (it assumes profiles are "learnt in advance or
    monitored during run-time"), so planning consumes a
    :class:`BenchmarkProfile` directly.
    """

    config: SystemConfig = field(default_factory=default_config)
    pcm: PCMParams = DEFAULT_PCM
    metric: str = "euclidean"
    floorplan: Floorplan | None = None
    retreat: RetreatPolicy | None = None
    faulty: frozenset[int] = frozenset()
    telemetry: Telemetry | None = None

    def __post_init__(self) -> None:
        self.chip_model = ChipPowerModel(self.config.core_count)
        self.mode = SprintMode.NOMINAL
        self.plan_active: SprintPlan | None = None
        total_budget = self.pcm.latent_energy_j + (
            self.pcm.sensible_capacitance_j_per_k
            * (self.pcm.max_temperature_k - self.pcm.start_temperature_k)
        )
        self._budget_total_j = total_budget
        self._budget_j = total_budget
        self._profile_active: BenchmarkProfile | None = None
        self._stage_index = 0
        self._sprint_time_s = 0.0
        self.retreat_log: list[tuple[float, int, int]] = []

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, profile: BenchmarkProfile) -> SprintPlan:
        """Choose the sprint level and build the topology for a workload."""
        decision = profile_workload(profile, self.config.core_count)
        return self._plan_for_level(
            decision.level, profile, speedup=decision.speedup_vs_nominal
        )

    def _plan_for_level(
        self,
        level: int,
        profile: BenchmarkProfile | None,
        speedup: float | None = None,
    ) -> SprintPlan:
        """Build the plan for a level, growing around known hard faults.

        With faults the actual level can come out below the requested one
        (the region degrades gracefully towards the master).
        """
        width = self.config.noc.mesh_width
        height = self.config.noc.mesh_height
        if self.faulty:
            from repro.core.faults import degraded_topology

            topology = degraded_topology(
                width, height, level, self.faulty, self.config.master_node, self.metric
            )
        else:
            topology = SprintTopology.for_level(
                width, height, level, self.config.master_node, self.metric
            )
        actual = topology.level
        power = self.chip_model.sprint_chip_power(actual, "noc_sprinting")
        if speedup is None or actual != level:
            if profile is None:
                speedup = 1.0
            else:
                # a degraded level (e.g. 7 around a fault) falls between the
                # profiled scaling points; be conservative and credit the
                # speedup of the largest profiled level that fits
                profiled = max(
                    (lv for lv in profile.scaling if lv <= actual), default=1
                )
                speedup = profile.speedup(profiled)
        return SprintPlan(
            level=actual,
            topology=topology,
            gating=static_plan_for_topology(topology),
            sprint_power_w=power.total,
            expected_speedup=speedup,
        )

    def sustainable_level(self) -> int | None:
        """The largest sprint level whose power fits under the sustainable
        TDP (None when even nominal operation exceeds it)."""
        best = None
        for level in range(1, self.config.core_count + 1):
            power = self.chip_model.sprint_chip_power(level, "noc_sprinting").total
            if power <= self.pcm.sustainable_power_w:
                best = level
        return best

    # ------------------------------------------------------------------
    # thermal-budget state machine
    # ------------------------------------------------------------------
    @property
    def thermal_headroom(self) -> float:
        """Remaining fraction of the PCM thermal budget (0..1)."""
        return self._budget_j / self._budget_total_j

    def _emit(self, name: str, **attrs) -> None:
        """One controller transition: trace event + gauge refresh."""
        tel = _active_telemetry(self.telemetry)
        if tel is None:
            return
        tel.tracer.event(name, **attrs)
        tel.metrics.gauge(
            "sprint_level", "Active sprint level (1 = nominal operation)."
        ).set(self.plan_active.level if self.plan_active is not None else 1)
        tel.metrics.gauge(
            "sprint_thermal_headroom",
            "Remaining fraction of the PCM thermal budget (0..1).",
        ).set(round(self.thermal_headroom, 6))

    def begin_sprint(self, profile: BenchmarkProfile) -> SprintPlan:
        """Enter sprint mode for a workload burst."""
        if self.mode is SprintMode.SPRINTING:
            raise RuntimeError("already sprinting; end the current sprint first")
        if self.mode is SprintMode.COOLDOWN and self.thermal_headroom < 0.99:
            raise RuntimeError(
                f"PCM not re-solidified (headroom {self.thermal_headroom:.0%})"
            )
        plan = self.plan(profile)
        self._profile_active = profile
        self._stage_index = 0
        self._sprint_time_s = 0.0
        self.retreat_log = []
        if plan.level == 1:
            # the optimum is nominal operation: nothing to sprint
            self.mode = SprintMode.NOMINAL
            self.plan_active = None
            self._emit("sprint_begin", level=1, nominal=True)
            return plan
        self.mode = SprintMode.SPRINTING
        self.plan_active = plan
        self._emit(
            "sprint_begin",
            level=plan.level,
            power_w=round(plan.sprint_power_w, 3),
            expected_speedup=round(plan.expected_speedup, 4),
        )
        return plan

    def advance(self, seconds: float) -> float:
        """Progress time; returns how long the sprint actually sustained.

        While sprinting, the excess power above the sustainable TDP drains
        the PCM budget; when it empties the chip is forced back to nominal
        (the ``t_one`` point of Figure 1).  During cooldown the budget
        refills at the rate cooling exceeds nominal dissipation.
        """
        if seconds < 0:
            raise ValueError("time must move forward")
        if self.mode is SprintMode.SPRINTING:
            assert self.plan_active is not None
            if self.retreat is not None:
                return self._advance_with_retreat(seconds)
            excess = self.plan_active.sprint_power_w - self.pcm.sustainable_power_w
            if excess <= 0:
                self._sprint_time_s += seconds
                return seconds  # thermally unconstrained sprint
            sustained = min(seconds, self._budget_j / excess)
            self._budget_j -= sustained * excess
            self._sprint_time_s += sustained
            if self._budget_j <= 1e-12:
                self._budget_j = 0.0
                self.mode = SprintMode.COOLDOWN
                self.plan_active = None
                self._emit(
                    "sprint_exhausted",
                    sprint_time_s=round(self._sprint_time_s, 6),
                )
            return sustained
        if self.mode is SprintMode.COOLDOWN:
            refill_rate = 0.25 * self.pcm.sustainable_power_w
            self._budget_j = min(
                self._budget_total_j, self._budget_j + seconds * refill_rate
            )
            if self._budget_j >= self._budget_total_j:
                self.mode = SprintMode.NOMINAL
            return 0.0
        return 0.0

    def _retreat_to(self, level: int) -> None:
        """Re-plan the active sprint at a lower level, keeping the mode."""
        plan = self.plan_active
        assert plan is not None
        if level >= plan.level:
            return
        self.retreat_log.append((self._sprint_time_s, plan.level, level))
        self.plan_active = self._plan_for_level(level, self._profile_active)
        tel = _active_telemetry(self.telemetry)
        if tel is not None:
            tel.metrics.counter(
                "sprint_retreats_total",
                "Staged sprint-level retreats taken by the controller.",
            ).inc()
        self._emit(
            "sprint_retreat",
            t=round(self._sprint_time_s, 6),
            from_level=plan.level,
            to_level=self.plan_active.level,
        )

    def _advance_with_retreat(self, seconds: float) -> float:
        """Staged-retreat integration of sprint time.

        Each crossing of a headroom threshold halves the sprint level;
        when the budget empties the sprint falls to the largest sustainable
        level (if one below the current level exists) instead of aborting.
        Returns the total time spent sprinting (at any level).
        """
        thresholds = self.retreat.thresholds
        remaining = seconds
        sustained = 0.0
        while remaining > 1e-15 and self.mode is SprintMode.SPRINTING:
            plan = self.plan_active
            excess = plan.sprint_power_w - self.pcm.sustainable_power_w
            if excess <= 0:
                # this level holds indefinitely
                self._sprint_time_s += remaining
                sustained += remaining
                remaining = 0.0
                break
            if self._stage_index < len(thresholds):
                floor_j = thresholds[self._stage_index] * self._budget_total_j
            else:
                floor_j = 0.0
            step = min(remaining, max(0.0, self._budget_j - floor_j) / excess)
            self._budget_j -= step * excess
            self._sprint_time_s += step
            sustained += step
            remaining -= step
            if remaining <= 1e-15:
                break
            # ran into the next boundary before the time ran out
            if self._stage_index < len(thresholds):
                self._stage_index += 1
                self._retreat_to(max(1, plan.level // 2))
            else:
                self._budget_j = 0.0
                fallback = self.sustainable_level()
                if fallback is not None and fallback < plan.level:
                    self._retreat_to(fallback)
                else:
                    self.mode = SprintMode.COOLDOWN
                    self.plan_active = None
                    self._emit(
                        "sprint_exhausted",
                        sprint_time_s=round(self._sprint_time_s, 6),
                    )
        return sustained

    def drain_budget(self, power_w: float, seconds: float) -> float:
        """Drain the PCM budget as if sprinting at ``power_w`` for up to
        ``seconds``; returns the time actually sustained.

        A lower-level hook for schedulers that manage their own plans;
        unlike :meth:`advance` it does not require an active sprint.  The
        controller drops to COOLDOWN if the budget empties.
        """
        if seconds < 0:
            raise ValueError("time must move forward")
        excess = power_w - self.pcm.sustainable_power_w
        if excess <= 0:
            return seconds  # thermally unconstrained
        sustained = min(seconds, self._budget_j / excess)
        self._budget_j = max(0.0, self._budget_j - sustained * excess)
        if self._budget_j <= 1e-12:
            self._budget_j = 0.0
            self.mode = SprintMode.COOLDOWN
            self.plan_active = None
            self._emit("sprint_exhausted", drained_by="drain_budget")
        return sustained

    def end_sprint(self) -> None:
        """The burst completed; return to nominal and start re-solidifying."""
        if self.mode is SprintMode.SPRINTING:
            self.plan_active = None
            self.mode = (
                SprintMode.COOLDOWN
                if self._budget_j < self._budget_total_j
                else SprintMode.NOMINAL
            )
            self._emit(
                "sprint_end",
                sprint_time_s=round(self._sprint_time_s, 6),
                mode=self.mode.value,
            )

    def max_sprint_duration(self, plan: SprintPlan) -> float:
        """Thermally-allowed duration of a sprint from a full budget."""
        excess = plan.sprint_power_w - self.pcm.sustainable_power_w
        if excess <= 0:
            return math.inf
        return self._budget_total_j / excess
