"""Sprint-aware network power gating (Section 3.4).

NoC-sprinting's gating decision is driven by *core status* rather than by
per-router idle timers: the sprint topology says which routers can ever see
traffic, everything else is gated for the whole sprint, and CDOR guarantees
no packet needs a dark router -- so there are no wakeups at all.  This
module packages that guarantee and the analytical comparison against
conventional timeout-based gating (which risks waking routers that merely
forward packets, cf. [4, 5, 14, 18] in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cdor import CdorRouter
from repro.core.topological import SprintTopology
from repro.noc.power_gating import StaticGatingPlan, static_plan_for_topology


@dataclass(frozen=True)
class SprintAwareGating:
    """The static gating decision for one sprint level, with its guarantee."""

    plan: StaticGatingPlan
    wakeup_free: bool

    @property
    def gated_count(self) -> int:
        return len(self.plan.gated)


def sprint_aware_gating(topology: SprintTopology) -> SprintAwareGating:
    """Build the gating plan and *verify* the no-wakeup guarantee.

    The guarantee holds iff every CDOR path between active nodes stays
    inside the active region -- checked exhaustively, not assumed.
    """
    router = CdorRouter(topology)
    wakeup_free = True
    active = topology.active_set
    for src in topology.active_nodes:
        for dst in topology.active_nodes:
            if src == dst:
                continue
            if any(node not in active for node in router.walk(src, dst)):
                wakeup_free = False
                break
        if not wakeup_free:
            break
    return SprintAwareGating(
        plan=static_plan_for_topology(topology),
        wakeup_free=wakeup_free,
    )


def xy_wakeups_through_dark(
    topology: SprintTopology,
) -> int:
    """Count (src, dst) pairs whose plain-XY path crosses the dark region.

    This is what a core-status-oblivious scheme pays: XY routing on the
    full mesh routes some active-to-active packets through gated routers,
    forcing wakeups.  The number of offending pairs quantifies how much
    wakeup traffic CDOR eliminates (the routing ablation bench reports it).
    """
    from repro.core.cdor import dor_output_port
    from repro.util.directions import Direction

    active = topology.active_set
    offending = 0
    for src in topology.active_nodes:
        for dst in topology.active_nodes:
            if src == dst:
                continue
            current = src
            crosses_dark = False
            while current != dst:
                port = dor_output_port(topology.coord(current), topology.coord(dst))
                if port is Direction.LOCAL:
                    break
                nxt = topology.neighbor(current, port)
                assert nxt is not None, "XY cannot leave the mesh"
                if nxt not in active:
                    crosses_dark = True
                current = nxt
            if crosses_dark:
                offending += 1
    return offending
