"""Fault-aware topological sprinting.

Dark-silicon chips live long enough to accumulate hard faults, and a
faulty core/router must never be activated.  Plain Algorithm 1 cannot just
skip faulty nodes: dropping an interior node can break the convexity that
CDOR's deadlock freedom rests on.  This extension grows the sprint region
greedily *subject to the region invariants*: at each step it activates the
nearest non-faulty node whose addition keeps the region connected and
orthogonally convex, skipping (but not discarding) candidates that would
break it -- a skipped node becomes eligible again once the region has
grown around it.

The result is a fault-avoiding region with the exact properties the
routing and gating layers require, verified rather than assumed
(`tests/test_faults.py` property-tests random fault sets).
"""

from __future__ import annotations

from repro.core.topological import SprintTopology, sprint_order
from repro.util.geometry import (
    Coord,
    is_connected,
    is_orthogonally_convex,
    node_to_coord,
)


class FaultError(Exception):
    """The requested sprint level cannot be reached around the faults."""


def fault_aware_sprint_region(
    width: int,
    height: int,
    level: int,
    faulty: frozenset[int] | set[int],
    master: int = 0,
    metric: str = "euclidean",
) -> list[int]:
    """Algorithm 1 generalized to avoid faulty nodes.

    Returns the activation list (master first).  Raises
    :class:`FaultError` when the master is faulty or no convex connected
    region of the requested size exists around the fault set.
    """
    n = width * height
    faults = frozenset(faulty)
    if master in faults:
        raise FaultError(f"master node {master} is faulty")
    if not 1 <= level <= n - len(faults & frozenset(range(n))):
        raise FaultError(
            f"cannot activate {level} of {n - len(faults)} healthy nodes"
        )

    order = [
        node
        for node in sprint_order(width, height, master, metric)
        if node not in faults
    ]
    region: list[int] = [master]
    region_coords: list[Coord] = [node_to_coord(master, width)]
    pending = [node for node in order if node != master]
    while len(region) < level:
        progress = False
        for index, candidate in enumerate(pending):
            coords = region_coords + [node_to_coord(candidate, width)]
            if is_connected(coords) and is_orthogonally_convex(coords):
                region.append(candidate)
                region_coords = coords
                del pending[index]
                progress = True
                break
        if not progress:
            raise FaultError(
                f"no convex connected {level}-node region exists around "
                f"faults {sorted(faults)} from master {master} "
                f"(reached {len(region)} nodes)"
            )
    return region


def fault_aware_topology(
    width: int,
    height: int,
    level: int,
    faulty: frozenset[int] | set[int],
    master: int = 0,
    metric: str = "euclidean",
) -> SprintTopology:
    """A :class:`SprintTopology` grown around a fault set."""
    nodes = fault_aware_sprint_region(width, height, level, faulty, master, metric)
    return SprintTopology(width, height, tuple(nodes), master)


def link_fault_exclusions(
    width: int,
    height: int,
    links,
    master: int = 0,
    metric: str = "euclidean",
) -> frozenset[int]:
    """Map faulty links onto excluded nodes, deterministically.

    A convex region cannot contain a broken internal link (CDOR assumes
    every in-region mesh link works), so each faulty link costs one of its
    endpoints: the one later in sprint order, i.e. farther from the master.
    The master itself is therefore never excluded by a link fault.
    """
    rank = {
        node: i for i, node in enumerate(sprint_order(width, height, master, metric))
    }
    excluded = set()
    for a, b in links:
        excluded.add(a if rank[a] > rank[b] else b)
    return frozenset(excluded)


def reconfigured_topology(topology, faults, cycle: int):
    """The region a fault schedule forces at ``cycle``, shared by engines.

    Maps the schedule's router faults plus the deterministic node cost of
    its link faults (:func:`link_fault_exclusions`) onto the planned
    topology: a non-empty exclusion set degrades to the largest reachable
    convex region, an empty one (every transient fault recovered) restores
    the planned region.  Both simulation backends reconfigure through this
    helper so their degraded regions can never diverge.
    """
    excluded = set(faults.faulty_routers_at(cycle))
    links = faults.faulty_links_at(cycle)
    if links:
        excluded |= link_fault_exclusions(
            topology.width, topology.height, links, topology.master
        )
    if not excluded:
        return topology
    return degraded_topology(
        topology.width, topology.height, topology.level,
        frozenset(excluded), topology.master,
    )


def degraded_topology(
    width: int,
    height: int,
    level: int,
    faulty: frozenset[int] | set[int],
    master: int = 0,
    metric: str = "euclidean",
) -> SprintTopology:
    """The largest fault-avoiding region of at most ``level`` nodes.

    Graceful-degradation variant of :func:`fault_aware_topology`: where the
    strict version raises :class:`FaultError` because the requested level is
    unreachable around the fault set, this one retreats to the largest
    achievable smaller region.  Only a faulty master is unrecoverable.
    """
    if level < 1:
        raise ValueError("sprint level must be >= 1")
    faults = frozenset(faulty)
    if master in faults:
        raise FaultError(f"master node {master} is faulty")
    n = width * height
    ceiling = min(level, n - len(faults & frozenset(range(n))))
    for candidate in range(ceiling, 0, -1):
        try:
            return fault_aware_topology(width, height, candidate, faults, master, metric)
        except FaultError:
            continue
    raise FaultError(  # pragma: no cover - level 1 always succeeds
        f"no region of any size exists from master {master}"
    )
