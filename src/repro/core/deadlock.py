"""Channel-dependency-graph deadlock-freedom verification.

Dally & Seitz: a routing function is deadlock-free on a given topology if
its channel dependency graph (CDG) is acyclic.  The CDG has one vertex per
unidirectional physical channel; an edge ``c1 -> c2`` exists when some
packet can hold ``c1`` while requesting ``c2``, i.e. the routing function
forwards a packet arriving over ``c1`` onto ``c2`` at some router for some
destination.

The paper claims CDOR is deadlock-free on the convex regions of Algorithm 1
even though it introduces NE/SE turns that plain X-Y routing forbids: where
such a turn occurs, convexity implies the link that would complete the turn
cycle does not exist.  This module checks the claim mechanically by
enumerating every (source, destination) pair, walking the CDOR path, and
testing the resulting CDG for cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.cdor import CdorRouter
from repro.core.topological import SprintTopology

Channel = tuple[int, int]  # (from-router, to-router), unidirectional


@dataclass
class DeadlockReport:
    """Outcome of a deadlock-freedom check."""

    acyclic: bool
    channel_count: int
    dependency_count: int
    cycle: list[Channel] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.acyclic


def channel_dependency_graph(router: CdorRouter) -> nx.DiGraph:
    """Build the CDG of CDOR over the router's sprint topology.

    Only router-to-router channels are modelled; injection and ejection
    channels cannot participate in cycles because they are sources/sinks.
    """
    topo = router.topology
    graph = nx.DiGraph()
    for source in topo.active_nodes:
        for destination in topo.active_nodes:
            if source == destination:
                continue
            path = router.walk(source, destination)
            channels = [(path[i], path[i + 1]) for i in range(len(path) - 1)]
            for ch in channels:
                graph.add_node(ch)
            for held, wanted in zip(channels, channels[1:]):
                graph.add_edge(held, wanted)
    return graph


def check_deadlock_freedom(router: CdorRouter) -> DeadlockReport:
    """Verify CDOR deadlock freedom on the router's topology."""
    graph = channel_dependency_graph(router)
    try:
        cycle_edges = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return DeadlockReport(
            acyclic=True,
            channel_count=graph.number_of_nodes(),
            dependency_count=graph.number_of_edges(),
        )
    cycle = [edge[0] for edge in cycle_edges]
    return DeadlockReport(
        acyclic=False,
        channel_count=graph.number_of_nodes(),
        dependency_count=graph.number_of_edges(),
        cycle=cycle,
    )


def check_all_sprint_levels(
    width: int,
    height: int,
    master: int = 0,
    metric: str = "euclidean",
) -> dict[int, DeadlockReport]:
    """Deadlock reports for every sprint level of a mesh."""
    reports = {}
    for level in range(1, width * height + 1):
        topo = SprintTopology.for_level(width, height, level, master, metric)
        reports[level] = check_deadlock_freedom(CdorRouter(topo))
    return reports
