"""Algorithms 3-4: thermal-aware heuristic floorplanning.

Topological sprinting (Algorithm 1) deliberately ignores thermal behaviour
to keep routing simple: it always grows a compact convex region around the
master node, which concentrates heat.  The floorplanning algorithm keeps the
*logical* mesh connectivity (so Algorithm 1 and CDOR are untouched) but
re-allocates the *physical* location of each node at design time, so the
nodes that sprint together are spread across the die.

Algorithm 3 walks the logical mesh breadth-first from the master node in
the activation order of Algorithm 1's list ``L``.  Each logical node
``R_k`` is mapped (Algorithm 4) to the free physical slot maximising the
weighted sum of Euclidean distances to the already-placed nodes, with
weights *inversely* proportional to the logical Hamming (Manhattan)
distance: logically-close nodes sprint together, so they get large weights
and are pushed physically apart.

The physical wires become longer than mesh-neighbour wires; the paper
leans on SMART-style clockless repeated links (Krishna et al.) to keep
multi-hop physical traversals single-cycle, and we model the link-length
change in :mod:`repro.power.link_power`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.topological import SprintTopology, sprint_order
from repro.util.directions import MESH_DIRECTIONS
from repro.util.geometry import Coord, euclidean, manhattan, node_to_coord


@dataclass(frozen=True)
class Floorplan:
    """A mapping from logical mesh nodes to physical die slots.

    Both the logical network and the physical die are ``width`` x ``height``
    grids; ``position[k]`` is the physical slot id of logical node ``k``.
    """

    width: int
    height: int
    position: tuple[int, ...]

    def __post_init__(self) -> None:
        n = self.width * self.height
        if len(self.position) != n:
            raise ValueError(f"floorplan must place all {n} nodes")
        if sorted(self.position) != list(range(n)):
            raise ValueError("floorplan positions must be a permutation")

    @property
    def node_count(self) -> int:
        return self.width * self.height

    def physical_coord(self, logical_node: int) -> Coord:
        """Physical die coordinate of a logical node."""
        return node_to_coord(self.position[logical_node], self.width)

    def logical_at_slot(self, slot: int) -> int:
        """The logical node occupying a physical slot."""
        return self.position.index(slot)

    def wire_length(self, logical_a: int, logical_b: int) -> float:
        """Physical Euclidean length (in tile pitches) of a logical link."""
        return euclidean(self.physical_coord(logical_a), self.physical_coord(logical_b))

    def total_wire_length(self) -> float:
        """Sum of physical lengths over every logical mesh link."""
        total = 0.0
        for node in range(self.node_count):
            coord = node_to_coord(node, self.width)
            east = coord + Coord(1, 0)
            south = coord + Coord(0, 1)
            if east.x < self.width:
                total += self.wire_length(node, east.y * self.width + east.x)
            if south.y < self.height:
                total += self.wire_length(node, south.y * self.width + south.x)
        return total


def identity_floorplan(width: int, height: int) -> Floorplan:
    """The trivial floorplan: logical node k sits at physical slot k."""
    return Floorplan(width, height, tuple(range(width * height)))


def _max_weighted_distance(
    logical_k: int,
    placed: Sequence[int],
    free_slots: Sequence[int],
    position: dict[int, int],
    width: int,
) -> int:
    """Algorithm 4: pick the free physical slot for logical node ``R_k``.

    Maximises ``sum_j w_kj * d(slot, Pos(R_j))`` over free slots, where
    ``w_kj = 1 / Hamming(R_k, R_j)`` in logical coordinates and ``d`` is the
    physical Euclidean distance.  Ties resolve to the lowest slot id (the
    paper's loop keeps the first maximum because it tests with ``>``).
    """
    k_coord = node_to_coord(logical_k, width)
    best_slot = free_slots[0]
    best_sum = -1.0
    for slot in free_slots:
        slot_coord = node_to_coord(slot, width)
        total = 0.0
        for j in placed:
            w = 1.0 / manhattan(k_coord, node_to_coord(j, width))
            total += w * euclidean(slot_coord, node_to_coord(position[j], width))
        if total > best_sum:
            best_sum = total
            best_slot = slot
    return best_slot


def thermal_aware_floorplan(
    width: int,
    height: int,
    master: int = 0,
    metric: str = "euclidean",
) -> Floorplan:
    """Algorithm 3: thermal-aware placement of the whole mesh.

    ``metric`` is forwarded to Algorithm 1 and controls the exploration
    order ``L`` (the paper uses Euclidean).
    """
    n = width * height
    order = sprint_order(width, height, master, metric)
    rank = {node: i for i, node in enumerate(order)}

    def logical_neighbors(node: int) -> list[int]:
        coord = node_to_coord(node, width)
        result = []
        for direction in MESH_DIRECTIONS:
            c = coord + direction.offset
            if 0 <= c.x < width and 0 <= c.y < height:
                result.append(c.y * width + c.x)
        return sorted(result, key=lambda m: rank[m])

    position: dict[int, int] = {master: master}
    placed: list[int] = [master]
    free_slots: list[int] = [s for s in range(n) if s != master]
    queued: set[int] = {master}
    queue: list[int] = []
    for neighbor in logical_neighbors(master):
        queue.append(neighbor)
        queued.add(neighbor)

    while queue:
        node = queue.pop(0)
        slot = _max_weighted_distance(node, placed, free_slots, position, width)
        position[node] = slot
        free_slots.remove(slot)
        placed.append(node)
        for neighbor in logical_neighbors(node):
            if neighbor not in queued:
                queue.append(neighbor)
                queued.add(neighbor)

    if len(placed) != n:
        raise RuntimeError("logical mesh is connected; BFS must place all nodes")
    return Floorplan(width, height, tuple(position[k] for k in range(n)))


def thermal_spread(
    floorplan: Floorplan, topology: SprintTopology
) -> float:
    """Mean pairwise physical distance of a sprint level's active nodes.

    A scalar figure of merit for how well a floorplan spreads the heat of a
    sprint level: larger is cooler.  Used by the ablation bench to compare
    the thermal-aware floorplan against the identity floorplan.
    """
    coords = [floorplan.physical_coord(n) for n in topology.active_nodes]
    if len(coords) < 2:
        return 0.0
    total = 0.0
    pairs = 0
    for i, a in enumerate(coords):
        for b in coords[i + 1 :]:
            total += euclidean(a, b)
            pairs += 1
    return total / pairs
