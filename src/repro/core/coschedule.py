"""Spatial co-scheduling: multiple sprints on disjoint convex regions.

The paper sprints one workload at a time.  A natural extension -- enabled
exactly by its machinery -- is running several workloads simultaneously,
each on its own convex region grown from its own master node.  Disjoint
regions keep CDOR's guarantees per region (routing never leaves a region,
so the channel dependency graphs stay independent), the gating plan is the
union of the regions, and the thermal model simply sums the power maps.

Region construction generalizes Algorithm 1: each master ranks all nodes
by Euclidean distance (ties by index); nodes are claimed in a global
nearest-first order, each by its closest master, until every workload has
its level.  The resulting regions are not guaranteed convex for arbitrary
master placements -- :func:`co_sprint_regions` *verifies* orthogonal
convexity and connectivity and raises if the placement is infeasible, so
callers never silently get an unroutable partition.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.cmp.perf_model import BenchmarkProfile, profile_workload
from repro.core.topological import SprintTopology
from repro.util.geometry import euclidean_sq, node_to_coord


class CoScheduleError(Exception):
    """The requested masters/levels do not admit disjoint convex regions."""


@dataclass(frozen=True)
class CoScheduledSprint:
    """One workload's share of a co-scheduled sprint."""

    master: int
    level: int
    topology: SprintTopology


def co_sprint_regions(
    width: int,
    height: int,
    demands: list[tuple[int, int]],
) -> list[CoScheduledSprint]:
    """Grow disjoint convex regions for ``[(master, level), ...]``.

    Nodes are claimed nearest-master-first: a global priority queue of
    (distance, node-index, master-rank) hands each node to its closest
    still-hungry master.  Raises :class:`CoScheduleError` when demands
    overlap (duplicate masters, total level exceeding the mesh) or when a
    resulting region is not orthogonally convex and connected (so CDOR's
    guarantees would not hold).
    """
    n = width * height
    if not demands:
        raise CoScheduleError("need at least one (master, level) demand")
    masters = [m for m, _ in demands]
    if len(set(masters)) != len(masters):
        raise CoScheduleError("masters must be distinct")
    total = sum(level for _, level in demands)
    if total > n:
        raise CoScheduleError(f"total level {total} exceeds the {n}-node mesh")
    for master, level in demands:
        if not 0 <= master < n:
            raise CoScheduleError(f"master {master} outside the mesh")
        if level < 1:
            raise CoScheduleError("levels must be at least 1")

    # global nearest-first claim queue
    heap: list[tuple[int, int, int]] = []
    for rank, (master, _) in enumerate(demands):
        origin = node_to_coord(master, width)
        for node in range(n):
            dist = euclidean_sq(node_to_coord(node, width), origin)
            heapq.heappush(heap, (dist, node, rank))

    owner: dict[int, int] = {}
    remaining = [level for _, level in demands]
    while heap and any(remaining):
        _, node, rank = heapq.heappop(heap)
        if node in owner or remaining[rank] == 0:
            continue
        owner[node] = rank
        remaining[rank] -= 1

    if any(remaining):
        raise CoScheduleError("could not satisfy all demands")

    sprints = []
    for rank, (master, level) in enumerate(demands):
        nodes = tuple(sorted(node for node, r in owner.items() if r == rank))
        if master not in nodes:
            raise CoScheduleError(
                f"master {master} was claimed by another region; "
                "choose masters further apart"
            )
        topology = SprintTopology(width, height, nodes, master)
        if not topology.is_connected() or not topology.is_orthogonally_convex():
            raise CoScheduleError(
                f"region of master {master} is not convex/connected: {nodes}; "
                "choose masters further apart or smaller levels"
            )
        sprints.append(CoScheduledSprint(master=master, level=level, topology=topology))
    return sprints


def plan_co_sprint(
    width: int,
    height: int,
    workloads: list[tuple[BenchmarkProfile, int]],
    core_count: int | None = None,
) -> list[tuple[BenchmarkProfile, CoScheduledSprint]]:
    """Co-schedule workloads at their optimal levels from given masters.

    ``workloads`` pairs each profile with its master node.  Levels come
    from off-line profiling, clamped so the total fits the mesh (excess is
    taken from the largest requests first -- the workloads with the most
    head-room lose the least).
    """
    n = core_count or width * height
    levels = [
        profile_workload(profile, n).level for profile, _ in workloads
    ]
    # clamp to fit: halve the largest request until the total fits
    while sum(levels) > width * height:
        largest = max(range(len(levels)), key=lambda i: levels[i])
        if levels[largest] == 1:
            raise CoScheduleError("cannot fit one core per workload")
        levels[largest] //= 2
    demands = [(master, level) for (_, master), level in zip(workloads, levels)]
    sprints = co_sprint_regions(width, height, demands)
    return list(zip([profile for profile, _ in workloads], sprints))
