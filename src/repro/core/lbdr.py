"""LBDR: logic-based distributed routing (Flich et al., the paper's cited
comparison point).

The paper adapts its CDOR scheme from Flich, Rodrigo and Duato's
distributed routing for irregular NoC topologies, noting that the general
mechanism "requires twelve extra bits per switch" where CDOR gets away
with two.  This module implements that general mechanism so the repo can
compare the two on sprint regions:

- four **connectivity bits** ``C_n, C_e, C_s, C_w`` -- whether each mesh
  neighbour is part of the active region (CDOR keeps only ``C_w, C_e``);
- eight **routing bits** ``R_xy`` -- whether a packet leaving through
  direction ``x`` may turn to direction ``y`` at the *next* switch
  (x != y, x != opposite(y): NE, NW, EN, ES, SE, SW, WN, WS).

Total: 12 bits per switch.  The routing bits encode the turn restrictions
of an underlying turn model; we derive them XY-style (Y->X turns forbidden
unless the straight-through X continuation at the next hop is dead, in
which case the turn is enabled exactly where CDOR's detour needs it), so
on Algorithm-1 regions LBDR reproduces CDOR's paths -- which is the point:
CDOR is the 2-bit specialization that convexity makes sufficient.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cdor import RoutingError
from repro.core.topological import SprintTopology
from repro.util.directions import MESH_DIRECTIONS, Direction

#: The eight (leave, turn-to) pairs of LBDR routing bits.
ROUTING_BIT_PAIRS = tuple(
    (a, b)
    for a in MESH_DIRECTIONS
    for b in MESH_DIRECTIONS
    if a is not b and a.opposite is not b
)

BITS_PER_SWITCH = len(ROUTING_BIT_PAIRS) + 4  # 8 routing + 4 connectivity


@dataclass(frozen=True)
class LbdrBits:
    """The 12-bit LBDR state of one switch."""

    connectivity: dict[Direction, bool]
    routing: dict[tuple[Direction, Direction], bool]

    def __post_init__(self) -> None:
        if set(self.connectivity) != set(MESH_DIRECTIONS):
            raise ValueError("need all four connectivity bits")
        if set(self.routing) != set(ROUTING_BIT_PAIRS):
            raise ValueError("need all eight routing bits")


def derive_lbdr_bits(topology: SprintTopology, node: int) -> LbdrBits:
    """Derive a switch's LBDR bits from the sprint region.

    Connectivity is the region's link state.  Routing bits implement the
    XY turn model, with the Y->X turns (NE/NW/SE/SW) enabled only where a
    convex region forces the detour: when continuing in X past this node's
    neighbour is impossible because that neighbour's X port is dark.
    """
    connectivity = topology.connectivity_bits(node)
    routing: dict[tuple[Direction, Direction], bool] = {}
    for leave, turn in ROUTING_BIT_PAIRS:
        if leave in (Direction.EAST, Direction.WEST):
            # X->Y turns are always legal under the XY turn model
            routing[(leave, turn)] = True
        else:
            # Y exit while still needing X progress (the NE/NW/SE/SW bits):
            # permitted exactly where the X port it bypasses is dark, i.e.
            # where a convex region forces the vertical detour.  This is
            # the LBDR derivation of the XY turn set relaxed for the
            # irregular region; deadlock freedom follows from the same
            # convexity argument as CDOR and is verified mechanically in
            # the tests.
            routing[(leave, turn)] = not connectivity[turn]
    return LbdrBits(connectivity=connectivity, routing=routing)


class LbdrRouter:
    """LBDR route computation over a sprint topology.

    The per-hop decision mirrors the published comparator network: compute
    the destination quadrant, then pick the first permitted output among
    the (up to two) productive directions, consulting routing bits for the
    turn the *next* hop would need and connectivity bits for the link
    itself.  X progress is preferred (dimension order) so that on convex
    regions LBDR and CDOR agree.
    """

    def __init__(self, topology: SprintTopology):
        self._topology = topology
        self._bits = {
            node: derive_lbdr_bits(topology, node) for node in topology.active_nodes
        }

    @property
    def topology(self) -> SprintTopology:
        return self._topology

    def bits(self, node: int) -> LbdrBits:
        try:
            return self._bits[node]
        except KeyError:
            raise RoutingError(f"router {node} is power-gated") from None

    def _productive_directions(self, current: int, destination: int) -> list[Direction]:
        cur = self._topology.coord(current)
        dst = self._topology.coord(destination)
        directions: list[Direction] = []
        if dst.x > cur.x:
            directions.append(Direction.EAST)
        elif dst.x < cur.x:
            directions.append(Direction.WEST)
        if dst.y > cur.y:
            directions.append(Direction.SOUTH)
        elif dst.y < cur.y:
            directions.append(Direction.NORTH)
        return directions

    def next_port(self, current: int, destination: int) -> Direction:
        if current == destination:
            return Direction.LOCAL
        if not self._topology.is_active(destination):
            raise RoutingError(f"destination {destination} is power-gated")
        bits = self.bits(current)
        productive = self._productive_directions(current, destination)
        for direction in productive:  # X-first preference is encoded by order
            if not bits.connectivity[direction]:
                continue
            # if we still need progress in the other dimension afterwards,
            # the next switch must permit the (direction -> other) turn
            others = [d for d in productive if d is not direction]
            if others and not bits.routing[(direction, others[0])]:
                continue
            return direction
        raise RoutingError(
            f"LBDR cannot route {current} -> {destination}: no permitted "
            "productive output (region not convex?)"
        )

    def walk(self, source: int, destination: int) -> list[int]:
        topo = self._topology
        if not topo.is_active(source):
            raise RoutingError(f"source {source} is power-gated")
        path = [source]
        current = source
        limit = topo.width * topo.height + 1
        while current != destination:
            port = self.next_port(current, destination)
            nxt = topo.neighbor(current, port)
            if nxt is None or not topo.is_active(nxt):
                raise RoutingError(
                    f"LBDR forwarded into dark/absent router from {current}"
                )
            path.append(nxt)
            current = nxt
            if len(path) > limit:
                raise RoutingError(f"LBDR livelock {source} -> {destination}")
        return path


def bit_cost_comparison() -> dict[str, int]:
    """Per-switch configuration-bit cost: the paper's 12-vs-2 comparison."""
    return {"lbdr_bits": BITS_PER_SWITCH, "cdor_bits": 2}
