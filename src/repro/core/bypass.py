"""Bypass paths to cache banks in the dark region (Section 3.4).

Network power gating interacts with the last-level cache architecture.
For private, centralized, or NUCA LLCs, gating dark routers is free: no
packet ever needs them.  But on a *tiled* CMP each tile holds a bank of
the shared LLC, and line interleaving sends some accesses to banks whose
tile is dark.  Waking the dark router for every such access would destroy
the gating benefit, so the paper adopts NoRD-style **bypass paths** [4]:
each dark bank is reachable from a nearby active router over a dedicated
low-power connection that does not power the router itself.

This module plans those connections: every dark node is assigned the
nearest active router as its *bypass proxy* (ties broken toward the lower
node id, matching the deterministic tie rules elsewhere).  The simulator
then routes dark-bank accesses to the proxy and charges a fixed bypass
latency and per-access energy instead of a router wakeup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.topological import SprintTopology, dark_nodes
from repro.util.geometry import manhattan

#: Extra cycles a dark-bank access spends on the bypass connection
#: (round-trip: proxy -> bank -> proxy), on top of the network traversal.
DEFAULT_BYPASS_LATENCY_CYCLES = 4

#: Energy per flit over the bypass connection, joules at the nominal point.
#: A repeated wire plus bank access control -- far below a router wakeup.
BYPASS_ENERGY_PER_FLIT_J = 2.0e-12


@dataclass(frozen=True)
class BypassPlan:
    """The dark-bank access plan for one sprint topology."""

    proxy: dict[int, int]  # dark node -> active proxy router
    latency_cycles: int = DEFAULT_BYPASS_LATENCY_CYCLES

    @property
    def dark_bank_count(self) -> int:
        return len(self.proxy)

    def proxy_for(self, node: int) -> int:
        """The active router that fronts ``node``'s bank (itself if active)."""
        return self.proxy.get(node, node)

    def max_bypass_distance(self, topology: SprintTopology) -> int:
        """Longest proxy-to-bank hop distance (bounds the wire length)."""
        if not self.proxy:
            return 0
        return max(
            manhattan(topology.coord(dark), topology.coord(proxy))
            for dark, proxy in self.proxy.items()
        )


def plan_bypass(
    topology: SprintTopology,
    latency_cycles: int = DEFAULT_BYPASS_LATENCY_CYCLES,
) -> BypassPlan:
    """Assign every dark node the nearest active router as its proxy."""
    if latency_cycles < 0:
        raise ValueError("bypass latency must be non-negative")
    proxy = {}
    for dark in dark_nodes(topology):
        dark_coord = topology.coord(dark)
        proxy[dark] = min(
            topology.active_nodes,
            key=lambda active: (
                manhattan(dark_coord, topology.coord(active)),
                active,
            ),
        )
    return BypassPlan(proxy=proxy, latency_cycles=latency_cycles)
