"""Gate-level area model for CDOR vs conventional DOR routing logic.

The paper implements CDOR in behavioural Verilog and synthesises it with
Design Compiler at 45 nm, reporting **< 2 % area overhead over a
conventional DOR switch**.  No synthesis tools are available offline, so we
substitute a NAND2-equivalent gate-count model of the whole switch (input
buffers, crossbar, allocators, routing logic) and of the two routing
circuits.  The overhead claim is a ratio of gate counts, which this model
reproduces: the CDOR additions are two connectivity-bit registers plus a
few gates of fallback steering per output port, tiny next to the buffers
and crossbar.

Gate-equivalent constants follow standard textbook estimates
(flip-flop ~ 6 NAND2, full-adder/comparator bit ~ 5 NAND2, 2:1 mux ~ 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import NoCConfig

GATES_PER_FLIPFLOP = 6.0
GATES_PER_SRAM_BIT = 1.5  # buffer storage is SRAM-like, denser than FFs
GATES_PER_MUX2 = 3.0
GATES_PER_COMPARATOR_BIT = 5.0
GATES_PER_ARBITER_REQ = 8.0  # round-robin arbiter cost per request line


@dataclass(frozen=True)
class RouterAreaBreakdown:
    """NAND2-equivalent gate counts for one 5-port VC router."""

    buffers: float
    crossbar: float
    vc_allocator: float
    switch_allocator: float
    routing_logic: float

    @property
    def total(self) -> float:
        return (
            self.buffers
            + self.crossbar
            + self.vc_allocator
            + self.switch_allocator
            + self.routing_logic
        )


def _coordinate_bits(config: NoCConfig) -> int:
    """Bits needed to encode one mesh coordinate."""
    span = max(config.mesh_width, config.mesh_height)
    bits = 1
    while (1 << bits) < span:
        bits += 1
    return bits


def dor_routing_logic_gates(config: NoCConfig, ports: int = 5) -> float:
    """Routing logic of a conventional DOR (X-Y) switch.

    Per input port: two coordinate comparators (X and Y offset sign/zero)
    plus a small direction decoder, and the Xcur/Ycur registers shared by
    the switch.
    """
    coord_bits = _coordinate_bits(config)
    comparators = 2 * coord_bits * GATES_PER_COMPARATOR_BIT
    decoder = 12.0  # sign/zero -> one-of-five port select
    shared_registers = 2 * coord_bits * GATES_PER_FLIPFLOP
    return ports * (comparators + decoder) + shared_registers


def cdor_routing_logic_gates(config: NoCConfig, ports: int = 5) -> float:
    """CDOR routing logic (Algorithm 2 / Figure 6).

    On top of DOR: two connectivity-bit registers (Cw, Ce) per switch and,
    per output port, the steering gates that redirect a blocked X-direction
    request to the Y port facing the destination (roughly four 2-input
    gates plus one mux per port, cf. the North-port circuit of Figure 6).
    """
    connectivity_registers = 2 * GATES_PER_FLIPFLOP
    per_port_steering = 4.0 + GATES_PER_MUX2
    return (
        dor_routing_logic_gates(config, ports)
        + connectivity_registers
        + ports * per_port_steering
    )


def router_area(config: NoCConfig, routing: str = "dor", ports: int = 5) -> RouterAreaBreakdown:
    """Gate-count breakdown of a full wormhole VC router.

    ``routing`` selects ``"dor"`` or ``"cdor"`` routing logic.
    """
    flit_bits = config.flit_width_bits
    vcs = config.vcs_per_port
    depth = config.buffers_per_vc

    buffer_bits = ports * vcs * depth * flit_bits
    buffers = buffer_bits * GATES_PER_SRAM_BIT
    # one read and one write port mux tree per input port
    buffers += ports * flit_bits * (vcs * depth) * 0.5

    # ports x ports crossbar: each output bit is a ports:1 mux
    crossbar = ports * flit_bits * (ports - 1) * GATES_PER_MUX2

    va_requests = (ports * vcs) * vcs  # each input VC requests an output VC set
    vc_allocator = va_requests * GATES_PER_ARBITER_REQ
    sa_requests = ports * vcs + ports * ports
    switch_allocator = sa_requests * GATES_PER_ARBITER_REQ

    if routing == "dor":
        logic = dor_routing_logic_gates(config, ports)
    elif routing == "cdor":
        logic = cdor_routing_logic_gates(config, ports)
    else:
        raise ValueError(f"unknown routing {routing!r}")

    return RouterAreaBreakdown(
        buffers=buffers,
        crossbar=crossbar,
        vc_allocator=vc_allocator,
        switch_allocator=switch_allocator,
        routing_logic=logic,
    )


def cdor_area_overhead(config: NoCConfig | None = None) -> float:
    """Fractional area overhead of a CDOR switch over a DOR switch.

    The paper's synthesis result is < 0.02; this model lands well inside
    that bound because the CDOR additions are O(10) gates against an
    O(10^4)-gate switch.
    """
    cfg = config or NoCConfig()
    dor = router_area(cfg, "dor").total
    cdor = router_area(cfg, "cdor").total
    return (cdor - dor) / dor
