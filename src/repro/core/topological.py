"""Algorithm 1: irregular topological sprinting.

Starting from a designated *master node* (the single core that stays on
during nominal operation), nodes are activated in ascending order of their
**Euclidean** distance to the master, with ties broken by node index.  The
prefix of this order for a sprint level ``k`` is the set of routers/cores
powered during a ``k``-core sprint.

The paper argues (Section 3.2) that Euclidean ordering beats Hamming
(Manhattan) ordering: both pick nodes 0, 1 and 4 for a 3-core sprint on the
4x4 mesh, but for 4 cores Hamming may pick node 2 while Euclidean picks the
diagonal node 5, which shortens *inter-node* communication.  The resulting
regions are convex, which is what makes CDOR routing deadlock-free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.geometry import (
    Coord,
    euclidean_sq,
    is_connected,
    is_discretely_convex,
    is_orthogonally_convex,
    manhattan,
    node_to_coord,
)


def sprint_order(
    width: int,
    height: int,
    master: int = 0,
    metric: str = "euclidean",
) -> list[int]:
    """Return all node ids in sprint-activation order (Algorithm 1).

    ``metric`` selects the distance used for the sort: ``"euclidean"`` is the
    paper's Algorithm 1; ``"hamming"`` (Manhattan) is the strawman the paper
    compares against and is provided for the ablation study.
    """
    if master < 0 or master >= width * height:
        raise ValueError(f"master node {master} outside a {width}x{height} mesh")
    origin = node_to_coord(master, width)
    if metric == "euclidean":
        def key(node: int) -> tuple[int, int]:
            return (euclidean_sq(node_to_coord(node, width), origin), node)
    elif metric == "hamming":
        def key(node: int) -> tuple[int, int]:
            return (manhattan(node_to_coord(node, width), origin), node)
    else:
        raise ValueError(f"unknown metric {metric!r}")
    return sorted(range(width * height), key=key)


def sprint_region(
    width: int,
    height: int,
    level: int,
    master: int = 0,
    metric: str = "euclidean",
) -> list[int]:
    """The node ids active during a ``level``-core sprint (order preserved)."""
    if not 1 <= level <= width * height:
        raise ValueError(
            f"sprint level must be in [1, {width * height}], got {level}"
        )
    return sprint_order(width, height, master, metric)[:level]


@dataclass(frozen=True)
class SprintTopology:
    """The irregular (convex) sub-topology of a sprint level.

    Wraps the active node set together with the mesh geometry and exposes
    the per-router connectivity bits CDOR needs (Cw/Ce, plus Cn/Cs which the
    simulator uses to know which physical links are powered).
    """

    width: int
    height: int
    active_nodes: tuple[int, ...]
    master: int = 0

    def __post_init__(self) -> None:
        if not self.active_nodes:
            raise ValueError("a sprint topology needs at least one node")
        seen = set(self.active_nodes)
        if len(seen) != len(self.active_nodes):
            raise ValueError("duplicate node in sprint topology")
        for node in self.active_nodes:
            if not 0 <= node < self.width * self.height:
                raise ValueError(f"node {node} outside the mesh")
        if self.master not in seen:
            raise ValueError("master node must be active")

    @classmethod
    def for_level(
        cls,
        width: int,
        height: int,
        level: int,
        master: int = 0,
        metric: str = "euclidean",
    ) -> "SprintTopology":
        """Build the Algorithm-1 topology for a sprint level."""
        nodes = sprint_region(width, height, level, master, metric)
        return cls(width, height, tuple(nodes), master)

    @property
    def level(self) -> int:
        return len(self.active_nodes)

    @property
    def active_set(self) -> frozenset[int]:
        return frozenset(self.active_nodes)

    @property
    def coords(self) -> list[Coord]:
        return [node_to_coord(n, self.width) for n in self.active_nodes]

    def is_active(self, node: int) -> bool:
        return node in self.active_set

    def coord(self, node: int) -> Coord:
        return node_to_coord(node, self.width)

    def node_at(self, coord: Coord) -> int:
        if not (0 <= coord.x < self.width and 0 <= coord.y < self.height):
            raise ValueError(f"{coord} outside the mesh")
        return coord.y * self.width + coord.x

    def neighbor(self, node: int, direction) -> int | None:
        """The mesh neighbour in ``direction``, or None at the mesh edge."""
        c = self.coord(node) + direction.offset
        if not (0 <= c.x < self.width and 0 <= c.y < self.height):
            return None
        return self.node_at(c)

    def connected(self, node: int, direction) -> bool:
        """Connectivity bit: both endpoints of the link are active."""
        if not self.is_active(node):
            return False
        other = self.neighbor(node, direction)
        return other is not None and self.is_active(other)

    def connectivity_bits(self, node: int) -> dict:
        """All four connectivity bits for a router (Cw/Ce/Cn/Cs)."""
        from repro.util.directions import MESH_DIRECTIONS

        return {d: self.connected(node, d) for d in MESH_DIRECTIONS}

    def active_links(self) -> list[tuple[int, int]]:
        """Powered bidirectional links, as (low, high) node-id pairs."""
        from repro.util.directions import Direction

        links = []
        for node in self.active_nodes:
            for direction in (Direction.EAST, Direction.SOUTH):
                if self.connected(node, direction):
                    other = self.neighbor(node, direction)
                    links.append((node, other))
        return sorted(links)

    def is_convex(self) -> bool:
        """Discrete convexity of the active region (paper's claim)."""
        return is_discretely_convex(self.coords)

    def is_orthogonally_convex(self) -> bool:
        """The (weaker) property CDOR actually requires."""
        return is_orthogonally_convex(self.coords)

    def is_connected(self) -> bool:
        return is_connected(self.coords)


def dark_nodes(topology: SprintTopology) -> list[int]:
    """Node ids power-gated at this sprint level."""
    return [
        n
        for n in range(topology.width * topology.height)
        if not topology.is_active(n)
    ]
