"""Command-line interface: ``python -m repro <command>``.

Commands map onto the paper's evaluation axes:

- ``table1``                 print the Table 1 configuration
- ``sprint <benchmark>``     plan + evaluate one workload across schemes
- ``sweep``                  the full PARSEC evaluation (Figs. 7-10 axes), or --
  with ``--levels/--rates/--patterns`` -- a parallel, cached grid sweep over
  injection rate x pattern x sprint level via the :mod:`repro.exec` engine
- ``network``                injection-rate sweep on a sprint region (Fig. 11)
- ``thermal [benchmark]``    heat maps and PCM phases (Figs. 1, 12)
- ``duration``               per-benchmark sprint-duration gains (Sec. 4.4)
- ``report <trace.jsonl>``   span tree, top time sinks and metrics of a
  trace produced with ``sweep --trace`` (``--metrics sweep.prom`` folds
  in a Prometheus sidecar, with estimated histogram quantiles)
- ``compare A B``            statistical diff of two ledger runs
- ``regress --baseline REF`` gate the newest run against a baseline;
  exits 4 on regression (the CI regression observatory)
- ``cache stats``            counters and on-disk footprint of a result cache
- ``backends``               the live simulation-backend capability matrix
- ``worker --queue DIR``     join a ``sweep --fabric DIR`` run as an external
  lease-based worker (spawnable mid-sweep, survives coordinator churn)
- ``fabric audit DIR``       replay a fabric queue's event log and verify the
  no-lost/no-double-counted invariants; ``--json`` emits the machine
  verdict.  Exit codes: 0 invariants hold, 1 violations, 2 no queue
- ``watch QUEUE_DIR``        live dashboard over a running (or finished)
  fabric sweep: ANSI terminal repaint, ``--once``/``--json`` for scripts,
  ``--html PATH`` atomic single-file dashboard, ``--serve [HOST]:PORT``
  Prometheus scrape endpoint.  Exit codes: 0 (running, or complete and
  clean), 3 complete with failures, 2 no queue
- ``serve``                  the experiment-as-a-service HTTP front door
  (:mod:`repro.service`): accepts wire-format spec submissions on
  ``POST /v1/evaluate`` / ``/v1/sweeps``, coalesces identical concurrent
  requests onto one simulation, serves results from the shared cache and
  run ledger, enforces per-client rate limits and simulated-seconds
  budgets, and exposes ``service_*`` metrics on ``/metrics``
- ``submit SPEC.json``       the reference client: POST a spec (or batch)
  to a running ``repro serve`` (``--server URL``) and print the results;
  ``--local`` evaluates in-process through the identical service engine
  for bit-for-bit parity testing
- ``fetch KEY --server URL`` retrieve one result by cache key (exit 3
  while it is still computing); ``--run`` fetches a run-ledger record by
  id prefix instead

``sweep`` handles SIGINT/SIGTERM by draining: in-flight points finish and
are checkpointed, a resume hint is printed, and the exit code is 5.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.cmp.workloads import PARSEC_PROFILES, all_profiles, get_profile
from repro.config import table1_rows
from repro.core.system import NoCSprintingSystem
from repro.thermal.pcm import sprint_phases
from repro.util.tables import format_table, render_heatmap


def _cmd_table1(args: argparse.Namespace) -> int:
    print(format_table(["parameter", "value", "parameter", "value"], table1_rows(),
                       title="Table 1: system and interconnect configuration"))
    return 0


def _cmd_sprint(args: argparse.Namespace) -> int:
    system = NoCSprintingSystem()
    profile = get_profile(args.benchmark)
    rows = []
    for scheme in ("non_sprinting", "full_sprinting", "noc_sprinting"):
        row = system.evaluate(profile, scheme,
                              simulate_network=not args.no_network,
                              thermal=not args.no_thermal)
        rows.append([
            scheme,
            row.level,
            row.speedup,
            row.core_power_w,
            row.network.avg_latency if row.network else float("nan"),
            row.network.total_power_w * 1e3 if row.network else float("nan"),
            row.peak_temperature_k if row.peak_temperature_k else float("nan"),
        ])
    print(format_table(
        ["scheme", "level", "speedup", "core W", "net lat (cyc)", "net mW", "peak K"],
        rows,
        title=f"{profile.name}: sprinting-scheme comparison",
        float_format="{:.2f}",
    ))
    gain = system.sprint_duration_gain(profile)
    print(f"sprint duration gain vs full-sprinting: {100 * (gain - 1):+.1f} %")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    # any grid-mode flag routes to the grid sweep; otherwise flags like
    # --resume or --fault would be silently ignored by the legacy summary
    if (args.levels or args.rates or args.patterns or args.fault
            or args.resume or args.cache_dir or args.max_retries
            or args.point_timeout is not None or args.trace
            or args.metrics or args.backend != "reference"
            or args.ledger_dir or args.ledger_label or args.fabric):
        return _cmd_sweep_grid(args)
    system = NoCSprintingSystem()
    rows = []
    for profile in all_profiles():
        full = system.evaluate(profile, "full_sprinting")
        noc = system.evaluate(profile, "noc_sprinting")
        rows.append([
            profile.name,
            noc.level,
            full.speedup,
            noc.speedup,
            full.core_power_w,
            noc.core_power_w,
            system.sprint_duration_gain(profile),
        ])
    print(format_table(
        ["benchmark", "level", "S(full)", "S(noc)", "coreW full", "coreW noc", "dur gain"],
        rows,
        title="PARSEC 2.1 sweep",
        float_format="{:.2f}",
    ))
    n = len(rows)
    print(f"means: S(full)={sum(r[2] for r in rows) / n:.2f} "
          f"S(noc)={sum(r[3] for r in rows) / n:.2f} "
          f"duration gain=+{100 * (sum(r[6] for r in rows) / n - 1):.1f}%")
    return 0


def _parse_fault(text: str):
    """Parse a ``--fault`` value into a :class:`~repro.noc.spec.FaultEvent`.

    Syntax: ``NODE@CYCLE[:DURATION]`` for a router fault or
    ``A-B@CYCLE[:DURATION]`` for a link fault; omitting ``:DURATION``
    makes the fault permanent.
    """
    from repro.noc.spec import FaultEvent

    head, _, rest = text.partition("@")
    if not head or not rest:
        raise ValueError(f"fault must look like NODE@CYCLE[:DURATION]: {text!r}")
    cycle_s, _, duration_s = rest.partition(":")
    cycle = int(cycle_s)
    duration = int(duration_s) if duration_s else None
    if "-" in head:
        a, _, b = head.partition("-")
        return FaultEvent(cycle=cycle, kind="link", link=(int(a), int(b)),
                          duration=duration)
    return FaultEvent(cycle=cycle, kind="router", node=int(head),
                      duration=duration)


def _grid_specs(levels, rates, patterns, seed, warmup, measure, drain,
                faults=(), backend="reference"):
    """Build (and eagerly validate) the spec grid for a sweep command."""
    from repro.config import NoCConfig
    from repro.core.topological import SprintTopology
    from repro.noc.spec import FaultSchedule, SimulationSpec, TrafficSpec

    cfg = NoCConfig()
    schedule = FaultSchedule(events=tuple(faults))
    specs = []
    for level in levels:
        topo = SprintTopology.for_level(cfg.mesh_width, cfg.mesh_height, level)
        routing = "cdor" if level < cfg.node_count else "xy"
        for pattern in patterns:
            for rate in rates:
                spec = SimulationSpec(
                    topology=topo,
                    traffic=TrafficSpec(tuple(topo.active_nodes), rate,
                                        cfg.packet_length_flits, pattern,
                                        seed=seed),
                    config=cfg, routing=routing,
                    warmup_cycles=warmup, measure_cycles=measure,
                    drain_cycles=drain, faults=schedule,
                    backend=backend,
                )
                spec.traffic.build()  # fail fast on pattern/endpoint mismatch
                specs.append(spec)
    return specs


def _resume_hint(args: argparse.Namespace) -> str:
    """The exact command that resumes this sweep from its checkpoint."""
    if not args.cache_dir:
        return ("completed points are checkpointed in memory only; re-run "
                "with --cache-dir to make interrupted sweeps resumable")
    parts = ["python -m repro sweep"]
    if args.levels:
        parts.append("--levels " + " ".join(str(v) for v in args.levels))
    if args.rates:
        parts.append("--rates " + " ".join(f"{v:g}" for v in args.rates))
    if args.patterns:
        parts.append("--patterns " + " ".join(args.patterns))
    if args.backend != "reference":
        parts.append(f"--backend {args.backend}")
    if args.workers != 1:
        parts.append(f"--workers {args.workers}")
    if args.fabric:
        parts.append(f"--fabric {args.fabric}")
    parts.append(f"--cache-dir {args.cache_dir} --resume")
    return "resume with: " + " ".join(parts)


def _cmd_sweep_grid(args: argparse.Namespace) -> int:
    """Parallel, cached grid sweep (rate x pattern x level) via repro.exec."""
    from repro.exec import ResultCache, SweepRunner
    from repro.power import network_power

    levels = args.levels or [4, 8]
    rates = args.rates or [0.05, 0.15, 0.25, 0.35, 0.45]
    patterns = args.patterns or ["uniform"]
    if args.resume and not args.cache_dir:
        print("--resume needs --cache-dir (the checkpoint lives in the cache)")
        return 2
    try:
        faults = [_parse_fault(text) for text in (args.fault or [])]
        specs = _grid_specs(levels, rates, patterns, args.seed,
                            args.warmup, args.measure, args.drain,
                            faults=faults, backend=args.backend)
    except ValueError as err:
        print(f"invalid sweep grid: {err}")
        return 2
    telemetry = None
    if args.trace or args.metrics:
        from repro.telemetry import Telemetry

        telemetry = Telemetry(sample_interval=args.sample_interval)
    # validate the backend against each point's needs up front, so an
    # incompatible combination fails before any worker launches -- and
    # reports *every* bad point, not just the first, since a partial grid
    # is usually misconfigured in more than one place
    from repro.noc.backends import (
        BackendCapabilityError,
        check_capabilities,
        get_backend,
        resolve_backend,
    )

    problems = []
    for spec in specs:
        try:
            if args.backend == "auto":
                resolve_backend(spec, telemetry=telemetry)
            else:
                check_capabilities(get_backend(args.backend), spec, None, telemetry)
        except (BackendCapabilityError, ValueError) as err:
            problems.append(
                f"level={spec.topology.level} pattern={spec.traffic.pattern} "
                f"rate={spec.traffic.injection_rate:g}: {err}"
            )
    if problems:
        for line in problems:
            print(f"invalid sweep grid: {line}")
        print(f"invalid sweep grid: {len(problems)} of {len(specs)} points "
              f"incompatible with backend {args.backend!r}")
        return 2
    from repro.telemetry import Ledger

    fabric_config = None
    if args.fabric:
        from repro.exec import FabricConfig

        try:
            fabric_config = FabricConfig(
                queue_dir=args.fabric,
                workers=args.workers,
                lease_ttl_s=args.lease_ttl,
                quarantine_after=args.quarantine_after,
            )
        except ValueError as err:
            print(f"invalid sweep grid: {err}")
            return 2
    # the live progress line (rate + ETA off the watch estimator); only
    # when stderr is an interactive terminal, so scripted runs and CI
    # greps see byte-identical output
    import sys as _sys

    progress_line = None
    if _sys.stderr.isatty():
        from repro.telemetry.live import ProgressLine

        progress_line = ProgressLine(total=len(specs))
    try:
        runner = SweepRunner(workers=args.workers,
                             cache=ResultCache(directory=args.cache_dir),
                             progress=progress_line,
                             max_retries=args.max_retries,
                             point_timeout=args.point_timeout,
                             telemetry=telemetry,
                             ledger=Ledger(directory=args.ledger_dir),
                             ledger_label=args.ledger_label,
                             fabric=fabric_config)
    except ValueError as err:
        print(f"invalid sweep grid: {err}")
        return 2

    # SIGINT/SIGTERM drain gracefully: the first signal stops dispatching
    # and lets in-flight points finish + checkpoint; a second aborts hard
    import signal as _signal

    signal_state = {"count": 0}

    def _drain_handler(signum, frame):
        signal_state["count"] += 1
        if signal_state["count"] == 1:
            print("\ninterrupt: draining in-flight points "
                  "(interrupt again to abort immediately)...", flush=True)
            runner.request_stop()
        else:
            raise KeyboardInterrupt

    previous_handlers = {}
    try:
        for signum in (_signal.SIGINT, _signal.SIGTERM):
            previous_handlers[signum] = _signal.signal(signum, _drain_handler)
    except ValueError:
        previous_handlers = {}  # not the main thread (in-process tests)

    try:
        from repro.exec import QueueError

        try:
            report = runner.run(specs)
            for _ in range(args.repeat - 1):
                if report.interrupted:
                    break
                report = runner.run(specs)
        except QueueError as err:
            print(f"sweep fabric: {err}")
            return 2
        except KeyboardInterrupt:
            print("sweep aborted before the drain completed; points already "
                  "finished are checkpointed")
            print(_resume_hint(args))
            return 5
    finally:
        for signum, handler in previous_handlers.items():
            _signal.signal(signum, handler)
        if progress_line is not None:
            progress_line.finish()
    if telemetry is not None:
        telemetry.save(trace_path=args.trace, metrics_path=args.metrics)
        if args.trace:
            print(f"trace written: {args.trace} (inspect with "
                  f"`repro report {args.trace}`)")
        if args.metrics:
            print(f"metrics written: {args.metrics}")
    degraded = any(point.result.degraded for point in report.points)
    rows = []
    for point in report.points:
        spec = point.spec
        result = point.result
        power = network_power(result, spec.topology, spec.config)
        row = [
            spec.topology.level, spec.traffic.pattern, spec.traffic.injection_rate,
            result.avg_latency, result.p99_latency,
            result.accepted_flits_per_cycle, power.total * 1e3,
            "yes" if result.saturated else "",
            "hit" if point.cached else f"{point.wall_time_s:.2f}s",
        ]
        if degraded:
            row[8:8] = [result.packets_dropped, result.packets_retransmitted,
                        result.min_region_level]
        rows.append(row)
    headers = ["level", "pattern", "inj rate", "avg lat", "p99 lat", "accepted",
               "power mW", "saturated", "sim"]
    if degraded:
        headers[8:8] = ["dropped", "retx", "min lvl"]
    print(format_table(
        headers, rows,
        title="grid sweep (repro.exec engine)",
        float_format="{:.2f}",
    ))
    print(report.summary())
    if report.run_record is not None:
        print(f"run recorded: {report.run_record.run_id} "
              f"(ledger: {runner.ledger.path}; diff with `repro compare`)")
    audit_ok = True
    if args.fabric and report.fabric is not None and not report.interrupted:
        from repro.exec import QueueError, audit_queue

        try:
            audit = audit_queue(args.fabric, expect_complete=report.ok)
        except QueueError as err:
            print(f"fabric audit: {err}")
            audit_ok = False
        else:
            print(audit.summary())
            audit_ok = audit.ok
    if report.failures:
        for failure in report.failures:
            print(f"sweep failure: {failure.describe()}")
            for line in failure.history_lines():
                print(f"    {line}")
    if report.interrupted:
        print(_resume_hint(args))
        return 5
    if report.failures:
        return 3
    return 0 if audit_ok else 3


def _cmd_network(args: argparse.Namespace) -> int:
    from repro.exec import SweepRunner
    from repro.power import network_power

    try:
        specs = _grid_specs([args.level], args.rates, [args.pattern],
                            args.seed, 400, 1500, 5000,
                            backend=args.backend)
    except ValueError as err:
        print(f"invalid network sweep: {err}")
        return 2
    try:
        runner = SweepRunner(workers=args.workers)
    except ValueError as err:
        print(f"invalid network sweep: {err}")
        return 2
    report = runner.run(specs)
    rows = []
    for spec, result in zip(specs, report.results):
        power = network_power(result, spec.topology, spec.config)
        rows.append([
            spec.traffic.injection_rate, result.avg_latency, result.p99_latency,
            result.accepted_flits_per_cycle, power.total * 1e3,
            "yes" if result.saturated else "",
        ])
    routing = specs[0].routing
    print(format_table(
        ["inj rate", "avg lat", "p99 lat", "accepted", "power mW", "saturated"],
        rows,
        title=f"{args.level}-node sprint region, {args.pattern} traffic ({routing})",
        float_format="{:.2f}",
    ))
    return 0


def _cmd_thermal(args: argparse.Namespace) -> int:
    from repro.core.floorplanning import thermal_aware_floorplan
    from repro.core.topological import SprintTopology
    from repro.power.chip_power import ChipPowerModel
    from repro.thermal.floorplan import sprint_tile_powers
    from repro.thermal.grid import ThermalGrid

    system = NoCSprintingSystem()
    profile = get_profile(args.benchmark)
    level = system.scheme_level(profile, "noc_sprinting")
    grid = ThermalGrid(4, 4, 4)
    chip = ChipPowerModel(16)
    scenarios = [
        ("full-sprinting", sprint_tile_powers(SprintTopology.for_level(4, 4, 16), chip)),
        (f"NoC-sprinting (level {level})",
         sprint_tile_powers(SprintTopology.for_level(4, 4, level), chip)),
        ("NoC-sprinting + floorplan",
         sprint_tile_powers(SprintTopology.for_level(4, 4, level), chip,
                            thermal_aware_floorplan(4, 4))),
    ]
    for name, powers in scenarios:
        print(f"--- {name}: {sum(powers):.1f} W, peak {grid.peak_temperature(powers):.2f} K ---")
        print(render_heatmap(grid.tile_temperatures(powers)))
        print()
        phases = sprint_phases(sum(powers))
        if phases.total_s == float("inf"):
            print("    below sustainable TDP: thermally unconstrained\n")
        else:
            print(f"    sprint phases: {phases.heat_to_melt_s * 1e3:.0f} / "
                  f"{phases.melting_s * 1e3:.0f} / {phases.melt_to_max_s * 1e3:.0f} ms "
                  f"(total {phases.total_s:.2f} s)\n")
    return 0


def _cmd_duration(args: argparse.Namespace) -> int:
    system = NoCSprintingSystem()
    rows = []
    for profile in all_profiles():
        gain = system.sprint_duration_gain(profile)
        rows.append([profile.name,
                     system.scheme_level(profile, "noc_sprinting"),
                     gain])
    mean = sum(r[2] for r in rows) / len(rows)
    print(format_table(["benchmark", "level", "duration gain"], rows,
                       title="Sprint-duration gains (Section 4.4)"))
    print(f"mean: +{100 * (mean - 1):.1f} % (paper +55.4 %)")
    return 0


def _backend_names() -> list[str]:
    from repro.noc.backends import list_backends

    # "auto" is a selection policy, not a registered engine: the fastest
    # backend whose capabilities cover each run (see resolve_backend)
    return ["auto", *list_backends()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NoC-Sprinting (DAC 2014) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the Table 1 configuration")

    sprint = sub.add_parser("sprint", help="evaluate one workload across schemes")
    sprint.add_argument("benchmark", choices=sorted(PARSEC_PROFILES))
    sprint.add_argument("--no-network", action="store_true",
                        help="skip the cycle simulation")
    sprint.add_argument("--no-thermal", action="store_true",
                        help="skip the thermal grid solve")

    sweep = sub.add_parser(
        "sweep",
        help="PARSEC evaluation summary; with --levels/--rates/--patterns, "
             "a parallel cached grid sweep",
    )
    sweep.add_argument("--levels", type=int, nargs="+",
                       help="sprint levels to sweep (grid mode)")
    sweep.add_argument("--rates", type=float, nargs="+",
                       help="injection rates in flits/cycle/node (grid mode)")
    sweep.add_argument("--patterns", nargs="+",
                       choices=["uniform", "neighbor", "bit_complement",
                                "tornado", "transpose", "shuffle", "hotspot"],
                       help="traffic patterns (grid mode)")
    sweep.add_argument("--workers", type=int, default=1,
                       help="simulation worker processes (results identical "
                            "to --workers 1)")
    sweep.add_argument("--cache-dir", default=None,
                       help="persist simulation results on disk for reuse "
                            "across invocations")
    sweep.add_argument("--repeat", type=int, default=1,
                       help="run the sweep N times (repeats are cache hits)")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--warmup", type=int, default=300)
    sweep.add_argument("--measure", type=int, default=1000)
    sweep.add_argument("--drain", type=int, default=4000)
    sweep.add_argument("--max-retries", type=int, default=0,
                       help="re-attempts per failing point (exponential "
                            "backoff between tries)")
    sweep.add_argument("--point-timeout", type=float, default=None,
                       help="seconds before a point is killed and retried "
                            "(needs --workers > 1)")
    sweep.add_argument("--resume", action="store_true",
                       help="continue an interrupted sweep from the "
                            "checkpoint in --cache-dir")
    sweep.add_argument("--fault", action="append", metavar="F",
                       help="inject a NoC fault into every point: "
                            "NODE@CYCLE[:DURATION] (router) or "
                            "A-B@CYCLE[:DURATION] (link); repeatable")
    sweep.add_argument("--trace", default=None, metavar="PATH",
                       help="write a JSONL span trace of the sweep "
                            "(view with `repro report PATH`)")
    sweep.add_argument("--metrics", default=None, metavar="PATH",
                       help="write the sweep metrics as Prometheus text")
    sweep.add_argument("--sample-interval", type=int, default=200,
                       metavar="CYCLES",
                       help="in-simulation sampling period for --trace "
                            "(per-router flits, occupancy; 0 disables)")
    sweep.add_argument("--backend", default="reference",
                       choices=_backend_names(),
                       help="simulation engine for every point (grid mode; "
                            "'vectorized' is the fast path, 'auto' picks "
                            "the fastest engine covering each point)")
    sweep.add_argument("--ledger-dir", default=None, metavar="DIR",
                       help="run-ledger directory (grid mode; default "
                            ".repro/ledger or $REPRO_LEDGER_DIR; "
                            "REPRO_LEDGER=0 disables recording)")
    sweep.add_argument("--ledger-label", default=None, metavar="NAME",
                       help="label the recorded run (e.g. 'nightly') so "
                            "`repro regress --baseline NAME` can find it")
    sweep.add_argument("--fabric", default=None, metavar="QUEUE_DIR",
                       help="run through the lease-based work-queue fabric: "
                            "--workers local worker processes (0 = external "
                            "only) plus any `repro worker --queue QUEUE_DIR` "
                            "joined from elsewhere; survives worker churn")
    sweep.add_argument("--lease-ttl", type=float, default=10.0,
                       metavar="SECONDS",
                       help="fabric lease lifetime; a worker that stops "
                            "heartbeating for this long forfeits its point "
                            "(default 10)")
    sweep.add_argument("--quarantine-after", type=int, default=3, metavar="N",
                       help="quarantine a point after N distinct fabric "
                            "workers died or errored on it (default 3)")

    worker = sub.add_parser(
        "worker",
        help="join a `sweep --fabric` run as an external lease-based worker "
             "(start any number, any time; SIGINT/SIGTERM drain gracefully)",
    )
    worker.add_argument("--queue", required=True, metavar="DIR",
                        help="the queue directory passed to `sweep --fabric`")
    worker.add_argument("--id", default=None, metavar="NAME",
                        help="worker name in events and logs (default: "
                             "w<pid>)")
    worker.add_argument("--poll", type=float, default=0.05, metavar="SECONDS",
                        help="idle scan period while every point is leased")
    worker.add_argument("--wait", type=float, default=10.0, metavar="SECONDS",
                        help="how long to wait for the queue to be seeded "
                             "before giving up (exit 2)")
    worker.add_argument("--generation", type=int, default=0, metavar="N",
                        help="respawn generation recorded in worker-start "
                             "events (the coordinator sets this; external "
                             "workers default to 0)")

    fabric = sub.add_parser(
        "fabric",
        help="inspect a fabric queue (`fabric audit DIR` replays the event "
             "log and verifies the no-lost/no-double-counted invariants; "
             "exits 0 when they hold, 1 on violations, 2 when DIR is not "
             "a queue)",
    )
    fabric.add_argument("action", choices=["audit"])
    fabric.add_argument("queue", metavar="QUEUE_DIR")
    fabric.add_argument("--json", action="store_true",
                        help="emit the audit verdict as one JSON document "
                             "(same exit codes)")

    watch = sub.add_parser(
        "watch",
        help="live dashboard over a fabric queue: progress, per-worker and "
             "per-shard rates, lease health, ETA; exits 0 while running or "
             "when complete and clean, 3 when complete with failures, 2 "
             "when QUEUE_DIR never becomes a queue",
    )
    watch.add_argument("queue", metavar="QUEUE_DIR",
                       help="the directory passed to `sweep --fabric`")
    watch.add_argument("--once", action="store_true",
                       help="render one snapshot and exit (for scripts/CI)")
    watch.add_argument("--json", action="store_true",
                       help="emit snapshots as JSON documents (one per "
                            "refresh; one total with --once)")
    watch.add_argument("--interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="refresh period of the live dashboard "
                            "(default 1.0)")
    watch.add_argument("--html", default=None, metavar="PATH",
                       help="write a self-refreshing HTML dashboard "
                            "atomically on every refresh (default: "
                            "QUEUE_DIR/dashboard.html when following, "
                            "off with --once)")
    watch.add_argument("--serve", default=None, metavar="[HOST]:PORT",
                       help="also serve the view as a Prometheus /metrics "
                            "endpoint while watching")
    watch.add_argument("--wait", type=float, default=10.0, metavar="SECONDS",
                       help="how long to wait for the queue to appear "
                            "before giving up (exit 2)")

    serve = sub.add_parser(
        "serve",
        help="run the experiment-as-a-service HTTP API: wire-format spec "
             "submission, request coalescing, per-client rate limits and "
             "simulated-seconds budgets, /metrics exposition",
    )
    serve.add_argument("--listen", default="127.0.0.1:8451",
                       metavar="[HOST]:PORT",
                       help="bind address (default 127.0.0.1:8451; port 0 "
                            "picks an ephemeral port and prints it)")
    serve.add_argument("--workers", type=int, default=1,
                       help="simulation worker processes per batch")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persist results on disk (shared with `repro "
                            "sweep --cache-dir` -- submissions of already "
                            "swept specs are cache hits)")
    serve.add_argument("--ledger-dir", default=None, metavar="DIR",
                       help="run-ledger directory (default .repro/ledger or "
                            "$REPRO_LEDGER_DIR)")
    serve.add_argument("--fabric", default=None, metavar="QUEUE_DIR",
                       help="execute batches through the lease-based work "
                            "fabric rooted here instead of a local pool")
    serve.add_argument("--rate", type=float, default=50.0, metavar="PER_S",
                       help="per-client token-bucket refill rate, specs/s "
                            "(default 50)")
    serve.add_argument("--burst", type=float, default=200.0, metavar="N",
                       help="per-client token-bucket capacity (default 200)")
    serve.add_argument("--budget", type=float, default=None,
                       metavar="SECONDS",
                       help="per-client simulated-seconds budget; once a "
                            "client's completed simulations exceed it, "
                            "submissions are refused 402 (default: "
                            "unlimited)")

    submit = sub.add_parser(
        "submit",
        help="submit a wire-format spec file (one document or a batch) to "
             "a running `repro serve` -- or, with --local, evaluate it "
             "in-process through the identical service engine",
    )
    submit.add_argument("spec", metavar="SPEC.json",
                        help="a spec_to_wire() document, a JSON list of "
                             "them, or {\"specs\": [...]}")
    submit.add_argument("--server", default=None, metavar="URL",
                        help="base URL of a running `repro serve`")
    submit.add_argument("--local", action="store_true",
                        help="short-circuit in-process (no server) for "
                             "parity testing")
    submit.add_argument("--client", default="cli", metavar="NAME",
                        help="client identity sent as X-Repro-Client")
    submit.add_argument("--wait", type=float, default=300.0,
                        metavar="SECONDS",
                        help="how long to wait for results before exiting "
                             "3 (still running)")
    submit.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache directory (--local mode)")
    submit.add_argument("--workers", type=int, default=1,
                        help="worker processes (--local mode)")

    fetch = sub.add_parser(
        "fetch",
        help="retrieve one result by cache key from a running `repro "
             "serve` (exit 0 done, 3 still computing, 1 unknown)",
    )
    fetch.add_argument("key", metavar="KEY",
                       help="a spec cache key (or run id with --run)")
    fetch.add_argument("--server", required=True, metavar="URL",
                       help="base URL of a running `repro serve`")
    fetch.add_argument("--run", action="store_true",
                       help="fetch a run-ledger record by id/prefix "
                            "instead of a result")

    network = sub.add_parser("network", help="injection sweep on a sprint region")
    network.add_argument("--level", type=int, default=4)
    network.add_argument("--pattern", default="uniform",
                         choices=["uniform", "neighbor", "bit_complement",
                                  "tornado", "transpose", "hotspot"])
    network.add_argument("--rates", type=float, nargs="+",
                         default=[0.05, 0.15, 0.25, 0.35, 0.5])
    network.add_argument("--seed", type=int, default=0)
    network.add_argument("--workers", type=int, default=1)
    network.add_argument("--backend", default="reference",
                         choices=_backend_names(),
                         help="simulation engine for every point ('auto' "
                              "picks the fastest capable engine)")

    thermal = sub.add_parser("thermal", help="heat maps and PCM phases")
    thermal.add_argument("benchmark", nargs="?", default="dedup",
                         choices=sorted(PARSEC_PROFILES))

    sub.add_parser("duration", help="sprint-duration gains per benchmark")

    report = sub.add_parser(
        "report", help="summarize a telemetry trace (span tree, time sinks, "
                       "metrics)"
    )
    report.add_argument("trace", help="JSONL trace from `repro sweep --trace`")
    report.add_argument("--top", type=int, default=10,
                        help="number of time sinks to list")
    report.add_argument("--metrics", default=None, metavar="PATH",
                        help="Prometheus sidecar from `repro sweep --metrics`; "
                             "replaces the trace's embedded snapshot and adds "
                             "estimated histogram p50/p95/p99")

    def _add_ledger_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--ledger-dir", default=None, metavar="DIR",
                       help="ledger directory (default .repro/ledger, or "
                            "$REPRO_LEDGER_DIR)")

    compare = sub.add_parser(
        "compare", help="statistical diff of two ledger runs (per-point "
                        "headline deltas, direction-aware thresholds)"
    )
    compare.add_argument("run_a", help="baseline: run id / id prefix / label "
                                       "/ 'latest'")
    compare.add_argument("run_b", help="candidate: run id / id prefix / label "
                                       "/ 'latest'")
    _add_ledger_args(compare)
    compare.add_argument("--rel-threshold", type=float, default=None,
                         metavar="FRAC",
                         help="override every metric's relative threshold")
    compare.add_argument("--json", action="store_true",
                         help="emit the comparison as one JSON document")
    compare.add_argument("--html", default=None, metavar="PATH",
                         help="also write a self-contained HTML drill-down")

    regress = sub.add_parser(
        "regress", help="gate the newest run against a baseline: exit 4 on "
                        "regression, 0 when clean"
    )
    regress.add_argument("--baseline", required=True, metavar="REF",
                         help="baseline run id / id prefix / label / 'latest'")
    regress.add_argument("--candidate", default="latest", metavar="REF",
                         help="candidate run (default: latest)")
    _add_ledger_args(regress)
    regress.add_argument("--rel-threshold", type=float, default=None,
                         metavar="FRAC",
                         help="override every metric's relative threshold")
    regress.add_argument("--json", action="store_true",
                         help="emit the comparison as one JSON document")
    regress.add_argument("--html", default=None, metavar="PATH",
                         help="also write a self-contained HTML drill-down")

    cache = sub.add_parser(
        "cache", help="inspect a result cache (`cache stats`)"
    )
    cache.add_argument("action", choices=["stats"],
                       help="'stats': hit/miss/byte counters and on-disk "
                            "footprint")
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="on-disk cache directory (as passed to "
                            "`sweep --cache-dir`)")

    sub.add_parser(
        "backends",
        help="list registered simulation backends, their capabilities and "
             "native-kernel availability",
    )

    figure = sub.add_parser(
        "figure", help="regenerate a paper figure via its benchmark harness"
    )
    figure.add_argument(
        "figure_id",
        help="e.g. fig07, fig11, table1, ablation_routing, extension_dvfs, llc",
    )
    return parser


def _cmd_report(args: argparse.Namespace) -> int:
    """Render the span tree / time sinks / metrics of a saved trace."""
    import os

    from repro.telemetry.report import render_report

    if not os.path.exists(args.trace):
        print(f"no such trace file: {args.trace}")
        return 2
    if args.metrics and not os.path.exists(args.metrics):
        print(f"no such metrics file: {args.metrics}")
        return 2
    try:
        print(render_report(args.trace, sink_limit=args.top,
                            metrics_path=args.metrics))
    except ValueError as err:
        print(f"unreadable trace: {err}")
        return 2
    return 0


def _resolve_run(ledger, ref: str):
    """Resolve a run reference or print why it could not be found."""
    record = ledger.baseline(ref)
    if record is None:
        print(f"no ledger run matches {ref!r} under {ledger.path} "
              f"(run `repro sweep --levels ...` to record one)")
    return record


def _selftest_skew(record):
    """Inflate every latency metric by 10% (``REPRO_REGRESS_SELFTEST=1``).

    Lets CI prove the gate trips without a real regression: +10% meets the
    default ``avg_latency`` policy (rel 0.10) exactly.
    """
    import dataclasses

    def skew(metrics: dict) -> dict:
        return {name: value * 1.10 if "latency" in name else value
                for name, value in metrics.items()}

    return dataclasses.replace(
        record,
        headline=skew(record.headline),
        points={key: skew(metrics) for key, metrics in record.points.items()},
    )


def _render_comparison(comparison, args) -> None:
    from repro.telemetry.compare import render_html, render_json, render_terminal

    if args.html:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_html(comparison))
    print(render_json(comparison) if args.json else render_terminal(comparison))
    if args.html:
        print(f"html drill-down written: {args.html}")


def _cmd_compare(args: argparse.Namespace) -> int:
    """Diff two ledger runs; exit 0 either way (``regress`` is the gate)."""
    from repro.telemetry import Ledger, compare_runs

    ledger = Ledger(directory=args.ledger_dir)
    baseline = _resolve_run(ledger, args.run_a)
    candidate = _resolve_run(ledger, args.run_b) if baseline is not None else None
    if baseline is None or candidate is None:
        return 2
    comparison = compare_runs(baseline, candidate,
                              rel_threshold=args.rel_threshold)
    _render_comparison(comparison, args)
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    """Compare candidate vs baseline and exit 4 when anything regressed."""
    import os

    from repro.telemetry import Ledger, compare_runs

    ledger = Ledger(directory=args.ledger_dir)
    baseline = _resolve_run(ledger, args.baseline)
    candidate = _resolve_run(ledger, args.candidate) if baseline is not None else None
    if baseline is None or candidate is None:
        return 2
    if os.environ.get("REPRO_REGRESS_SELFTEST", "").strip() == "1":
        candidate = _selftest_skew(candidate)
    comparison = compare_runs(baseline, candidate,
                              rel_threshold=args.rel_threshold)
    _render_comparison(comparison, args)
    return 4 if comparison.regressed else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """``cache stats``: counters plus the on-disk footprint of a cache dir."""
    import os

    from repro.exec import ResultCache

    cache = ResultCache(directory=args.cache_dir)
    stats = cache.stats()
    rows = [[name, getattr(stats, name)]
            for name in ("hits", "misses", "stores", "memory_hits",
                         "disk_hits", "corrupt", "bytes_read", "bytes_written")]
    rows.append(["lookups", stats.lookups])
    rows.append(["hit_rate", f"{stats.hit_rate:.3f}"])
    if args.cache_dir:
        entries, size = 0, 0
        if os.path.isdir(args.cache_dir):
            with os.scandir(args.cache_dir) as it:
                for entry in it:
                    if entry.is_file() and entry.name.endswith(".pkl"):
                        entries += 1
                        size += entry.stat().st_size
        rows.append(["disk_entries", entries])
        rows.append(["disk_bytes", size])
    title = (f"result cache: {args.cache_dir}" if args.cache_dir
             else "result cache: (memory only, this process)")
    print(format_table(["counter", "value"], rows, title=title))
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run one fabric worker until the queue drains (or we are told to)."""
    from repro.exec import worker_main

    return worker_main(args.queue, worker_id=args.id,
                       poll_s=args.poll, wait_s=args.wait,
                       generation=args.generation)


def _cmd_fabric(args: argparse.Namespace) -> int:
    """``fabric audit``: verify a queue's invariants from its event log."""
    import json

    from repro.exec import QueueError, audit_queue

    try:
        audit = audit_queue(args.queue)
    except QueueError as err:
        if args.json:
            print(json.dumps({"ok": False, "error": str(err)},
                             sort_keys=True))
        else:
            print(f"fabric audit: {err}")
        return 2
    if args.json:
        print(json.dumps(audit.to_dict(), sort_keys=True))
    else:
        print(audit.summary())
    return 0 if audit.ok else 1


def _cmd_watch(args: argparse.Namespace) -> int:
    """``watch``: live dashboard over a fabric queue."""
    import json
    import os
    import sys
    import time

    from repro.exec import QueueError
    from repro.telemetry.live import (
        LiveMetricsExporter,
        MetricsServer,
        QueueWatcher,
        parse_serve_address,
        render_html,
        render_terminal,
        write_html_atomic,
    )

    interval = max(0.05, float(args.interval))
    watcher = QueueWatcher(args.queue)

    # Wait (bounded) for the coordinator to seed the queue, so
    # `repro watch` can be started before/alongside the sweep.
    deadline = time.monotonic() + max(0.0, float(args.wait))
    view = None
    while True:
        try:
            view = watcher.refresh()
            break
        except QueueError as err:
            if time.monotonic() >= deadline:
                print(f"watch: {err}", file=sys.stderr)
                return 2
            time.sleep(min(0.2, interval))

    server = None
    exporter = None
    if args.serve is not None:
        host, port = parse_serve_address(args.serve)
        exporter = LiveMetricsExporter()
        server = MetricsServer(exporter.render, host=host, port=port).start()
        print(f"watch: serving Prometheus metrics on "
              f"http://{server.address}/metrics", file=sys.stderr)

    html_path = args.html
    if html_path is None and not args.once:
        html_path = os.path.join(args.queue, "dashboard.html")

    interactive = (not args.once and not args.json
                   and sys.stdout.isatty())
    try:
        while True:
            if exporter is not None:
                exporter.update(view)
            if html_path:
                write_html_atomic(
                    html_path,
                    render_html(view, refresh_s=max(1.0, interval)),
                )
            if args.json:
                print(json.dumps(view.to_dict(), sort_keys=True), flush=True)
            elif interactive:
                sys.stdout.write("\x1b[H\x1b[J" + render_terminal(view))
                sys.stdout.flush()
            else:
                print(render_terminal(view, color=False), flush=True)
            if args.once or view.complete:
                break
            time.sleep(interval)
            try:
                view = watcher.refresh()
            except QueueError as err:  # queue deleted mid-watch
                print(f"watch: {err}", file=sys.stderr)
                return 2
    except KeyboardInterrupt:
        pass
    finally:
        if server is not None:
            server.stop()
        if interactive:
            sys.stdout.write("\n")
    return 3 if (view.complete and view.failed) else 0


def _cmd_backends(args: argparse.Namespace) -> int:
    """Print the live capability matrix of the registered backends."""
    from repro.noc.backends import get_backend, list_backends
    from repro.noc.backends import native

    rows = []
    for name in list_backends():
        backend = get_backend(name)
        caps = ", ".join(sorted(getattr(backend, "capabilities", frozenset())))
        kernel = "-"
        if name == "vectorized":
            kernel = ("available" if native.available()
                      else "unavailable (pure-Python flat engine)")
        rows.append([name, getattr(backend, "speed_rank", 0), caps, kernel])
    print(format_table(
        ["backend", "speed rank", "capabilities", "native kernel"],
        rows,
        title="registered simulation backends",
    ))
    print("backend='auto' (spec, run_simulation, sweep --backend) picks the "
          "highest-ranked engine whose capabilities cover the run; see "
          "repro.noc.backends.requirements / supports")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    """Run a figure's benchmark file through pytest and show its tables."""
    import glob
    import os

    import pytest

    bench_dir = os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks")
    bench_dir = os.path.normpath(bench_dir)
    if not os.path.isdir(bench_dir):
        print("benchmarks/ directory not found; run from a source checkout")
        return 2
    matches = sorted(glob.glob(os.path.join(bench_dir, f"bench_*{args.figure_id}*.py")))
    if not matches:
        available = sorted(
            os.path.basename(p)[len("bench_"):-len(".py")]
            for p in glob.glob(os.path.join(bench_dir, "bench_*.py"))
        )
        print(f"no bench matches {args.figure_id!r}; available: {', '.join(available)}")
        return 2
    return pytest.main(matches + ["--benchmark-only", "-s", "-q",
                                  "--benchmark-disable-gc", "--benchmark-quiet"])


def _service_request(url: str, data: bytes | None = None,
                     client: str | None = None,
                     timeout: float = 300.0) -> tuple[int, dict]:
    """One JSON round trip to a `repro serve` endpoint (stdlib urllib).

    HTTP error statuses are returned, not raised, so callers can print
    the structured error payload the service sends with them.
    """
    import json as _json
    import urllib.error
    import urllib.request

    headers = {"Content-Type": "application/json"}
    if client:
        headers["X-Repro-Client"] = client
    request = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.getcode(), _json.load(response)
    except urllib.error.HTTPError as err:
        try:
            body = err.read().decode("utf-8", "replace")
        finally:
            err.close()
        try:
            return err.code, _json.loads(body)
        except ValueError:
            return err.code, {"error": {"type": "http", "message": body,
                                        "missing": [], "alternatives": []}}


def _load_wire_documents(path: str) -> list:
    """SPEC.json -> a list of wire documents (singletons stay a batch of 1)."""
    import json as _json

    with open(path, encoding="utf-8") as handle:
        payload = _json.load(handle)
    if isinstance(payload, dict) and isinstance(payload.get("specs"), list):
        return payload["specs"]
    if isinstance(payload, list):
        return payload
    return [payload]


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.exec.cache import ResultCache
    from repro.exec.fabric import FabricConfig
    from repro.service import ClientAccounts, ExperimentServer, ExperimentService
    from repro.telemetry.ledger import Ledger
    from repro.telemetry.live import parse_serve_address

    host, port = parse_serve_address(args.listen)
    fabric = None
    if args.fabric:
        fabric = FabricConfig(queue_dir=args.fabric, workers=max(args.workers, 1))
    service = ExperimentService(
        cache=ResultCache(directory=args.cache_dir),
        workers=args.workers,
        accounts=ClientAccounts(rate_per_s=args.rate, burst=args.burst,
                                budget_simulated_s=args.budget),
        ledger=Ledger(directory=args.ledger_dir),
        fabric=fabric,
    )
    server = ExperimentServer(service, host=host, port=port).start()
    print(f"repro service listening on http://{server.address}", flush=True)
    print("endpoints: POST /v1/evaluate, POST /v1/sweeps, "
          "GET /v1/results/KEY, GET /v1/runs/ID, GET /metrics", flush=True)
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    try:
        stop.wait()
    finally:
        print("draining...", flush=True)
        server.stop()
    return 0


def _submit_local(args: argparse.Namespace, documents: list) -> int:
    import json as _json

    from repro.exec.cache import ResultCache
    from repro.service import ExperimentService

    service = ExperimentService(cache=ResultCache(directory=args.cache_dir),
                                workers=args.workers)
    try:
        ticket = service.submit(documents, client=args.client)
        results = {}
        failed = {}
        for key in dict.fromkeys(ticket.keys):
            value = service.wait(key, timeout_s=args.wait)
            if value is not None:
                results[key] = value.to_wire()
            else:
                failed[key] = service.error(key) or service.status(key)
        doc = ticket.to_dict()
        doc.update({"results": results, "complete": not failed})
        if failed:
            doc["errors"] = failed
        print(_json.dumps(doc, indent=2, sort_keys=True))
        return 1 if failed else 0
    finally:
        service.close()


def _cmd_submit(args: argparse.Namespace) -> int:
    import json as _json
    import time as _time

    documents = _load_wire_documents(args.spec)
    if args.local:
        return _submit_local(args, documents)
    if not args.server:
        print("repro submit needs --server URL (or --local)")
        return 2
    base = args.server.rstrip("/")
    if len(documents) == 1:
        body = _json.dumps({"spec": documents[0], "wait_s": args.wait})
        status, doc = _service_request(base + "/v1/evaluate",
                                       data=body.encode("utf-8"),
                                       client=args.client,
                                       timeout=args.wait + 30.0)
        print(_json.dumps(doc, indent=2, sort_keys=True))
        return 0 if status == 200 else 3 if status == 202 else 1
    body = _json.dumps({"specs": documents})
    status, doc = _service_request(base + "/v1/sweeps",
                                   data=body.encode("utf-8"),
                                   client=args.client)
    if status != 202:
        print(_json.dumps(doc, indent=2, sort_keys=True))
        return 1
    sweep_id = doc["sweep_id"]
    deadline = _time.monotonic() + args.wait
    while True:
        status, doc = _service_request(f"{base}/v1/sweeps/{sweep_id}",
                                       client=args.client)
        if status != 200:
            print(_json.dumps(doc, indent=2, sort_keys=True))
            return 1
        if doc.get("complete"):
            print(_json.dumps(doc, indent=2, sort_keys=True))
            return 1 if doc.get("failed") else 0
        if _time.monotonic() >= deadline:
            print(_json.dumps(doc, indent=2, sort_keys=True))
            return 3
        _time.sleep(0.2)


def _cmd_fetch(args: argparse.Namespace) -> int:
    import json as _json

    base = args.server.rstrip("/")
    path = f"/v1/runs/{args.key}" if args.run else f"/v1/results/{args.key}"
    status, doc = _service_request(base + path)
    print(_json.dumps(doc, indent=2, sort_keys=True))
    if status == 200:
        return 0
    if status == 202:
        return 3
    return 1


_HANDLERS = {
    "table1": _cmd_table1,
    "sprint": _cmd_sprint,
    "sweep": _cmd_sweep,
    "network": _cmd_network,
    "thermal": _cmd_thermal,
    "duration": _cmd_duration,
    "report": _cmd_report,
    "compare": _cmd_compare,
    "regress": _cmd_regress,
    "cache": _cmd_cache,
    "backends": _cmd_backends,
    "worker": _cmd_worker,
    "fabric": _cmd_fabric,
    "watch": _cmd_watch,
    "figure": _cmd_figure,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "fetch": _cmd_fetch,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
