"""System and interconnect configuration (paper Table 1).

The defaults reproduce Table 1 of the paper exactly:

====================  ====================  ===================  ================
core count / freq.    16, 2 GHz             topology             4 x 4 2D mesh
L1 I & D cache        private, 64 KB        router pipeline      classic 5-stage
L2 cache              shared & tiled, 4 MB  VC count             4 VCs per port
cacheline size        64 B                  buffer depth         4 buffers per VC
memory                1 GB DRAM             packet length        5 flits
cache coherency       MESI protocol         flit length          16 bytes
====================  ====================  ===================  ================
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class NoCConfig:
    """Interconnect configuration (right column of Table 1)."""

    mesh_width: int = 4
    mesh_height: int = 4
    router_pipeline_stages: int = 5
    vcs_per_port: int = 4
    buffers_per_vc: int = 4
    packet_length_flits: int = 5
    flit_length_bytes: int = 16

    def __post_init__(self) -> None:
        if self.mesh_width < 1 or self.mesh_height < 1:
            raise ValueError("mesh dimensions must be positive")
        if self.vcs_per_port < 1:
            raise ValueError("need at least one virtual channel per port")
        if self.buffers_per_vc < 1:
            raise ValueError("need at least one buffer slot per VC")
        if self.packet_length_flits < 1:
            raise ValueError("packets must carry at least one flit")
        if self.router_pipeline_stages < 2:
            raise ValueError("router pipeline must have at least 2 stages")

    @property
    def node_count(self) -> int:
        return self.mesh_width * self.mesh_height

    @property
    def flit_width_bits(self) -> int:
        return self.flit_length_bytes * 8


@dataclass(frozen=True)
class SystemConfig:
    """Full CMP system configuration (Table 1)."""

    core_count: int = 16
    core_frequency_ghz: float = 2.0
    l1_cache_kb: int = 64
    l2_cache_mb: int = 4
    cacheline_bytes: int = 64
    memory_gb: int = 1
    coherency_protocol: str = "MESI"
    noc: NoCConfig = field(default_factory=NoCConfig)
    master_node: int = 0

    def __post_init__(self) -> None:
        if self.core_count != self.noc.node_count:
            raise ValueError(
                f"core count {self.core_count} does not tile the "
                f"{self.noc.mesh_width}x{self.noc.mesh_height} mesh"
            )
        if not 0 <= self.master_node < self.core_count:
            raise ValueError("master node must be a valid node id")
        if self.core_frequency_ghz <= 0:
            raise ValueError("core frequency must be positive")

    @property
    def l2_bank_kb(self) -> int:
        """Per-tile L2 bank size for the shared, tiled LLC."""
        return self.l2_cache_mb * 1024 // self.core_count


def default_config() -> SystemConfig:
    """The paper's Table 1 configuration."""
    return SystemConfig()


def table1_rows() -> list[tuple[str, str, str, str]]:
    """Table 1 contents as printable rows (used by the Table 1 bench)."""
    cfg = default_config()
    return [
        (
            "core count/freq.",
            f"{cfg.core_count}, {cfg.core_frequency_ghz:g}GHz",
            "topology",
            f"{cfg.noc.mesh_width} x {cfg.noc.mesh_height} 2D Mesh",
        ),
        (
            "L1 I & D cache",
            f"private, {cfg.l1_cache_kb}KB",
            "router pipeline",
            f"classic {cfg.noc.router_pipeline_stages}-stage",
        ),
        (
            "L2 cache",
            f"shared & tiled, {cfg.l2_cache_mb}MB",
            "VC count",
            f"{cfg.noc.vcs_per_port} VCs per port",
        ),
        (
            "cacheline size",
            f"{cfg.cacheline_bytes}B",
            "buffer depth",
            f"{cfg.noc.buffers_per_vc} buffers per VC",
        ),
        (
            "memory",
            f"{cfg.memory_gb}GB DRAM",
            "packet length",
            f"{cfg.noc.packet_length_flits} flits",
        ),
        (
            "cache-coherency",
            f"{cfg.coherency_protocol} protocol",
            "flit length",
            f"{cfg.noc.flit_length_bytes} bytes",
        ),
    ]
