"""Thermal models: RC grid (HotSpot substitute), phase-change-material
sprint budget, and sprint-duration analysis."""

from repro.thermal.floorplan import (
    power_density_summary,
    sprint_tile_powers,
    uniform_tile_powers,
)
from repro.thermal.grid import (
    AMBIENT_K,
    DEFAULT_THERMAL_PARAMS,
    ThermalGrid,
    ThermalParams,
)
from repro.thermal.pcm import (
    DEFAULT_PCM,
    PCMParams,
    SprintPhases,
    sprint_duration,
    sprint_phases,
    temperature_timeline,
)
from repro.thermal.sprint_duration import (
    SprintDurationResult,
    duration_gain,
    useful_sprint_duration,
)
from repro.thermal.transient_sprint import (
    SprintTransient,
    SprintTransientResult,
    TransientSample,
)

__all__ = [
    "power_density_summary",
    "sprint_tile_powers",
    "uniform_tile_powers",
    "AMBIENT_K",
    "DEFAULT_THERMAL_PARAMS",
    "ThermalGrid",
    "ThermalParams",
    "PCMParams",
    "DEFAULT_PCM",
    "SprintPhases",
    "sprint_duration",
    "sprint_phases",
    "temperature_timeline",
    "SprintDurationResult",
    "duration_gain",
    "useful_sprint_duration",
    "SprintTransient",
    "SprintTransientResult",
    "TransientSample",
]
