"""Sprint-duration analysis (Section 4.4).

NoC-sprinting slows thermal-capacitance depletion by powering only the
resources a workload actually needs, which stretches every phase of the
sprint.  The *useful* sprint duration is additionally capped by how long
the computation burst actually lasts: once the burst completes the chip
returns to nominal operation regardless of remaining thermal headroom, so
benchmarks whose optimal level is full sprint see no duration gain, while
low-level sprints bank large thermal savings of which the workload consumes
only part.  Averaging the per-benchmark gains reproduces the paper's
"+55.4 % average sprint duration" at the reported scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.thermal.pcm import DEFAULT_PCM, PCMParams, sprint_duration


@dataclass(frozen=True)
class SprintDurationResult:
    """Thermal budget vs workload need for one sprint."""

    thermal_duration_s: float
    burst_duration_s: float

    @property
    def useful_duration_s(self) -> float:
        """The sprint actually sustained: thermal budget or burst end."""
        return min(self.thermal_duration_s, self.burst_duration_s)

    @property
    def thermally_capped(self) -> bool:
        """True when the chip overheats before the burst completes."""
        return self.thermal_duration_s < self.burst_duration_s

    @property
    def burst_completed(self) -> bool:
        return self.burst_duration_s <= self.thermal_duration_s


def useful_sprint_duration(
    sprint_power_w: float,
    burst_duration_s: float,
    params: PCMParams = DEFAULT_PCM,
) -> SprintDurationResult:
    """Combine the PCM thermal budget with the workload burst length."""
    if burst_duration_s < 0:
        raise ValueError("burst duration must be non-negative")
    return SprintDurationResult(
        thermal_duration_s=sprint_duration(sprint_power_w, params),
        burst_duration_s=burst_duration_s,
    )


def duration_gain(
    noc_power_w: float,
    full_power_w: float,
    noc_burst_s: float,
    full_burst_s: float,
    params: PCMParams = DEFAULT_PCM,
) -> float:
    """Ratio of useful sprint durations, NoC-sprinting over full-sprinting.

    Both schemes run the same burst; full-sprinting executes it faster but
    burns thermal headroom quickly, NoC-sprinting runs at the workload's
    optimal level.  A ratio of 1.554 corresponds to the paper's +55.4 %.
    """
    noc = useful_sprint_duration(noc_power_w, noc_burst_s, params)
    full = useful_sprint_duration(full_power_w, full_burst_s, params)
    full_useful = full.useful_duration_s
    if full_useful <= 0:
        raise ValueError("full-sprint useful duration must be positive")
    noc_useful = noc.useful_duration_s
    if math.isinf(noc_useful):
        # thermally unconstrained: the whole burst is sustained
        noc_useful = noc.burst_duration_s
    return noc_useful / full_useful
