"""Tile power maps for the thermal model.

Bridges the chip power model, the sprint topology and the (optional)
thermal-aware floorplan into the per-tile power vector the RC grid wants.
The paper's Figure 12 abstraction: the 16-core CMP is 16 blocks in a 2D
grid, each block holding an Alpha CPU, its local caches and its network
resources.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.floorplanning import Floorplan
from repro.core.topological import SprintTopology
from repro.power.chip_power import ChipPowerModel


def sprint_tile_powers(
    topology: SprintTopology,
    chip_model: ChipPowerModel | None = None,
    floorplan: Floorplan | None = None,
) -> list[float]:
    """Per-physical-tile watts for a sprint level (row-major).

    With no floorplan, logical node k heats physical tile k (the identity
    placement of Figure 12a/b); with a thermal-aware floorplan the active
    nodes heat their reallocated physical slots (Figure 12c).
    """
    model = chip_model or ChipPowerModel(topology.width * topology.height)
    slot_of = None if floorplan is None else (lambda node: floorplan.position[node])
    return model.tile_powers(topology.active_nodes, slot_of)


def uniform_tile_powers(total_power_w: float, tiles: int = 16) -> list[float]:
    """A uniformly-spread power map (full-sprinting's Figure 12a)."""
    if tiles < 1:
        raise ValueError("need at least one tile")
    return [total_power_w / tiles] * tiles


def power_density_summary(tile_powers: Sequence[float]) -> dict[str, float]:
    """Quick statistics used by the thermal benches."""
    total = float(sum(tile_powers))
    return {
        "total_w": total,
        "max_tile_w": float(max(tile_powers)),
        "min_tile_w": float(min(tile_powers)),
        "mean_tile_w": total / len(tile_powers),
    }
