"""Transient sprint simulation: the spatial grid coupled to the PCM node.

The steady-state grid (Figure 12) and the lumped PCM timeline (Figure 1)
are two views of the same sprint; this module couples them.  The PCM +
package is a lumped thermal node with a latent-heat plateau:

    C_pcm dT/dt = P_chip - (T - T_amb) / R_sink        (sensible phases)
    T = T_melt while 0 < melted energy < E_latent      (melt plateau)

and at every sample the die's spatial profile rides on the PCM node: the
grid is solved with the PCM temperature as its boundary, so the output
trace carries both the Figure 1 plateau *and* the Figure 12 hotspot peak
at each instant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.telemetry import active as _active_telemetry
from repro.thermal.grid import ThermalGrid
from repro.thermal.pcm import DEFAULT_PCM, PCMParams


def _sample_pcm(tel, span_id, t, temperature, melted_fraction, phase) -> None:
    """One telemetry sample of the PCM node: headroom gauge + trace point."""
    headroom = round(1.0 - melted_fraction, 6)
    tel.metrics.gauge(
        "pcm_thermal_headroom",
        "Unmelted fraction of the PCM latent-heat budget (0..1).",
    ).set(headroom)
    tel.tracer.sample(
        {
            "t": round(t, 6),
            "pcm_temperature_k": round(temperature, 4),
            "melted_fraction": round(melted_fraction, 6),
            "phase": phase,
        },
        parent=span_id,
    )


@dataclass(frozen=True)
class TransientSample:
    """One instant of a transient sprint."""

    time_s: float
    pcm_temperature_k: float
    peak_die_temperature_k: float
    melted_fraction: float
    phase: str  # "heating", "melting", "post-melt", "limit"


@dataclass
class SprintTransientResult:
    """A transient sprint trace."""

    samples: list[TransientSample] = field(default_factory=list)
    reached_limit_at_s: float | None = None
    # (time_s, stage index entered) for each staged retreat taken
    retreats: list[tuple[float, int]] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return self.samples[-1].time_s if self.samples else 0.0

    @property
    def peak_die_temperature_k(self) -> float:
        return max(s.peak_die_temperature_k for s in self.samples)

    def phase_boundaries(self) -> dict[str, float]:
        """First time each phase is entered."""
        boundaries: dict[str, float] = {}
        for sample in self.samples:
            boundaries.setdefault(sample.phase, sample.time_s)
        return boundaries


class SprintTransient:
    """Integrate a sprint's thermal trajectory with spatial resolution."""

    def __init__(
        self,
        grid: ThermalGrid | None = None,
        pcm: PCMParams = DEFAULT_PCM,
        sink_resistance_k_per_w: float | None = None,
        pcm_capacitance_j_per_k: float | None = None,
    ):
        self.grid = grid or ThermalGrid(4, 4, 4)
        self.pcm = pcm
        # by default the sink removes exactly the sustainable power at the
        # melt temperature -- consistent with the lumped PCM model
        self.sink_resistance = sink_resistance_k_per_w or (
            (pcm.melt_temperature_k - pcm.start_temperature_k)
            / pcm.sustainable_power_w
        )
        self.pcm_capacitance = pcm_capacitance_j_per_k or pcm.sensible_capacitance_j_per_k

    def run(
        self,
        tile_powers: Sequence[float],
        duration_s: float,
        dt_s: float = 2e-3,
        samples: int = 60,
        telemetry=None,
    ) -> SprintTransientResult:
        """Simulate a sprint at constant tile powers.

        Stops early when the PCM node hits the max die temperature (the
        forced single-core fallback of Figure 1).  ``telemetry`` (a
        :class:`~repro.telemetry.Telemetry` bundle) records a
        ``thermal_sprint`` span with PCM-headroom samples at the trace's
        own sample cadence.
        """
        if duration_s <= 0 or dt_s <= 0:
            raise ValueError("need positive duration and dt")
        tel = _active_telemetry(telemetry)
        total_power = float(sum(tile_powers))
        # the spatial offset of the die's hotspot above the PCM/boundary
        # node is load-dependent but time-invariant (linear RC): solve once
        params = self.grid.params
        die_profile = self.grid.steady_state(tile_powers)
        hotspot_offset = float(die_profile.max()) - params.ambient_k - (
            self.grid.spreader_temperature(tile_powers) - params.ambient_k
        )

        span = (
            tel.tracer.span(
                "thermal_sprint", staged=False,
                power_w=round(total_power, 3), duration_s=duration_s,
            )
            if tel is not None
            else None
        )
        result = SprintTransientResult()
        temperature = self.pcm.start_temperature_k
        melted_j = 0.0
        steps = int(round(duration_s / dt_s))
        sample_every = max(1, steps // samples)
        for step in range(steps + 1):
            t = step * dt_s
            if temperature < self.pcm.melt_temperature_k and melted_j == 0.0:
                phase = "heating"
            elif melted_j < self.pcm.latent_energy_j:
                phase = "melting"
            elif temperature < self.pcm.max_temperature_k:
                phase = "post-melt"
            else:
                phase = "limit"

            if step % sample_every == 0 or phase == "limit":
                # spreader rise follows the PCM node during a transient
                global_rise = temperature - params.ambient_k
                peak = params.ambient_k + global_rise + hotspot_offset
                melted_fraction = min(1.0, melted_j / self.pcm.latent_energy_j)
                result.samples.append(
                    TransientSample(
                        time_s=t,
                        pcm_temperature_k=temperature,
                        peak_die_temperature_k=peak,
                        melted_fraction=melted_fraction,
                        phase=phase,
                    )
                )
                if tel is not None:
                    _sample_pcm(tel, span.id, t, temperature,
                                melted_fraction, phase)
            if phase == "limit":
                result.reached_limit_at_s = t
                break

            removed = (temperature - self.pcm.start_temperature_k) / self.sink_resistance
            net = total_power - removed
            if phase == "melting" and net > 0:
                melted_j += net * dt_s  # latent heat absorbs the excess
            else:
                temperature += net * dt_s / self.pcm_capacitance
                temperature = max(temperature, self.pcm.start_temperature_k)
                if temperature >= self.pcm.melt_temperature_k and melted_j < self.pcm.latent_energy_j:
                    temperature = self.pcm.melt_temperature_k
        if span is not None:
            span.annotate(
                duration_sustained_s=round(result.duration_s, 6),
                reached_limit=result.reached_limit_at_s is not None,
            )
            span.end()
        return result

    def run_staged(
        self,
        stage_tile_powers: Sequence[Sequence[float]],
        duration_s: float,
        dt_s: float = 2e-3,
        samples: int = 60,
        telemetry=None,
    ) -> SprintTransientResult:
        """Simulate a sprint that *retreats* through power stages.

        ``stage_tile_powers`` is a descending ladder of tile-power vectors
        (e.g. full sprint region, half region, nominal).  Whenever the PCM
        node reaches the max die temperature the sprint drops to the next
        stage instead of aborting; each retreat is recorded in
        ``result.retreats``.  The run only stops early when the *last*
        stage still cannot hold the thermal limit -- the staged-retreat
        counterpart of the all-or-nothing stop in :meth:`run`.
        """
        if duration_s <= 0 or dt_s <= 0:
            raise ValueError("need positive duration and dt")
        if not stage_tile_powers:
            raise ValueError("need at least one power stage")
        tel = _active_telemetry(telemetry)
        params = self.grid.params

        def stage_state(tile_powers):
            total = float(sum(tile_powers))
            die = self.grid.steady_state(tile_powers)
            offset = float(die.max()) - params.ambient_k - (
                self.grid.spreader_temperature(tile_powers) - params.ambient_k
            )
            return total, offset

        stage = 0
        total_power, hotspot_offset = stage_state(stage_tile_powers[0])
        span = (
            tel.tracer.span(
                "thermal_sprint", staged=True,
                stages=len(stage_tile_powers), duration_s=duration_s,
            )
            if tel is not None
            else None
        )
        result = SprintTransientResult()
        temperature = self.pcm.start_temperature_k
        melted_j = 0.0
        steps = int(round(duration_s / dt_s))
        sample_every = max(1, steps // samples)
        for step in range(steps + 1):
            t = step * dt_s
            if temperature < self.pcm.melt_temperature_k and melted_j == 0.0:
                phase = "heating"
            elif melted_j < self.pcm.latent_energy_j:
                phase = "melting"
            elif temperature < self.pcm.max_temperature_k:
                phase = "post-melt"
            else:
                phase = "limit"

            if step % sample_every == 0 or phase == "limit":
                global_rise = temperature - params.ambient_k
                peak = params.ambient_k + global_rise + hotspot_offset
                melted_fraction = min(1.0, melted_j / self.pcm.latent_energy_j)
                result.samples.append(
                    TransientSample(
                        time_s=t,
                        pcm_temperature_k=temperature,
                        peak_die_temperature_k=peak,
                        melted_fraction=melted_fraction,
                        phase=phase,
                    )
                )
                if tel is not None:
                    _sample_pcm(tel, span.id, t, temperature,
                                melted_fraction, phase)
            if phase == "limit":
                if stage + 1 < len(stage_tile_powers):
                    # staged retreat: drop to the next (lower) power stage
                    # and keep integrating; the stage gets one step to
                    # prove it can cool before the next retreat fires
                    stage += 1
                    total_power, hotspot_offset = stage_state(
                        stage_tile_powers[stage]
                    )
                    result.retreats.append((t, stage))
                    if tel is not None:
                        tel.metrics.counter(
                            "thermal_retreats_total",
                            "Staged power retreats during transient sprints.",
                        ).inc()
                        tel.tracer.event(
                            "thermal_retreat", parent=span.id,
                            t=round(t, 6), stage=stage,
                            power_w=round(total_power, 3),
                        )
                else:
                    result.reached_limit_at_s = t
                    break

            removed = (temperature - self.pcm.start_temperature_k) / self.sink_resistance
            net = total_power - removed
            if phase == "melting" and net > 0:
                melted_j += net * dt_s
            else:
                temperature += net * dt_s / self.pcm_capacitance
                temperature = max(temperature, self.pcm.start_temperature_k)
                if temperature >= self.pcm.melt_temperature_k and melted_j < self.pcm.latent_energy_j:
                    temperature = self.pcm.melt_temperature_k
        if span is not None:
            span.annotate(
                retreats=len(result.retreats),
                reached_limit=result.reached_limit_at_s is not None,
            )
            span.end()
        return result
