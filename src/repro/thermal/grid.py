"""RC thermal grid model (HotSpot substitute).

The die is a ``width x height`` grid of tiles (the paper abstracts the
16-core CMP as 16 blocks, each holding a CPU, its caches and its network
resources); each tile is refined into ``cells_per_tile x cells_per_tile``
grid cells.  Heat flows laterally between adjacent cells through silicon,
vertically from every cell to the ambient through the package, and --
crucially for hotspot formation -- the die perimeter gets extra conductance
to ambient because heat also spreads sideways into the heat spreader and
package.  Under uniform power this produces the centre-peaked profile of
the paper's Figure 12a.

Steady state solves the sparse linear system ``G T = P + G_amb T_amb``;
the transient solver integrates ``C dT/dt = P - G (T - ...)`` explicitly
and is used for the sprint-phase timeline of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.sparse import lil_matrix
from scipy.sparse.linalg import spsolve

AMBIENT_K = 318.0  # 45 C, HotSpot's default ambient


@dataclass(frozen=True)
class ThermalParams:
    """Grid conductances and cell heat capacity.

    Calibrated (see ``tools/calibrate_thermal.py``) so that the Figure 12
    scenarios land near the paper's peaks: uniform full-sprint power
    -> ~358 K, clustered 4-core sprint -> ~348 K, floorplanned (scattered)
    4-core sprint -> ~344 K.
    """

    lateral_conductance_w_per_k: float = 0.048116
    vertical_conductance_w_per_k: float = 0.023774
    edge_extra_conductance_w_per_k: float = 0.0041877
    spreader_resistance_k_per_w: float = 0.077035
    cell_heat_capacity_j_per_k: float = 0.002
    ambient_k: float = AMBIENT_K


DEFAULT_THERMAL_PARAMS = ThermalParams()


class ThermalGrid:
    """Finite-difference RC model of a tiled die."""

    def __init__(
        self,
        width_tiles: int = 4,
        height_tiles: int = 4,
        cells_per_tile: int = 4,
        params: ThermalParams = DEFAULT_THERMAL_PARAMS,
    ):
        if width_tiles < 1 or height_tiles < 1:
            raise ValueError("need at least one tile in each dimension")
        if cells_per_tile < 1:
            raise ValueError("cells_per_tile must be positive")
        self.width_tiles = width_tiles
        self.height_tiles = height_tiles
        self.cells_per_tile = cells_per_tile
        self.params = params
        self.nx = width_tiles * cells_per_tile
        self.ny = height_tiles * cells_per_tile
        self._conductance = self._build_conductance_matrix()
        self._ambient_conductance = self._build_ambient_vector()

    # ------------------------------------------------------------------
    def _cell_index(self, cx: int, cy: int) -> int:
        return cy * self.nx + cx

    def _build_ambient_vector(self) -> np.ndarray:
        p = self.params
        g_amb = np.full(self.nx * self.ny, p.vertical_conductance_w_per_k)
        for cy in range(self.ny):
            for cx in range(self.nx):
                if cx in (0, self.nx - 1) or cy in (0, self.ny - 1):
                    g_amb[self._cell_index(cx, cy)] += p.edge_extra_conductance_w_per_k
        return g_amb

    def _build_conductance_matrix(self):
        p = self.params
        n = self.nx * self.ny
        matrix = lil_matrix((n, n))
        for cy in range(self.ny):
            for cx in range(self.nx):
                i = self._cell_index(cx, cy)
                for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    ox, oy = cx + dx, cy + dy
                    if 0 <= ox < self.nx and 0 <= oy < self.ny:
                        j = self._cell_index(ox, oy)
                        matrix[i, i] += p.lateral_conductance_w_per_k
                        matrix[i, j] -= p.lateral_conductance_w_per_k
        return matrix.tocsr()

    def _power_per_cell(self, tile_powers: Sequence[float]) -> np.ndarray:
        expected = self.width_tiles * self.height_tiles
        if len(tile_powers) != expected:
            raise ValueError(f"need {expected} tile powers, got {len(tile_powers)}")
        c = self.cells_per_tile
        per_cell = np.zeros(self.nx * self.ny)
        for ty in range(self.height_tiles):
            for tx in range(self.width_tiles):
                share = tile_powers[ty * self.width_tiles + tx] / (c * c)
                for oy in range(c):
                    for ox in range(c):
                        per_cell[self._cell_index(tx * c + ox, ty * c + oy)] = share
        return per_cell

    # ------------------------------------------------------------------
    def spreader_temperature(self, tile_powers: Sequence[float]) -> float:
        """Heat-spreader temperature: ambient plus the global power rise.

        The spreader couples every cell to the *total* chip power (HotSpot's
        spreader/sink layers); it is why a full sprint runs hotter than a
        4-core sprint even at identical per-tile power density.
        """
        total = float(sum(tile_powers))
        return self.params.ambient_k + self.params.spreader_resistance_k_per_w * total

    def steady_state(self, tile_powers: Sequence[float]) -> np.ndarray:
        """Steady-state cell temperatures (kelvin), shape (ny, nx)."""
        power = self._power_per_cell(tile_powers)
        from scipy.sparse import diags

        spreader_k = self.spreader_temperature(tile_powers)
        system = self._conductance + diags(self._ambient_conductance)
        rhs = power + self._ambient_conductance * spreader_k
        temps = spsolve(system.tocsr(), rhs)
        return temps.reshape(self.ny, self.nx)

    def transient(
        self,
        tile_powers: Sequence[float],
        duration_s: float,
        dt_s: float = 1e-3,
        initial: np.ndarray | None = None,
    ) -> np.ndarray:
        """Explicit transient integration; returns final temperatures."""
        if duration_s < 0 or dt_s <= 0:
            raise ValueError("need non-negative duration and positive dt")
        power = self._power_per_cell(tile_powers)
        c = self.params.cell_heat_capacity_j_per_k
        temps = (
            np.full(self.nx * self.ny, self.params.ambient_k)
            if initial is None
            else initial.reshape(-1).astype(float).copy()
        )
        steps = int(round(duration_s / dt_s))
        from scipy.sparse import diags

        system = self._conductance + diags(self._ambient_conductance)
        ambient_inflow = self._ambient_conductance * self.spreader_temperature(tile_powers)
        for _ in range(steps):
            flow = power + ambient_inflow - system.dot(temps)
            temps = temps + (dt_s / c) * flow
        return temps.reshape(self.ny, self.nx)

    # ------------------------------------------------------------------
    def peak_temperature(self, tile_powers: Sequence[float]) -> float:
        """Steady-state hotspot temperature (kelvin)."""
        return float(self.steady_state(tile_powers).max())

    def tile_temperatures(self, tile_powers: Sequence[float]) -> np.ndarray:
        """Steady-state mean temperature per tile, shape (H, W)."""
        cells = self.steady_state(tile_powers)
        c = self.cells_per_tile
        tiles = np.zeros((self.height_tiles, self.width_tiles))
        for ty in range(self.height_tiles):
            for tx in range(self.width_tiles):
                tiles[ty, tx] = cells[ty * c : (ty + 1) * c, tx * c : (tx + 1) * c].mean()
        return tiles
