"""Phase-change-material (PCM) sprint-thermal model.

Computational sprinting places a phase-change material close to the die as
transient heat storage: while the material melts, its latent heat absorbs
the sprint's excess power at (nearly) constant temperature.  Figure 1's
timeline has three phases:

1. **Heating** -- die temperature rises from the start temperature to the
   PCM melting point; duration set by the sensible thermal capacitance.
2. **Melting** -- temperature plateaus at ``T_melt`` while the latent-heat
   budget is consumed; this is the phase that dominates sprint duration.
3. **Post-melt heating** -- temperature rises again until ``T_max``, when
   the system must drop back to single-core nominal operation.

Excess power is the sprint power minus what the steady cooling path can
remove; phase durations are (energy budget) / (excess power).  The default
parameters are calibrated so a full 16-core sprint lasts ~1 s, the paper's
(and Raghavan et al.'s) worst-case assumption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class PCMParams:
    """PCM and package thermal constants."""

    start_temperature_k: float = 318.0
    melt_temperature_k: float = 331.0  # paraffin-class PCM, ~58 C
    max_temperature_k: float = 358.0  # die limit before forced shutdown
    latent_energy_j: float = 113.0  # PCM mass x latent heat of fusion
    sensible_capacitance_j_per_k: float = 0.5  # die + spreader
    sustainable_power_w: float = 40.6  # what the cooling removes continuously

    def __post_init__(self) -> None:
        if not (
            self.start_temperature_k
            < self.melt_temperature_k
            < self.max_temperature_k
        ):
            raise ValueError("need start < melt < max temperatures")
        if self.latent_energy_j <= 0 or self.sensible_capacitance_j_per_k <= 0:
            raise ValueError("energy budgets must be positive")


DEFAULT_PCM = PCMParams()


@dataclass(frozen=True)
class SprintPhases:
    """Durations (seconds) of the three sprint phases of Figure 1."""

    heat_to_melt_s: float
    melting_s: float
    melt_to_max_s: float

    @property
    def total_s(self) -> float:
        return self.heat_to_melt_s + self.melting_s + self.melt_to_max_s


def sprint_phases(sprint_power_w: float, params: PCMParams = DEFAULT_PCM) -> SprintPhases:
    """Phase durations for a sprint dissipating ``sprint_power_w``.

    If the sprint power does not exceed the sustainable cooling power the
    sprint is thermally unconstrained and every phase is infinite.
    """
    if sprint_power_w <= 0:
        raise ValueError("sprint power must be positive")
    excess = sprint_power_w - params.sustainable_power_w
    if excess <= 0:
        return SprintPhases(math.inf, math.inf, math.inf)
    c = params.sensible_capacitance_j_per_k
    return SprintPhases(
        heat_to_melt_s=c * (params.melt_temperature_k - params.start_temperature_k) / excess,
        melting_s=params.latent_energy_j / excess,
        melt_to_max_s=c * (params.max_temperature_k - params.melt_temperature_k) / excess,
    )


def sprint_duration(sprint_power_w: float, params: PCMParams = DEFAULT_PCM) -> float:
    """Total thermally-allowed sprint duration (seconds)."""
    return sprint_phases(sprint_power_w, params).total_s


def temperature_timeline(
    sprint_power_w: float,
    params: PCMParams = DEFAULT_PCM,
    points_per_phase: int = 20,
    cooldown_s: float | None = None,
) -> list[tuple[float, float]]:
    """(time, temperature) samples tracing Figure 1's sprint curve.

    Phases 1 and 3 are linear temperature ramps; phase 2 is the constant-
    temperature melt plateau.  If ``cooldown_s`` is given an exponential
    cool-down tail back towards the start temperature is appended.
    """
    phases = sprint_phases(sprint_power_w, params)
    if math.isinf(phases.total_s):
        raise ValueError("sprint is thermally unconstrained; no finite timeline")
    samples: list[tuple[float, float]] = []
    t = 0.0

    def ramp(duration: float, t0: float, temp_a: float, temp_b: float) -> None:
        for i in range(points_per_phase + 1):
            f = i / points_per_phase
            samples.append((t0 + f * duration, temp_a + f * (temp_b - temp_a)))

    ramp(phases.heat_to_melt_s, t, params.start_temperature_k, params.melt_temperature_k)
    t += phases.heat_to_melt_s
    ramp(phases.melting_s, t, params.melt_temperature_k, params.melt_temperature_k)
    t += phases.melting_s
    ramp(phases.melt_to_max_s, t, params.melt_temperature_k, params.max_temperature_k)
    t += phases.melt_to_max_s

    if cooldown_s:
        span = params.max_temperature_k - params.start_temperature_k
        tau = cooldown_s / 4.0
        for i in range(1, points_per_phase + 1):
            dt = cooldown_s * i / points_per_phase
            samples.append((t + dt, params.start_temperature_k + span * math.exp(-dt / tau)))
    return samples
