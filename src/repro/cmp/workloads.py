"""PARSEC 2.1 workload profiles (fitted to the published scaling shapes).

The paper runs the 13 PARSEC 2.1 multi-threaded benchmarks on gem5 and
reports (Figure 4) three characteristic scaling classes:

- **scalable** (blackscholes, bodytrack): execution time keeps dropping all
  the way to 16 cores, so their optimal sprint level is full sprint;
- **flat** (freqmine): dominated by its serial program, extra cores are
  wasted -- optimal level 1;
- **peaking** (vips, swaptions, and most of the rest): clear speedup over a
  small range, then thread scheduling, synchronization and interconnect
  spread overheads first erode and eventually *reverse* the gain.

The tables below are relative execution times at the five sprint levels,
normalized to single-core.  They are synthetic fits, not instruction
traces: values are chosen to reproduce the per-benchmark shape class, the
per-benchmark optimal levels, and the paper's headline averages (NoC-sprint
3.6x vs full-sprint 1.9x mean speedup in Figure 7; see EXPERIMENTS.md for
the fitted-vs-paper numbers).  Injection rates stay below 0.3 flits/cycle,
matching the paper's observation that PARSEC never saturates the mesh.
"""

from __future__ import annotations

from repro.cmp.perf_model import BenchmarkProfile

#: Single-core duration of the computation burst each benchmark sprints
#: through, seconds.  One global constant (Section 4.4 analysis): bursts are
#: a few seconds of single-core work, so a well-chosen sprint level finishes
#: them within -- or slightly beyond -- the thermal budget.
SINGLE_CORE_BURST_S = 4.6

PARSEC_PROFILES: dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in (
        BenchmarkProfile(
            name="blackscholes",
            scaling={1: 1.0, 2: 0.52, 4: 0.270, 8: 0.155, 16: 0.114},
            comm_sensitivity=0.05,
            injection_rate=0.03,
        ),
        BenchmarkProfile(
            name="bodytrack",
            scaling={1: 1.0, 2: 0.53, 4: 0.280, 8: 0.165, 16: 0.119},
            comm_sensitivity=0.10,
            injection_rate=0.08,
        ),
        BenchmarkProfile(
            name="facesim",
            scaling={1: 1.0, 2: 0.52, 4: 0.263, 8: 0.320, 16: 1.50},
            comm_sensitivity=0.25,
            injection_rate=0.12,
        ),
        BenchmarkProfile(
            name="ferret",
            scaling={1: 1.0, 2: 0.53, 4: 0.270, 8: 0.340, 16: 1.45},
            comm_sensitivity=0.25,
            injection_rate=0.15,
        ),
        BenchmarkProfile(
            name="fluidanimate",
            scaling={1: 1.0, 2: 0.54, 4: 0.270, 8: 0.360, 16: 1.35},
            comm_sensitivity=0.30,
            injection_rate=0.12,
            traffic_pattern="neighbor",
        ),
        BenchmarkProfile(
            name="dedup",
            scaling={1: 1.0, 2: 0.55, 4: 0.278, 8: 0.370, 16: 1.50},
            comm_sensitivity=0.30,
            injection_rate=0.18,
        ),
        BenchmarkProfile(
            name="vips",
            scaling={1: 1.0, 2: 0.55, 4: 0.286, 8: 0.400, 16: 1.75},
            comm_sensitivity=0.25,
            injection_rate=0.14,
        ),
        BenchmarkProfile(
            name="swaptions",
            scaling={1: 1.0, 2: 0.54, 4: 0.278, 8: 0.380, 16: 1.62},
            comm_sensitivity=0.10,
            injection_rate=0.04,
        ),
        BenchmarkProfile(
            name="streamcluster",
            scaling={1: 1.0, 2: 0.513, 4: 0.560, 8: 0.900, 16: 1.80},
            comm_sensitivity=0.40,
            injection_rate=0.22,
        ),
        BenchmarkProfile(
            name="canneal",
            scaling={1: 1.0, 2: 0.526, 4: 0.580, 8: 0.950, 16: 1.90},
            comm_sensitivity=0.40,
            injection_rate=0.25,
        ),
        BenchmarkProfile(
            name="x264",
            scaling={1: 1.0, 2: 0.521, 4: 0.550, 8: 0.850, 16: 1.60},
            comm_sensitivity=0.20,
            injection_rate=0.10,
        ),
        BenchmarkProfile(
            name="raytrace",
            scaling={1: 1.0, 2: 0.541, 4: 0.600, 8: 1.000, 16: 2.00},
            comm_sensitivity=0.20,
            injection_rate=0.06,
        ),
        BenchmarkProfile(
            name="freqmine",
            scaling={1: 1.0, 2: 0.990, 4: 0.995, 8: 1.020, 16: 1.08},
            comm_sensitivity=0.10,
            injection_rate=0.02,
        ),
    )
}

#: The shape classes of Figure 4, for tests and the scaling bench.
SCALABLE_BENCHMARKS = ("blackscholes", "bodytrack")
FLAT_BENCHMARKS = ("freqmine",)
PEAKING_BENCHMARKS = tuple(
    name
    for name in PARSEC_PROFILES
    if name not in SCALABLE_BENCHMARKS + FLAT_BENCHMARKS
)


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a PARSEC benchmark profile by name."""
    try:
        return PARSEC_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PARSEC_PROFILES))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None


def all_profiles() -> list[BenchmarkProfile]:
    """Every PARSEC profile, in a stable order."""
    return [PARSEC_PROFILES[name] for name in sorted(PARSEC_PROFILES)]
