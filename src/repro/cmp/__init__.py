"""CMP workload substrate (gem5 + PARSEC 2.1 substitute): per-benchmark
scaling profiles, the execution-time model, and workload->NoC traffic."""

from repro.cmp.perf_model import (
    LEVEL_TOLERANCE,
    SPRINT_LEVELS,
    BenchmarkProfile,
    SprintDecision,
    profile_workload,
)
from repro.cmp.llc import LlcAccessStream, LlcArchitecture, home_bank
from repro.cmp.monitor import (
    OnlineParallelismMonitor,
    monitor_agrees_with_profile,
    noisy_profile_measure,
)
from repro.cmp.traffic_model import traffic_for_workload, traffic_spec_for_workload
from repro.cmp.workloads import (
    FLAT_BENCHMARKS,
    PARSEC_PROFILES,
    PEAKING_BENCHMARKS,
    SCALABLE_BENCHMARKS,
    SINGLE_CORE_BURST_S,
    all_profiles,
    get_profile,
)

__all__ = [
    "LEVEL_TOLERANCE",
    "SPRINT_LEVELS",
    "BenchmarkProfile",
    "SprintDecision",
    "profile_workload",
    "traffic_for_workload",
    "traffic_spec_for_workload",
    "FLAT_BENCHMARKS",
    "PARSEC_PROFILES",
    "PEAKING_BENCHMARKS",
    "SCALABLE_BENCHMARKS",
    "SINGLE_CORE_BURST_S",
    "all_profiles",
    "get_profile",
    "LlcAccessStream",
    "LlcArchitecture",
    "home_bank",
    "OnlineParallelismMonitor",
    "monitor_agrees_with_profile",
    "noisy_profile_measure",
]
