"""Per-benchmark NoC traffic derivation.

Builds the traffic generator a workload imposes on the network under a
given sprinting scheme, so the Figure 9/10 network comparisons drive the
cycle simulator with workload-specific loads:

- **NoC-sprinting**: the active endpoints are the convex Algorithm-1
  region at the workload's optimal level; only those routers are powered.
- **Full-sprinting**: the workload runs on all 16 cores, so every node
  injects and the whole network is powered.
"""

from __future__ import annotations

from repro.cmp.perf_model import BenchmarkProfile
from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.noc.spec import TrafficSpec
from repro.noc.traffic import TrafficGenerator


def traffic_spec_for_workload(
    profile: BenchmarkProfile,
    topology: SprintTopology,
    config: NoCConfig | None = None,
    seed: int = 0,
    endpoints: list[int] | None = None,
) -> TrafficSpec:
    """The declarative traffic spec a workload imposes on a topology.

    ``endpoints`` defaults to every active node of the topology (the cores
    actually running threads); pass a subset to model active cores mapped
    onto a larger powered network.  The spec is a picklable value, so it
    can be embedded in a :class:`~repro.noc.spec.SimulationSpec` and
    shipped to sweep workers or hashed into a cache key.
    """
    cfg = config or NoCConfig()
    nodes = list(topology.active_nodes) if endpoints is None else list(endpoints)
    for node in nodes:
        if not topology.is_active(node):
            raise ValueError(f"endpoint {node} is not powered in this topology")
    pattern = profile.traffic_pattern
    if pattern == "transpose" and len(nodes) not in (1, 4, 16):
        pattern = "uniform"  # transpose undefined off square counts
    if len(nodes) < 2:
        # a single-node "network" has no one to talk to
        return TrafficSpec(tuple(nodes), 0.0, cfg.packet_length_flits, "uniform", seed)
    return TrafficSpec(
        tuple(nodes),
        profile.injection_rate,
        cfg.packet_length_flits,
        pattern,
        seed,
    )


def traffic_for_workload(
    profile: BenchmarkProfile,
    topology: SprintTopology,
    config: NoCConfig | None = None,
    seed: int = 0,
    endpoints: list[int] | None = None,
) -> TrafficGenerator:
    """A live generator for :func:`traffic_spec_for_workload`'s spec."""
    return traffic_spec_for_workload(profile, topology, config, seed, endpoints).build()
