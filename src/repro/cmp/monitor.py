"""Run-time parallelism monitoring.

The paper assumes the optimal sprint level is "learnt in advance or
monitored during run-time execution" (Section 3.1, citing [6, 12]) and
uses off-line profiles in its evaluation.  This module supplies the
run-time half: an online monitor that discovers a workload's optimal
sprint level from noisy throughput observations, without a profile.

The search exploits the structure Figure 4 exhibits -- throughput is
unimodal in the core count (it rises to the workload's parallelism limit,
then falls) -- with a doubling hill-climb: trial-sprint each level in
{1, 2, 4, 8, 16}, keep doubling while the averaged throughput improves by
more than ``improvement_threshold``, and settle on the level before the
first non-improvement.  The threshold doubles as the power-aware tie rule:
a marginal gain is not worth doubling the active cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cmp.perf_model import SPRINT_LEVELS, BenchmarkProfile
from repro.util.rng import stream


@dataclass
class EpochSample:
    """One trial epoch's observation."""

    level: int
    throughput: float


@dataclass
class MonitorResult:
    """Outcome of an online calibration."""

    level: int
    samples: list[EpochSample] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.samples)

    def mean_throughput(self, level: int) -> float:
        values = [s.throughput for s in self.samples if s.level == level]
        if not values:
            raise ValueError(f"no samples at level {level}")
        return sum(values) / len(values)


class OnlineParallelismMonitor:
    """Discover the optimal sprint level from throughput observations."""

    def __init__(
        self,
        levels: Sequence[int] = SPRINT_LEVELS,
        improvement_threshold: float = 0.05,
        samples_per_level: int = 3,
    ):
        if not levels or list(levels) != sorted(levels):
            raise ValueError("levels must be a non-empty ascending sequence")
        if improvement_threshold < 0:
            raise ValueError("improvement threshold must be non-negative")
        if samples_per_level < 1:
            raise ValueError("need at least one sample per level")
        self.levels = list(levels)
        self.improvement_threshold = improvement_threshold
        self.samples_per_level = samples_per_level

    def calibrate(self, measure: Callable[[int], float]) -> MonitorResult:
        """Run trial epochs until the best level is found.

        ``measure(level)`` runs one epoch at the given sprint level and
        returns the observed throughput (work per second, any unit).
        """
        samples: list[EpochSample] = []

        def mean_at(level: int) -> float:
            values = []
            for _ in range(self.samples_per_level):
                value = measure(level)
                if value < 0:
                    raise ValueError("throughput observations must be non-negative")
                samples.append(EpochSample(level, value))
                values.append(value)
            return sum(values) / len(values)

        best_level = self.levels[0]
        best_throughput = mean_at(best_level)
        for level in self.levels[1:]:
            throughput = mean_at(level)
            if throughput > best_throughput * (1.0 + self.improvement_threshold):
                best_level, best_throughput = level, throughput
            else:
                break  # unimodal: past the peak (or gain too small to pay for)
        return MonitorResult(level=best_level, samples=samples)


def noisy_profile_measure(
    profile: BenchmarkProfile,
    noise: float = 0.03,
    seed: int = 0,
) -> Callable[[int], float]:
    """A ``measure`` callback backed by a profile, with observation noise.

    Models what a hardware monitor would report: the workload's true
    throughput at the trial level, perturbed by multiplicative Gaussian
    noise (sampling jitter, phase behaviour).
    """
    if noise < 0:
        raise ValueError("noise must be non-negative")
    rng = stream(seed, f"monitor-{profile.name}")

    def measure(level: int) -> float:
        true_throughput = profile.speedup(level)
        factor = max(0.0, rng.gauss(1.0, noise))
        return true_throughput * factor

    return measure


def monitor_agrees_with_profile(
    profile: BenchmarkProfile,
    noise: float = 0.03,
    seed: int = 0,
    **monitor_kwargs,
) -> bool:
    """Convenience: does online monitoring find the off-line optimum?"""
    monitor = OnlineParallelismMonitor(**monitor_kwargs)
    result = monitor.calibrate(noisy_profile_measure(profile, noise, seed))
    return result.level == profile.optimal_level()
