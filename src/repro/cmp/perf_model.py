"""CMP execution-time model (gem5 substitute).

The paper measures PARSEC execution time on gem5 at 1/2/4/8/16 cores
(Figure 4) and picks each benchmark's optimal sprint level by off-line
profiling.  Our substitute stores exactly that object: a per-benchmark
*scaling table* of relative execution times at the five sprint levels,
fitted to the published scaling shapes (saturating, peaking-then-degrading,
flat), plus a communication-sensitivity knob that couples the model to the
NoC's measured latency for the placement/routing ablations.

``relative_time(n) = table[n] * (1 + gamma * (latency_factor - 1))``

where ``latency_factor`` is the average network latency relative to the
reference interconnect for that core count (the compact Algorithm-1 region);
1.0 -- the default -- reproduces the table exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

SPRINT_LEVELS = (1, 2, 4, 8, 16)

#: Tolerance for the optimal-level rule: the smallest core count whose
#: execution time is within this fraction of the best is chosen, because a
#: smaller sprint burns less power for (practically) the same speed.
LEVEL_TOLERANCE = 0.02


@dataclass(frozen=True)
class BenchmarkProfile:
    """One multi-threaded workload's scaling behaviour and traffic."""

    name: str
    #: relative execution time at each sprint level, normalized to 1 core
    scaling: dict[int, float] = field(hash=False)
    #: fraction of run time sensitive to network latency (0..1)
    comm_sensitivity: float = 0.2
    #: average NoC injection rate while sprinting, flits/cycle/active node
    injection_rate: float = 0.1
    #: traffic pattern seen by the network
    traffic_pattern: str = "uniform"

    def __post_init__(self) -> None:
        if set(self.scaling) != set(SPRINT_LEVELS):
            raise ValueError(
                f"{self.name}: scaling table must cover levels {SPRINT_LEVELS}"
            )
        if abs(self.scaling[1] - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: scaling must be normalized to 1 core")
        if any(t <= 0 for t in self.scaling.values()):
            raise ValueError(f"{self.name}: execution times must be positive")
        if not 0.0 <= self.comm_sensitivity <= 1.0:
            raise ValueError(f"{self.name}: comm sensitivity must be in [0, 1]")
        if not 0.0 <= self.injection_rate <= 1.0:
            raise ValueError(f"{self.name}: injection rate must be in [0, 1]")

    # ------------------------------------------------------------------
    def relative_time(self, cores: int, latency_factor: float = 1.0) -> float:
        """Execution time at ``cores`` relative to single-core execution.

        ``latency_factor`` scales the communication-sensitive share of the
        run: >1 models a worse interconnect (e.g. scattered placement on a
        fully-powered mesh), <1 a better one.
        """
        if cores not in self.scaling:
            raise ValueError(
                f"{self.name}: no scaling point for {cores} cores "
                f"(levels: {sorted(self.scaling)})"
            )
        if latency_factor <= 0:
            raise ValueError("latency factor must be positive")
        penalty = 1.0 + self.comm_sensitivity * (latency_factor - 1.0)
        return self.scaling[cores] * max(penalty, 1e-9)

    def speedup(self, cores: int, latency_factor: float = 1.0) -> float:
        """Speedup over single-core nominal operation."""
        return 1.0 / self.relative_time(cores, latency_factor)

    def optimal_level(self, tolerance: float = LEVEL_TOLERANCE) -> int:
        """The workload's sprint level: smallest within tolerance of best.

        Mirrors the paper's off-line profiling with a power-aware tie rule:
        when several core counts are (nearly) equally fast, sprint to the
        smallest -- it dissipates the least power and heat.
        """
        best = min(self.scaling.values())
        for level in SPRINT_LEVELS:
            if self.scaling[level] <= best * (1.0 + tolerance):
                return level
        raise AssertionError("unreachable: the minimum is always in range")

    def saturates(self) -> bool:
        """True when adding cores beyond the optimum hurts performance."""
        opt = self.optimal_level()
        return self.scaling[16] > self.scaling[opt] * (1.0 + LEVEL_TOLERANCE)

    def interpolated_time(self, cores: float) -> float:
        """Log-linear interpolation between measured levels.

        Lets callers evaluate non-power-of-two core counts (used by the
        ablation that sweeps master placement with odd region sizes).
        """
        if cores < 1 or cores > max(SPRINT_LEVELS):
            raise ValueError(f"cores must be within [1, {max(SPRINT_LEVELS)}]")
        levels = sorted(self.scaling)
        for low, high in zip(levels, levels[1:]):
            if low <= cores <= high:
                if cores == low:
                    return self.scaling[low]
                f = (math.log2(cores) - math.log2(low)) / (
                    math.log2(high) - math.log2(low)
                )
                return self.scaling[low] ** (1 - f) * self.scaling[high] ** f
        return self.scaling[levels[-1]]


@dataclass(frozen=True)
class SprintDecision:
    """Outcome of profiling one workload for fine-grained sprinting."""

    profile: BenchmarkProfile
    level: int
    speedup_vs_nominal: float
    speedup_full_sprint: float

    @property
    def beats_full_sprint(self) -> bool:
        return self.speedup_vs_nominal > self.speedup_full_sprint


def profile_workload(profile: BenchmarkProfile, core_count: int = 16) -> SprintDecision:
    """Off-line profiling: pick the optimal sprint level for a workload."""
    level = profile.optimal_level()
    return SprintDecision(
        profile=profile,
        level=level,
        speedup_vs_nominal=profile.speedup(level),
        speedup_full_sprint=profile.speedup(core_count),
    )
