"""Last-level-cache architectures and their network traffic (Section 3.4).

The paper's gating scheme works out of the box for private per-core LLCs,
a centralized shared LLC, and NUCA (separately-networked) LLCs; only the
tile-interleaved shared LLC needs bypass paths.  This module models the
access streams each architecture puts on the NoC so the trade-off can be
measured:

- ``PRIVATE``      LLC hits are local; only misses travel, to the memory
                   controller next to the master node.
- ``CENTRALIZED``  every LLC access crosses the network to the master tile.
- ``TILED``        accesses interleave across all tiles' banks, including
                   dark ones -- the case that needs bypass paths.

(NUCA with its own separate network never touches the sprint NoC at all,
so it has no traffic model here.)
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from repro.util.rng import stream


class LlcArchitecture(Enum):
    """Shared-LLC organizations the paper discusses."""

    PRIVATE = "private"
    CENTRALIZED = "centralized"
    TILED = "tiled"


def home_bank(line_address: int, bank_count: int) -> int:
    """Cache-line interleaving: consecutive lines rotate over the banks."""
    if bank_count < 1:
        raise ValueError("need at least one bank")
    if line_address < 0:
        raise ValueError("line addresses are non-negative")
    return line_address % bank_count


@dataclass(frozen=True)
class LlcRequest:
    """One LLC access as the network sees it."""

    requester: int  # the core's node
    bank: int  # the home bank's node
    issued_at: int  # cycle


class LlcAccessStream:
    """Bernoulli LLC-access stream from a set of active cores.

    ``access_rate`` is LLC accesses per cycle per active core.  Line
    addresses are uniform (a reasonable model after L1 filtering), so under
    ``TILED`` interleaving the banks are hit uniformly -- including the
    dark ones, with probability (dark tiles / all tiles).
    """

    def __init__(
        self,
        active_cores: Sequence[int],
        architecture: LlcArchitecture,
        access_rate: float,
        bank_count: int = 16,
        master_node: int = 0,
        seed: int = 0,
    ):
        if not active_cores:
            raise ValueError("need at least one active core")
        if not 0.0 <= access_rate <= 1.0:
            raise ValueError("access rate must be in [0, 1]")
        self.active_cores = list(active_cores)
        self.architecture = architecture
        self.access_rate = access_rate
        self.bank_count = bank_count
        self.master_node = master_node
        self._rng = stream(seed, f"llc-{architecture.value}")

    def _bank_for(self, core: int) -> int:
        if self.architecture is LlcArchitecture.PRIVATE:
            # hits are local; what reaches the network is the miss stream
            # to the memory controller by the master tile
            return self.master_node
        if self.architecture is LlcArchitecture.CENTRALIZED:
            return self.master_node
        line = self._rng.randrange(1 << 20)
        return home_bank(line, self.bank_count)

    def requests_for_cycle(self, cycle: int) -> list[LlcRequest]:
        requests = []
        for core in self.active_cores:
            if self._rng.random() >= self.access_rate:
                continue
            requests.append(
                LlcRequest(requester=core, bank=self._bank_for(core), issued_at=cycle)
            )
        return requests

    def dark_access_probability(self, active_set: frozenset[int]) -> float:
        """Fraction of accesses whose home bank is dark (TILED only)."""
        if self.architecture is not LlcArchitecture.TILED:
            return 0.0
        dark = self.bank_count - len(active_set & set(range(self.bank_count)))
        return dark / self.bank_count
