"""Custom workloads and the sprint controller state machine.

Run:  python examples/custom_workload.py

Defines a new workload profile from scratch (the format off-line profiling
or a run-time monitor would produce), plans a sprint for it, then drives
the controller through sprint -> thermal exhaustion -> cooldown -> sprint,
printing the mode transitions and remaining PCM headroom.
"""

from repro.cmp import BenchmarkProfile
from repro.core import SprintController, SprintMode


def main() -> None:
    # an imaginary streaming workload: scales well to 8 cores, then chokes
    # on synchronization; talks to the network a lot
    workload = BenchmarkProfile(
        name="my-streaming-app",
        scaling={1: 1.0, 2: 0.54, 4: 0.30, 8: 0.21, 16: 0.55},
        comm_sensitivity=0.35,
        injection_rate=0.2,
        traffic_pattern="neighbor",
    )
    controller = SprintController()
    plan = controller.plan(workload)
    print(f"optimal level for {workload.name}: {plan.level}")
    print(f"sprint region: {list(plan.active_cores)}")
    print(f"expected speedup: {plan.expected_speedup:.2f}x")
    print(f"sprint power: {plan.sprint_power_w:.1f} W, "
          f"thermal budget: {controller.max_sprint_duration(plan):.2f} s\n")

    print("driving the sprint state machine in 0.5 s steps:")
    controller.begin_sprint(workload)
    for step in range(12):
        sustained = controller.advance(0.5)
        print(f"  t={0.5 * (step + 1):4.1f}s mode={controller.mode.value:9s} "
              f"sustained={sustained:4.2f}s headroom={controller.thermal_headroom:5.1%}")
        if controller.mode is SprintMode.NOMINAL:
            break

    if controller.mode is SprintMode.NOMINAL:
        print("\nPCM re-solidified; sprinting again:")
        plan = controller.begin_sprint(workload)
        sustained = controller.advance(1.0)
        print(f"  second sprint sustained {sustained:.2f}s, "
              f"mode={controller.mode.value}")


if __name__ == "__main__":
    main()
