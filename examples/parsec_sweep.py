"""PARSEC sweep: reproduce the paper's evaluation tables in one run.

Run:  python examples/parsec_sweep.py

For all 13 PARSEC 2.1 workloads, compares non-sprinting, full-sprinting
and NoC-sprinting on execution time (Fig. 7), core power (Fig. 8), and --
with the cycle simulator -- network latency (Fig. 9) and power (Fig. 10).
"""

from repro import NoCSprintingSystem
from repro.cmp import all_profiles
from repro.util.tables import format_table


def main() -> None:
    system = NoCSprintingSystem()
    rows = []
    lat_reductions = []
    pow_reductions = []
    for profile in all_profiles():
        level = system.scheme_level(profile, "noc_sprinting")
        simulate = level >= 2
        full = system.evaluate(profile, "full_sprinting",
                               simulate_network=simulate,
                               warmup_cycles=300, measure_cycles=1000)
        noc = system.evaluate(profile, "noc_sprinting",
                              simulate_network=simulate,
                              warmup_cycles=300, measure_cycles=1000)
        if simulate:
            lat = 100 * (1 - noc.network.avg_latency / full.network.avg_latency)
            pw = 100 * (1 - noc.network.total_power_w / full.network.total_power_w)
            lat_reductions.append(lat)
            pow_reductions.append(pw)
            net = f"{lat:5.1f}%/{pw:5.1f}%"
        else:
            net = "    (serial)"
        rows.append([profile.name, level, full.speedup, noc.speedup,
                     full.core_power_w, noc.core_power_w, net])

    print(format_table(
        ["benchmark", "level", "S(full)", "S(noc)",
         "coreP full (W)", "coreP noc (W)", "net lat/pow saving"],
        rows,
        title="NoC-Sprinting vs full-sprinting across PARSEC 2.1",
        float_format="{:.2f}",
    ))
    n = len(all_profiles())
    print(f"mean speedup:          full {sum(r[2] for r in rows) / n:.2f}x, "
          f"NoC-sprinting {sum(r[3] for r in rows) / n:.2f}x (paper: 1.9x / 3.6x)")
    print(f"mean core power saving: "
          f"{100 * (1 - sum(r[5] for r in rows) / sum(r[4] for r in rows)):.1f} % (paper: 69.1 %)")
    print(f"mean net latency saving: {sum(lat_reductions) / len(lat_reductions):.1f} % (paper: 24.5 %)")
    print(f"mean net power saving:   {sum(pow_reductions) / len(pow_reductions):.1f} % (paper: 71.9 %)")


if __name__ == "__main__":
    main()
