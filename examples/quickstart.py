"""Quickstart: plan and evaluate one fine-grained sprint.

Run:  python examples/quickstart.py [benchmark]

Picks the workload's optimal sprint level (off-line profiling), builds the
convex sprint topology with CDOR routing, then reports the paper's four
axes for it: speedup, core power, network latency/power, and thermals.
"""

import sys

from repro import NoCSprintingSystem, SprintController
from repro.cmp import get_profile


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "dedup"
    profile = get_profile(benchmark)

    controller = SprintController()
    plan = controller.plan(profile)
    print(f"workload:            {profile.name}")
    print(f"optimal sprint level: {plan.level} of 16 cores")
    print(f"active nodes:        {list(plan.active_cores)}")
    print(f"gated routers:       {len(plan.gating.gated)}")
    print(f"sprint chip power:   {plan.sprint_power_w:.1f} W")
    print(f"thermal budget:      {controller.max_sprint_duration(plan):.2f} s")
    print()

    system = NoCSprintingSystem()
    for scheme in ("non_sprinting", "full_sprinting", "noc_sprinting"):
        row = system.evaluate(profile, scheme, simulate_network=True, thermal=True)
        net = row.network
        print(
            f"{scheme:18s} level={row.level:2d} speedup={row.speedup:5.2f}x "
            f"core={row.core_power_w:6.1f}W "
            f"net_lat={net.avg_latency:5.1f}cyc net_pow={net.total_power_w * 1e3:6.1f}mW "
            f"peak={row.peak_temperature_k:6.1f}K"
        )

    gain = system.sprint_duration_gain(profile)
    print(f"\nsprint duration gain vs full-sprinting: {100 * (gain - 1):+.1f} %")


if __name__ == "__main__":
    main()
