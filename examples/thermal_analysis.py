"""Thermal analysis: heat maps and the sprint timeline (Figs. 1 and 12).

Run:  python examples/thermal_analysis.py [benchmark]

Shows the steady-state per-tile heat maps for full-sprinting, NoC-sprinting
and NoC-sprinting + thermal-aware floorplanning, then the PCM sprint-phase
timeline for each scheme's chip power.
"""

import sys

from repro.cmp import get_profile, profile_workload
from repro.core.floorplanning import thermal_aware_floorplan
from repro.core.topological import SprintTopology
from repro.power import ChipPowerModel
from repro.thermal import (
    ThermalGrid,
    sprint_phases,
    sprint_tile_powers,
)
from repro.util.tables import render_heatmap


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "dedup"
    profile = get_profile(benchmark)
    level = profile_workload(profile).level
    print(f"{profile.name}: optimal sprint level {level}\n")

    grid = ThermalGrid(4, 4, 4)
    chip = ChipPowerModel(16)
    full_topo = SprintTopology.for_level(4, 4, 16)
    topo = SprintTopology.for_level(4, 4, level)
    fp = thermal_aware_floorplan(4, 4)

    scenarios = [
        ("full-sprinting (uniform power)", sprint_tile_powers(full_topo, chip)),
        (f"NoC-sprinting, level {level} (clustered)", sprint_tile_powers(topo, chip)),
        (f"NoC-sprinting + floorplanning", sprint_tile_powers(topo, chip, fp)),
    ]
    for name, powers in scenarios:
        tiles = grid.tile_temperatures(powers)
        print(f"--- {name}: total {sum(powers):.1f} W, "
              f"peak {grid.peak_temperature(powers):.2f} K ---")
        print(render_heatmap(tiles))
        print()

    print("PCM sprint phases (heat-to-melt / melting / melt-to-max):")
    for scheme, label in (("full", "full-sprinting"), ("noc_sprinting", "NoC-sprinting")):
        power = chip.sprint_chip_power(level if scheme != "full" else 16, scheme).total
        phases = sprint_phases(power)
        if phases.total_s == float("inf"):
            print(f"  {label:14s} {power:6.1f} W -> below sustainable TDP: unconstrained sprint")
        else:
            print(f"  {label:14s} {power:6.1f} W -> "
                  f"{phases.heat_to_melt_s * 1e3:6.1f} ms / "
                  f"{phases.melting_s * 1e3:7.1f} ms / "
                  f"{phases.melt_to_max_s * 1e3:6.1f} ms "
                  f"= {phases.total_s:.3f} s total")


if __name__ == "__main__":
    main()
