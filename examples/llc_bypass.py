"""LLC architectures vs network power gating (Section 3.4).

Run:  python examples/llc_bypass.py [level] [access_rate]

During a sprint, accesses to a tile-interleaved shared LLC land on dark
tiles.  This example measures the three ways out: keep the whole network
powered, centralize the LLC at the master tile, or gate the network and
front dark banks with bypass paths (the paper's choice).
"""

import sys

from repro.cmp import LlcAccessStream, LlcArchitecture
from repro.config import NoCConfig
from repro.core import SprintTopology, plan_bypass
from repro.core.bypass import BYPASS_ENERGY_PER_FLIT_J
from repro.noc import run_llc_simulation
from repro.power import network_power
from repro.util.tables import format_table


def main() -> None:
    level = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    rate = float(sys.argv[2]) if len(sys.argv) > 2 else 0.05
    cfg = NoCConfig()
    region = SprintTopology.for_level(4, 4, level)
    full = SprintTopology.for_level(4, 4, 16)
    cores = list(region.active_nodes)
    plan = plan_bypass(region)
    print(f"{level}-core sprint; {plan.dark_bank_count} dark banks; "
          f"bypass proxies: {dict(sorted(plan.proxy.items()))}\n")

    configs = [
        ("tiled + bypass, gated", region, "cdor", plan, LlcArchitecture.TILED),
        ("tiled, network fully on", full, "xy", None, LlcArchitecture.TILED),
        ("centralized, gated", region, "cdor", None, LlcArchitecture.CENTRALIZED),
    ]
    rows = []
    for name, topo, routing, bypass, arch in configs:
        stream = LlcAccessStream(cores, arch, rate, seed=1)
        result = run_llc_simulation(topo, stream, cfg, routing, bypass=bypass,
                                    warmup_cycles=400, measure_cycles=1500)
        power = network_power(result, topo, cfg).total
        power += result.bypass_flits * BYPASS_ENERGY_PER_FLIT_J / (
            result.measure_cycles / 2.0e9
        )
        rows.append([
            name,
            len(result.activity.routers),
            result.avg_round_trip,
            result.p95_round_trip,
            100 * result.dark_access_fraction,
            power * 1e3,
        ])
    print(format_table(
        ["configuration", "routers", "round-trip", "p95", "dark %", "power mW"],
        rows,
        float_format="{:.1f}",
    ))
    print("\nBypass paths keep the gating benefit (few routers powered) while")
    print("dark-bank accesses pay only a small detour -- Section 3.4's point.")


if __name__ == "__main__":
    main()
