"""Network explorer: latency/power vs load for sprint regions (Fig. 11).

Run:  python examples/network_explorer.py [level] [pattern]

Sweeps injection rate on (a) the convex NoC-sprinting region with CDOR and
(b) the same number of active cores randomly mapped onto the fully-powered
mesh with XY routing, printing both latency-load curves, the power gap and
the saturation crossover.
"""

import sys

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.noc import TrafficGenerator, run_simulation
from repro.power import network_power
from repro.util.rng import stream
from repro.util.tables import format_table


def run_region(level, rate, pattern, cfg):
    topo = SprintTopology.for_level(4, 4, level)
    traffic = TrafficGenerator(list(topo.active_nodes), rate,
                               cfg.packet_length_flits, pattern, seed=7)
    result = run_simulation(topo, traffic, cfg, routing="cdor",
                            warmup_cycles=400, measure_cycles=1500,
                            drain_cycles=5000)
    return result, network_power(result, topo, cfg)


def run_scattered(level, rate, pattern, cfg, samples=4):
    full = SprintTopology.for_level(4, 4, 16)
    lat, power, sat = 0.0, 0.0, 0
    for s in range(samples):
        endpoints = stream(s, "mapping").sample(range(16), level)
        traffic = TrafficGenerator(endpoints, rate, cfg.packet_length_flits,
                                   pattern, seed=7 + s)
        result = run_simulation(full, traffic, cfg, routing="xy",
                                warmup_cycles=400, measure_cycles=1500,
                                drain_cycles=5000)
        lat += result.avg_latency
        power += network_power(result, full, cfg).total
        sat += result.saturated
    return lat / samples, power / samples, sat


def main() -> None:
    level = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    pattern = sys.argv[2] if len(sys.argv) > 2 else "uniform"
    cfg = NoCConfig()

    rows = []
    for rate in (0.05, 0.15, 0.25, 0.35, 0.5, 0.65, 0.8, 0.95):
        noc_res, noc_pow = run_region(level, rate, pattern, cfg)
        full_lat, full_pow, full_sat = run_scattered(level, rate, pattern, cfg)
        rows.append([
            rate,
            noc_res.avg_latency, full_lat,
            noc_pow.total * 1e3, full_pow * 1e3,
            "SAT" if noc_res.saturated else "",
            "SAT" if full_sat else "",
        ])
    print(format_table(
        ["inj rate", "noc lat", "full lat", "noc mW", "full mW", "noc", "full"],
        rows,
        title=f"{level}-core sprinting vs random mapping, {pattern} traffic",
        float_format="{:.1f}",
    ))
    print("NoC-sprinting wins on latency and power below saturation; its")
    print("smaller region saturates first at loads PARSEC never reaches.")


if __name__ == "__main__":
    main()
