"""Spatial co-scheduling: two workloads sprinting at once.

Run:  python examples/co_scheduling.py [benchA] [benchB]

Grows disjoint convex regions from opposite corners for two workloads,
verifies per-region CDOR deadlock freedom, and compares finishing both
bursts spatially (simultaneously) vs temporally (one sprint at a time).
"""

import sys

from repro.cmp import get_profile
from repro.core import CdorRouter, check_deadlock_freedom
from repro.core.coschedule import plan_co_sprint
from repro.core.scheduler import Burst, SprintScheduler

WORK_S = 3.0


def render_regions(sprints, width=4, height=4) -> str:
    owner = {}
    for index, (_, sprint) in enumerate(sprints):
        for node in sprint.topology.active_nodes:
            owner[node] = chr(ord("A") + index)
    lines = []
    for y in range(height):
        row = []
        for x in range(width):
            node = y * width + x
            row.append(f"[{owner[node]}]" if node in owner else " . ")
        lines.append(" ".join(row))
    return "\n".join(lines)


def main() -> None:
    name_a = sys.argv[1] if len(sys.argv) > 1 else "dedup"
    name_b = sys.argv[2] if len(sys.argv) > 2 else "streamcluster"
    a, b = get_profile(name_a), get_profile(name_b)

    pairs = plan_co_sprint(4, 4, [(a, 0), (b, 15)])
    print("co-scheduled regions (A = %s, B = %s):" % (name_a, name_b))
    print(render_regions(pairs))
    for profile, sprint in pairs:
        report = check_deadlock_freedom(CdorRouter(sprint.topology))
        print(f"  {profile.name:14s} level {sprint.level} from master "
              f"{sprint.master}: deadlock-free={report.acyclic}")

    spatial = max(WORK_S * p.relative_time(s.level) for p, s in pairs)
    temporal = SprintScheduler().run(
        [Burst(a, 0.0, WORK_S), Burst(b, 0.0, WORK_S)], "noc_sprinting"
    )
    print(f"\nspatial makespan:  {spatial:.2f} s (both sprint simultaneously)")
    print(f"temporal makespan: {temporal.makespan_s:.2f} s (one sprint at a time)")
    print(f"co-scheduling wins by {temporal.makespan_s - spatial:.2f} s on this pair")


if __name__ == "__main__":
    main()
