"""Online parallelism monitoring: sprint without an off-line profile.

Run:  python examples/online_monitor.py [noise]

The paper assumes each workload's optimal sprint level is "learnt in
advance or monitored during run-time execution".  This example does the
latter: trial-sprint each level with noisy throughput observations and let
the doubling monitor find the optimum, then compare against the off-line
profiling decision for all 13 PARSEC workloads.
"""

import sys

from repro.cmp import (
    OnlineParallelismMonitor,
    all_profiles,
    noisy_profile_measure,
)
from repro.util.tables import format_table


def main() -> None:
    noise = float(sys.argv[1]) if len(sys.argv) > 1 else 0.03
    monitor = OnlineParallelismMonitor(samples_per_level=3)
    rows = []
    agreements = 0
    for profile in all_profiles():
        result = monitor.calibrate(noisy_profile_measure(profile, noise, seed=7))
        offline = profile.optimal_level()
        agree = result.level == offline
        agreements += agree
        rows.append([
            profile.name,
            offline,
            result.level,
            "yes" if agree else "NO",
            result.epochs,
        ])
    print(format_table(
        ["benchmark", "off-line level", "monitored level", "agree", "trial epochs"],
        rows,
        title=f"Online monitoring with {100 * noise:.0f} % throughput noise",
    ))
    print(f"agreement: {agreements}/{len(rows)}")
    print("\nThe monitor stops early once doubling stops paying: serial")
    print("workloads are classified after probing just two levels.")


if __name__ == "__main__":
    main()
