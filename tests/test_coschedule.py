"""Tests for spatial co-scheduling of multiple sprints."""

import pytest

from repro.cmp import get_profile
from repro.core.cdor import CdorRouter
from repro.core.coschedule import (
    CoScheduleError,
    co_sprint_regions,
    plan_co_sprint,
)
from repro.core.deadlock import check_deadlock_freedom


class TestValidation:
    def test_empty_demands(self):
        with pytest.raises(CoScheduleError):
            co_sprint_regions(4, 4, [])

    def test_duplicate_masters(self):
        with pytest.raises(CoScheduleError):
            co_sprint_regions(4, 4, [(0, 2), (0, 2)])

    def test_overcommitted_mesh(self):
        with pytest.raises(CoScheduleError):
            co_sprint_regions(4, 4, [(0, 10), (15, 10)])

    def test_master_outside_mesh(self):
        with pytest.raises(CoScheduleError):
            co_sprint_regions(4, 4, [(16, 2)])

    def test_zero_level(self):
        with pytest.raises(CoScheduleError):
            co_sprint_regions(4, 4, [(0, 0)])

    def test_colliding_masters_rejected(self):
        """Adjacent masters with large demands produce fragmented regions;
        the planner must refuse rather than hand back something unroutable."""
        with pytest.raises(CoScheduleError):
            co_sprint_regions(4, 4, [(0, 8), (1, 8)])


class TestRegions:
    def test_opposite_corners_four_four(self):
        a, b = co_sprint_regions(4, 4, [(0, 4), (15, 4)])
        assert a.topology.active_nodes == (0, 1, 4, 5)
        assert b.topology.active_nodes == (10, 11, 14, 15)

    def test_regions_disjoint(self):
        sprints = co_sprint_regions(4, 4, [(0, 6), (15, 6)])
        sets = [set(s.topology.active_nodes) for s in sprints]
        assert not (sets[0] & sets[1])

    def test_masters_inside_their_regions(self):
        for demands in ([(0, 4), (15, 4)], [(3, 5), (12, 5)], [(0, 2), (15, 2), (3, 2)]):
            for sprint in co_sprint_regions(4, 4, demands):
                assert sprint.topology.is_active(sprint.master)

    def test_full_split(self):
        a, b = co_sprint_regions(4, 4, [(0, 8), (15, 8)])
        assert set(a.topology.active_nodes) | set(b.topology.active_nodes) == set(range(16))

    def test_single_workload_matches_algorithm1(self):
        from repro.core.topological import sprint_region

        (sprint,) = co_sprint_regions(4, 4, [(0, 6)])
        assert list(sprint.topology.active_nodes) == sorted(sprint_region(4, 4, 6))

    def test_three_way_split(self):
        sprints = co_sprint_regions(4, 4, [(0, 4), (3, 4), (12, 4)])
        assert len(sprints) == 3
        for sprint in sprints:
            assert sprint.topology.is_connected()
            assert sprint.topology.is_orthogonally_convex()


class TestRoutingGuarantees:
    def test_each_region_deadlock_free(self):
        for demands in ([(0, 4), (15, 4)], [(0, 8), (15, 8)], [(0, 6), (15, 6)]):
            for sprint in co_sprint_regions(4, 4, demands):
                report = check_deadlock_freedom(CdorRouter(sprint.topology))
                assert report.acyclic, f"master {sprint.master}: {report.cycle}"

    def test_cdor_routes_within_each_region(self):
        sprints = co_sprint_regions(4, 4, [(0, 8), (15, 8)])
        for sprint in sprints:
            router = CdorRouter(sprint.topology)
            active = sprint.topology.active_set
            for src in sprint.topology.active_nodes:
                for dst in sprint.topology.active_nodes:
                    assert all(n in active for n in router.walk(src, dst))


class TestPlanCoSprint:
    def test_optimal_levels_respected(self):
        pairs = plan_co_sprint(4, 4, [(get_profile("dedup"), 0),
                                      (get_profile("canneal"), 15)])
        by_name = {p.name: s for p, s in pairs}
        assert by_name["dedup"].level == 4
        assert by_name["canneal"].level == 2

    def test_oversubscription_halves_largest(self):
        """Two 16-optimal workloads cannot both have the mesh: the planner
        halves the larger request until the demands fit."""
        pairs = plan_co_sprint(4, 4, [(get_profile("blackscholes"), 0),
                                      (get_profile("bodytrack"), 15)])
        total = sum(s.level for _, s in pairs)
        assert total <= 16
        assert all(s.level >= 4 for _, s in pairs)
