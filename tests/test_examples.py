"""Smoke tests: the shipped examples must run end to end.

Each example is executed as a subprocess (as a user would run it); the
slow full-sweep examples are exercised through their faster entry points
elsewhere (the CLI tests cover the same code paths).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    ("quickstart.py", ["canneal"]),
    ("custom_workload.py", []),
    ("online_monitor.py", ["0.02"]),
    ("co_scheduling.py", ["dedup", "canneal"]),
    ("thermal_analysis.py", ["vips"]),
    ("llc_bypass.py", ["4", "0.04"]),
]


@pytest.mark.parametrize("script,args", FAST_EXAMPLES)
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), f"{script} produced no output"


def test_quickstart_reports_all_schemes():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py"), "dedup"],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    for scheme in ("non_sprinting", "full_sprinting", "noc_sprinting"):
        assert scheme in result.stdout
    assert "duration gain" in result.stdout


def test_all_examples_exist():
    expected = {
        "quickstart.py", "parsec_sweep.py", "network_explorer.py",
        "thermal_analysis.py", "custom_workload.py", "online_monitor.py",
        "llc_bypass.py", "co_scheduling.py",
    }
    assert {p.name for p in EXAMPLES.glob("*.py")} == expected
