"""Tests for DVFS operating points and dim-silicon sprinting."""

import pytest

from repro.cmp.workloads import get_profile
from repro.power.dvfs import (
    DIM_POINTS,
    NOMINAL_POINT,
    DvfsPlanner,
    OperatingPoint,
)


@pytest.fixture(scope="module")
def planner():
    return DvfsPlanner()


class TestOperatingPoints:
    def test_nominal_matches_paper(self):
        assert NOMINAL_POINT.vdd == 1.0
        assert NOMINAL_POINT.frequency_hz == 2.0e9

    def test_validation(self):
        with pytest.raises(ValueError):
            OperatingPoint("bad", 0.0, 1e9)
        with pytest.raises(ValueError):
            OperatingPoint("bad", 1.0, 0.0)

    def test_dim_points_ordered(self):
        vdds = [p.vdd for p in DIM_POINTS]
        assert vdds == sorted(vdds, reverse=True)


class TestChipPower:
    def test_dim_point_cheaper(self, planner):
        for level in (2, 4, 8, 16):
            nominal = planner.chip_power(level, DIM_POINTS[0])
            dim = planner.chip_power(level, DIM_POINTS[2])
            assert dim < nominal

    def test_matches_chip_model_at_nominal(self, planner):
        from repro.power.chip_power import ChipPowerModel

        expected = ChipPowerModel(16).sprint_chip_power(4, "noc_sprinting").total
        assert planner.chip_power(4, NOMINAL_POINT) == pytest.approx(expected)

    def test_power_grows_with_level(self, planner):
        for point in DIM_POINTS:
            powers = [planner.chip_power(level, point) for level in (1, 2, 4, 8, 16)]
            assert powers == sorted(powers)


class TestSpeedup:
    def test_nominal_matches_profile(self, planner):
        profile = get_profile("dedup")
        assert planner.speedup(profile, 4, NOMINAL_POINT) == pytest.approx(
            profile.speedup(4)
        )

    def test_frequency_scaling(self, planner):
        profile = get_profile("dedup")
        half = planner.speedup(profile, 4, DIM_POINTS[2])  # 1 GHz
        assert half == pytest.approx(profile.speedup(4) / 2)


class TestBestConfiguration:
    def test_generous_budget_matches_paper_scheme(self, planner):
        """With power to spare, dim sprinting adds nothing: nominal V/f at
        the profile's optimal level wins."""
        profile = get_profile("dedup")
        best = planner.best_configuration(profile, power_budget_w=200.0)
        assert best is not None
        assert best.point == NOMINAL_POINT
        assert best.level == profile.optimal_level()

    def test_dim_wins_under_tight_budget(self, planner):
        """The extension result: under a tight budget a scalable workload
        runs faster on more, dimmer cores."""
        profile = get_profile("blackscholes")
        budget = 30.0
        best = planner.best_configuration(profile, budget)
        nominal_only = planner.nominal_only_best(profile, budget)
        assert best is not None and nominal_only is not None
        assert best.is_dim
        assert best.speedup > nominal_only.speedup

    def test_serial_workload_never_dims(self, planner):
        """freqmine gains nothing from extra cores, so dimming only slows
        it down at any budget that fits nominal single-core."""
        profile = get_profile("freqmine")
        for budget in (30.0, 60.0, 120.0):
            best = planner.best_configuration(profile, budget)
            assert best is not None
            assert best.point == NOMINAL_POINT
            assert best.level == 1

    def test_impossible_budget(self, planner):
        assert planner.best_configuration(get_profile("dedup"), 1.0) is None
        assert planner.nominal_only_best(get_profile("dedup"), 1.0) is None

    def test_configuration_count(self, planner):
        configs = planner.configurations(get_profile("dedup"))
        assert len(configs) == 5 * len(DIM_POINTS)

    def test_budget_respected(self, planner):
        profile = get_profile("bodytrack")
        for budget in (25.0, 50.0, 100.0, 200.0):
            best = planner.best_configuration(profile, budget)
            if best is not None:
                assert best.chip_power_w <= budget

    def test_speedup_monotone_in_budget(self, planner):
        profile = get_profile("bodytrack")
        speedups = []
        for budget in (25.0, 50.0, 100.0, 200.0):
            best = planner.best_configuration(profile, budget)
            speedups.append(best.speedup if best else 0.0)
        assert speedups == sorted(speedups)
