"""Tests for the activity -> network power bridge."""

import pytest

from repro.config import NoCConfig
from repro.core.floorplanning import thermal_aware_floorplan
from repro.core.topological import SprintTopology
from repro.noc.sim import run_simulation
from repro.noc.traffic import TrafficGenerator
from repro.power.activity import network_power

CFG = NoCConfig()


def simulate(level, rate=0.2, routing=None, seed=0):
    topo = SprintTopology.for_level(4, 4, level)
    routing = routing or ("cdor" if level < 16 else "xy")
    traffic = TrafficGenerator(
        list(topo.active_nodes), rate, CFG.packet_length_flits, seed=seed
    )
    result = run_simulation(topo, traffic, CFG, routing=routing,
                            warmup_cycles=300, measure_cycles=1000)
    return result, topo


class TestNetworkPower:
    def test_components_positive(self):
        result, topo = simulate(16)
        report = network_power(result, topo, CFG)
        assert report.routers.dynamic > 0
        assert report.routers.leakage > 0
        assert report.links.dynamic > 0
        assert report.links.leakage > 0
        assert report.total == pytest.approx(report.dynamic + report.leakage)

    def test_per_router_sums_to_total(self):
        result, topo = simulate(8)
        report = network_power(result, topo, CFG)
        assert sum(b.total for b in report.per_router.values()) == pytest.approx(
            report.routers.total
        )
        assert report.powered_router_count == 8

    def test_power_scales_with_region_size(self):
        """The essence of Figure 10: fewer powered routers, less power."""
        totals = []
        for level in (2, 4, 8, 16):
            result, topo = simulate(level, rate=0.15)
            totals.append(network_power(result, topo, CFG).total)
        assert totals == sorted(totals)

    def test_leakage_dominates_at_low_load(self):
        result, topo = simulate(16, rate=0.02)
        report = network_power(result, topo, CFG)
        assert report.leakage > report.dynamic * 0.3

    def test_dynamic_grows_with_load(self):
        low, topo = simulate(16, rate=0.05)
        high, _ = simulate(16, rate=0.5)
        assert network_power(high, topo, CFG).dynamic > network_power(low, topo, CFG).dynamic

    def test_floorplan_increases_link_power(self):
        """Stretched physical links make the floorplanned network pay more
        link energy -- the wiring cost Section 3.3 acknowledges."""
        result, topo = simulate(4, rate=0.3)
        plain = network_power(result, topo, CFG)
        planned = network_power(result, topo, CFG, floorplan=thermal_aware_floorplan(4, 4))
        assert planned.links.total > plain.links.total
        assert planned.routers.total == pytest.approx(plain.routers.total)

    def test_link_count(self):
        result, topo = simulate(4)
        report = network_power(result, topo, CFG)
        assert report.powered_link_count == 4
