"""Tests for Algorithms 3-4 (thermal-aware floorplanning)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.floorplanning import (
    Floorplan,
    identity_floorplan,
    thermal_aware_floorplan,
    thermal_spread,
)
from repro.core.topological import SprintTopology
from repro.util.geometry import Coord


class TestFloorplanValidation:
    def test_identity(self):
        fp = identity_floorplan(4, 4)
        assert fp.position == tuple(range(16))
        assert fp.physical_coord(5) == Coord(1, 1)

    def test_must_be_permutation(self):
        with pytest.raises(ValueError):
            Floorplan(2, 2, (0, 1, 2, 2))
        with pytest.raises(ValueError):
            Floorplan(2, 2, (0, 1, 2))

    def test_logical_at_slot_inverse(self):
        fp = thermal_aware_floorplan(4, 4)
        for node in range(16):
            assert fp.logical_at_slot(fp.position[node]) == node


class TestThermalAwareFloorplan:
    def test_is_permutation(self):
        fp = thermal_aware_floorplan(4, 4)
        assert sorted(fp.position) == list(range(16))

    def test_master_keeps_its_slot(self):
        fp = thermal_aware_floorplan(4, 4)
        assert fp.position[0] == 0
        fp5 = thermal_aware_floorplan(4, 4, master=5)
        assert fp5.position[5] == 5

    def test_first_cosprinter_pushed_far(self):
        """Node 1 sprints with the master at level 2, so Algorithm 4 sends
        it to the farthest free slot -- the opposite corner."""
        fp = thermal_aware_floorplan(4, 4)
        assert fp.position[1] == 15

    def test_four_core_region_lands_on_corners(self):
        """The level-4 region {0,1,4,5} maps to the four die corners --
        the paper's 'four scattered corner nodes' intuition."""
        fp = thermal_aware_floorplan(4, 4)
        slots = {fp.position[n] for n in (0, 1, 4, 5)}
        assert slots == {0, 3, 12, 15}

    def test_spread_beats_identity_at_low_levels(self):
        fp = thermal_aware_floorplan(4, 4)
        ident = identity_floorplan(4, 4)
        for level in (2, 3, 4, 6, 8):
            topo = SprintTopology.for_level(4, 4, level)
            assert thermal_spread(fp, topo) > thermal_spread(ident, topo), (
                f"level {level}: floorplan does not spread the sprint region"
            )

    def test_spread_equal_at_full_level(self):
        """At full sprint every node is active; a permutation cannot change
        the pairwise-distance multiset of the complete set."""
        fp = thermal_aware_floorplan(4, 4)
        ident = identity_floorplan(4, 4)
        topo = SprintTopology.for_level(4, 4, 16)
        assert thermal_spread(fp, topo) == pytest.approx(thermal_spread(ident, topo))

    def test_single_node_spread_zero(self):
        fp = thermal_aware_floorplan(4, 4)
        assert thermal_spread(fp, SprintTopology.for_level(4, 4, 1)) == 0.0

    @settings(max_examples=20, deadline=None)
    @given(width=st.integers(2, 5), height=st.integers(2, 5), data=st.data())
    def test_property_valid_permutation_any_mesh(self, width, height, data):
        master = data.draw(st.integers(0, width * height - 1))
        fp = thermal_aware_floorplan(width, height, master)
        assert sorted(fp.position) == list(range(width * height))
        assert fp.position[master] == master


class TestWireLengths:
    def test_identity_unit_links(self):
        fp = identity_floorplan(4, 4)
        assert fp.wire_length(0, 1) == pytest.approx(1.0)
        assert fp.wire_length(0, 4) == pytest.approx(1.0)
        assert fp.total_wire_length() == pytest.approx(24.0)  # 24 mesh links

    def test_thermal_floorplan_stretches_wires(self):
        """Spreading co-sprinting nodes costs wiring -- the trade-off the
        paper pays with SMART-style repeated links."""
        fp = thermal_aware_floorplan(4, 4)
        assert fp.total_wire_length() > identity_floorplan(4, 4).total_wire_length()

    def test_wire_length_symmetric(self):
        fp = thermal_aware_floorplan(4, 4)
        assert fp.wire_length(0, 1) == pytest.approx(fp.wire_length(1, 0))
