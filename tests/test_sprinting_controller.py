"""Tests for the fine-grained sprint controller state machine."""

import math

import pytest

from repro.cmp.workloads import get_profile
from repro.core.sprinting import SprintController, SprintMode


@pytest.fixture()
def controller():
    return SprintController()


class TestPlanning:
    def test_plan_matches_profile_optimum(self, controller):
        plan = controller.plan(get_profile("dedup"))
        assert plan.level == 4
        assert plan.active_cores == (0, 1, 4, 5)
        assert plan.expected_speedup == pytest.approx(3.6, abs=0.1)

    def test_plan_gating_partition(self, controller):
        plan = controller.plan(get_profile("canneal"))
        assert len(plan.gating.powered) + len(plan.gating.gated) == 16
        assert plan.gating.powered == plan.active_cores

    def test_sprint_power_scales_with_level(self, controller):
        p2 = controller.plan(get_profile("canneal")).sprint_power_w
        p4 = controller.plan(get_profile("dedup")).sprint_power_w
        p16 = controller.plan(get_profile("blackscholes")).sprint_power_w
        assert p2 < p4 < p16


class TestStateMachine:
    def test_initial_state(self, controller):
        assert controller.mode is SprintMode.NOMINAL
        assert controller.thermal_headroom == pytest.approx(1.0)

    def test_begin_and_end(self, controller):
        controller.begin_sprint(get_profile("dedup"))
        assert controller.mode is SprintMode.SPRINTING
        controller.advance(0.5)
        controller.end_sprint()
        assert controller.mode is SprintMode.COOLDOWN
        assert controller.thermal_headroom < 1.0

    def test_level_one_does_not_sprint(self, controller):
        plan = controller.begin_sprint(get_profile("freqmine"))
        assert plan.level == 1
        assert controller.mode is SprintMode.NOMINAL

    def test_double_sprint_rejected(self, controller):
        controller.begin_sprint(get_profile("dedup"))
        with pytest.raises(RuntimeError):
            controller.begin_sprint(get_profile("canneal"))

    def test_budget_exhaustion_forces_nominal(self, controller):
        controller.begin_sprint(get_profile("blackscholes"))  # full sprint
        sustained = controller.advance(10.0)
        assert sustained == pytest.approx(1.0, abs=0.1)  # ~1 s worst case
        assert controller.mode is SprintMode.COOLDOWN
        assert controller.thermal_headroom == 0.0

    def test_low_level_sprint_lasts_longer(self, controller):
        controller.begin_sprint(get_profile("dedup"))  # level 4
        sustained = controller.advance(30.0)
        assert sustained > 5.0

    def test_unconstrained_sprint_never_ends(self, controller):
        plan = controller.begin_sprint(get_profile("canneal"))  # level 2
        assert math.isinf(controller.max_sprint_duration(plan))
        sustained = controller.advance(100.0)
        assert sustained == 100.0
        assert controller.mode is SprintMode.SPRINTING

    def test_cooldown_refills_budget(self, controller):
        controller.begin_sprint(get_profile("blackscholes"))
        controller.advance(10.0)  # exhaust
        assert controller.mode is SprintMode.COOLDOWN
        controller.advance(60.0)  # re-solidify
        assert controller.mode is SprintMode.NOMINAL
        assert controller.thermal_headroom == pytest.approx(1.0)

    def test_cannot_sprint_during_cooldown(self, controller):
        controller.begin_sprint(get_profile("blackscholes"))
        controller.advance(10.0)
        with pytest.raises(RuntimeError):
            controller.begin_sprint(get_profile("dedup"))

    def test_negative_time_rejected(self, controller):
        with pytest.raises(ValueError):
            controller.advance(-1.0)

    def test_end_sprint_with_full_budget_returns_nominal(self, controller):
        controller.begin_sprint(get_profile("canneal"))  # unconstrained level 2
        controller.end_sprint()
        # level-2 sprint never drew on the budget
        assert controller.mode is SprintMode.NOMINAL
