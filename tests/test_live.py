"""Tests for the live sweep observability plane (`repro.telemetry.live`).

Covers the streaming aggregator (fabric events + pool progress callbacks),
the rate/ETA estimator, the incremental `read_events` tailing contract
under torn writes and reader restarts (property-based), the three
surfaces (`repro watch` CLI, HTML dashboard, Prometheus endpoint), the
progress line, and the `fabric audit --json` machine verdict.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.exec import FabricConfig, ResultCache, SweepRunner, audit_queue
from repro.exec.fabric import LeaseTable
from repro.noc.spec import SimulationSpec, TrafficSpec
from repro.telemetry.live import (
    LiveAggregator,
    LiveMetricsExporter,
    MetricsServer,
    ProgressLine,
    QueueWatcher,
    RateEstimator,
    parse_serve_address,
    render_html,
    render_terminal,
    shard_of,
    write_html_atomic,
)
from repro.telemetry.metrics import MetricsRegistry

CFG = NoCConfig()


def small_spec(level=4, rate=0.1, seed=0, **overrides) -> SimulationSpec:
    topo = SprintTopology.for_level(4, 4, level)
    kwargs = dict(
        topology=topo,
        traffic=TrafficSpec(tuple(topo.active_nodes), rate,
                            CFG.packet_length_flits, "uniform", seed=seed),
        config=CFG,
        routing="cdor" if level < 16 else "xy",
        warmup_cycles=100,
        measure_cycles=300,
        drain_cycles=600,
        backend="vectorized",
    )
    kwargs.update(overrides)
    return SimulationSpec(**kwargs)


class TestShardOf:
    def test_hex_keys_shard_deterministically(self):
        key = "deadbeef" * 8
        assert shard_of(key, 8) == shard_of(key, 8)
        assert 0 <= shard_of(key, 8) < 8

    def test_non_hex_keys_fall_back_to_crc(self):
        assert 0 <= shard_of("not-hex!", 8) < 8
        assert shard_of("not-hex!", 8) == shard_of("not-hex!", 8)

    def test_degenerate_shard_counts_collapse_to_zero(self):
        assert shard_of("deadbeef", 0) == 0
        assert shard_of("deadbeef", 1) == 0


class TestRateEstimator:
    def test_linear_completions_recover_the_slope(self):
        est = RateEstimator(window_s=30.0)
        for i in range(10):
            est.observe(float(i), 2 * i)  # 2 points per second
        assert est.rate() == pytest.approx(2.0)
        assert est.overall_rate() == pytest.approx(2.0)
        assert est.eta_s(10) == pytest.approx(5.0)

    def test_no_signal_means_unknown_eta(self):
        est = RateEstimator()
        assert est.rate() == 0.0
        assert est.overall_rate() == 0.0
        assert est.eta_s(5) is None
        assert est.eta_s(0) == 0.0

    def test_duplicate_samples_are_ignored(self):
        est = RateEstimator()
        est.observe(1.0, 1)
        est.observe(1.0, 1)  # exact duplicate: dropped
        est.observe(2.0, 2)
        assert est.rate() == pytest.approx(1.0)

    def test_window_trims_old_samples(self):
        est = RateEstimator(window_s=5.0)
        est.observe(0.0, 0)
        for i in range(100, 110):
            est.observe(float(i), i)
        # the rolling rate reflects the recent 1 pt/s, not the long gap
        assert est.rate() == pytest.approx(1.0)


class TestLiveAggregator:
    def test_fabric_fold_accounts_like_the_coordinator(self):
        agg = LiveAggregator(shards=8, lease_ttl_s=9.0)
        agg.fold_many([
            {"ev": "seed", "total": 3, "ts": 1.0},
            {"ev": "worker-start", "worker": "w0", "generation": 1, "ts": 1.1},
            {"ev": "claim", "key": "k1", "worker": "w0", "ts": 1.2,
             "shard": 0},
            {"ev": "done", "key": "k1", "worker": "w0", "ts": 2.0,
             "shard": 0},
            {"ev": "done", "key": "k1", "worker": "w0", "ts": 2.1,
             "shard": 0},  # duplicate completion: deduplicated
            {"ev": "done", "key": "k2", "worker": "w0", "ts": 3.0,
             "shard": 1, "cached": True},
            {"ev": "expired", "key": "k3", "worker": "w0", "ts": 3.5},
            {"ev": "expired", "key": "k1", "worker": "w0", "ts": 3.6},
            {"ev": "quarantine", "key": "k3", "ts": 4.0},
            {"ev": "shutdown", "ts": 5.0},
        ])
        view = agg.snapshot(now=10.0)
        assert view.total == 3
        assert view.done == 2
        assert view.failed == 1  # k3 quarantined, never done
        assert view.pending == 0
        assert view.duplicates == 1
        assert view.cache_hits == 1
        assert view.expired == 2
        assert view.requeued == 1  # only the expiry of a not-yet-done key
        assert view.claims == 1
        assert view.worker_spawns == 1
        assert view.complete is True
        assert view.eta_s == 0.0
        assert view.quarantined == 1
        worker = dict((w.name, w) for w in view.workers)["w0"]
        assert worker.generation == 1 and worker.points == 2
        shards = {s.shard: s.done for s in view.shards}
        assert shards == {0: 1, 1: 1}

    def test_pending_zero_means_complete_without_shutdown(self):
        agg = LiveAggregator()
        agg.fold({"ev": "seed", "total": 1, "ts": 1.0})
        assert agg.snapshot(now=2.0).complete is False
        agg.fold({"ev": "done", "key": "k", "worker": "w", "ts": 2.0})
        assert agg.snapshot(now=3.0).complete is True

    def test_lease_scan_buckets_live_vs_expiring(self):
        agg = LiveAggregator(lease_ttl_s=9.0)  # expiring margin: 3s
        agg.lease_scan([
            {"deadline": 101.0},  # 1s left: expiring
            {"deadline": 108.0},  # 8s left: live
        ], now=100.0)
        view = agg.snapshot(now=100.0)
        assert view.leases.live == 1
        assert view.leases.expiring == 1
        assert view.in_flight == 2

    def test_pool_progress_callback_path(self):
        agg = LiveAggregator(source="pool")
        agg.observe_progress(1, 3, None, "simulated", now=1.0)
        agg.observe_progress(2, 3, None, "cached", now=2.0)
        agg.observe_progress(3, 3, None, "failed", now=3.0)
        view = agg.snapshot(now=3.0)
        assert view.source == "pool"
        assert (view.total, view.done, view.failed) == (3, 2, 1)
        assert view.cache_hits == 1
        assert view.complete is True

    def test_to_dict_is_json_round_trippable(self):
        agg = LiveAggregator()
        agg.fold({"ev": "seed", "total": 2, "ts": 1.0})
        agg.fold({"ev": "done", "key": "k", "worker": "w", "ts": 2.0})
        payload = json.loads(json.dumps(agg.snapshot(now=3.0).to_dict()))
        for field in ("total", "done", "failed", "quarantined", "pending",
                      "complete", "cache_hits", "rate_pps", "eta_s",
                      "leases", "workers", "shards"):
            assert field in payload
        assert payload["total"] == 2 and payload["done"] == 1


class TestReadEventsTailing:
    """The watch contract: tailing `events.jsonl` incrementally delivers
    every complete event exactly once, in order, no matter how the byte
    stream is chunked by torn writes or how often the reader restarts."""

    @given(
        n=st.integers(min_value=1, max_value=12),
        cuts=st.lists(st.integers(min_value=0, max_value=10_000),
                      max_size=12),
        restarts=st.sets(st.integers(min_value=0, max_value=13)),
    )
    @settings(max_examples=60, deadline=None)
    def test_chunked_writes_deliver_exactly_once_in_order(
            self, n, cuts, restarts):
        lines = [
            json.dumps({"ev": "x", "id": i}).encode("utf-8") + b"\n"
            for i in range(n)
        ]
        blob = b"".join(lines)
        bounds = sorted({c % (len(blob) + 1) for c in cuts} | {len(blob)})
        with tempfile.TemporaryDirectory() as tmp:
            qdir = os.path.join(tmp, "queue")
            os.makedirs(qdir)
            table = LeaseTable(qdir)
            delivered = []
            offset = 0
            written = 0
            for step, bound in enumerate(bounds):
                with open(table.events_path, "ab") as handle:
                    handle.write(blob[written:bound])
                written = bound
                if step in restarts:  # a fresh reader resumes by offset
                    table = LeaseTable(qdir)
                events, offset = table.read_events(offset)
                delivered.extend(events)
            events, offset = table.read_events(offset)
            delivered.extend(events)
            assert [e["id"] for e in delivered] == list(range(n))
            assert offset == len(blob)

    def test_damaged_line_is_tolerated_without_stalling(self):
        with tempfile.TemporaryDirectory() as tmp:
            qdir = os.path.join(tmp, "queue")
            os.makedirs(qdir)
            table = LeaseTable(qdir)
            with open(table.events_path, "ab") as handle:
                handle.write(b'{"ev": "a"}\n')
                handle.write(b"%% not json %%\n")
                handle.write(b'{"ev": "b"}\n')
            events, offset = table.read_events(0)
            assert [e["ev"] for e in events] == ["a", "b"]
            more, _ = table.read_events(offset)
            assert more == []


class TestRenderers:
    def _view(self):
        agg = LiveAggregator(queue_dir="/tmp/q")
        agg.fold({"ev": "seed", "total": 2, "ts": 1.0})
        agg.fold({"ev": "done", "key": "aa", "worker": "w0", "ts": 2.0})
        return agg.snapshot(now=3.0)

    def test_terminal_render_plain_has_no_ansi(self):
        text = render_terminal(self._view(), color=False)
        assert "\x1b[" not in text
        assert "1/2 done" in text

    def test_html_render_and_atomic_write(self, tmp_path):
        html = render_html(self._view(), refresh_s=3.0)
        assert "<html" in html and 'http-equiv="refresh"' in html
        assert 'content="3' in html
        path = tmp_path / "dash.html"
        write_html_atomic(path, html)
        assert path.read_text(encoding="utf-8") == html
        assert not [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]


class TestMetricsSurface:
    def test_preregister_renders_zero_valued_series(self):
        reg = MetricsRegistry()
        reg.preregister({"demo_total": "a counter"},
                        gauges={"demo_gauge": "a gauge"})
        text = reg.render_prometheus()
        assert "demo_total 0" in text
        assert "demo_gauge 0" in text

    def test_exporter_and_server_serve_watch_series(self):
        agg = LiveAggregator()
        agg.fold({"ev": "seed", "total": 2, "ts": 1.0})
        agg.fold({"ev": "claim", "key": "aa", "worker": "w0", "ts": 1.5})
        agg.fold({"ev": "done", "key": "aa", "worker": "w0", "ts": 2.0})
        exporter = LiveMetricsExporter()
        exporter.update(agg.snapshot(now=3.0))
        server = MetricsServer(exporter.render).start()
        try:
            url = f"http://{server.address}"
            body = urllib.request.urlopen(
                f"{url}/metrics", timeout=10).read().decode("utf-8")
            assert "watch_points_total 2" in body
            assert "watch_points_done 1" in body
            assert "fabric_lease_claims_total 1" in body
            assert "watch_cache_hit_rate" in body
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{url}/other", timeout=10)
        finally:
            server.stop()

    def test_parse_serve_address(self):
        assert parse_serve_address(":9095") == ("127.0.0.1", 9095)
        assert parse_serve_address("9095") == ("127.0.0.1", 9095)
        assert parse_serve_address("0.0.0.0:80") == ("0.0.0.0", 80)
        with pytest.raises(ValueError):
            parse_serve_address("nope")


class TestProgressLine:
    def test_paints_rate_and_finishes_with_newline(self):
        stream = io.StringIO()
        clock = iter(float(i) for i in range(100))
        line = ProgressLine(total=3, stream=stream, min_interval_s=0.0,
                            clock=lambda: next(clock))
        for i in range(1, 4):
            line(i, 3, None, "simulated")
        line.finish()
        out = stream.getvalue()
        assert "\r\x1b[K" in out
        assert "[3/3]" in out and "pts/s" in out
        assert out.endswith("\n")

    def test_throttles_between_paints_but_always_paints_the_end(self):
        stream = io.StringIO()
        now = {"t": 0.0}
        line = ProgressLine(total=3, stream=stream, min_interval_s=100.0,
                            clock=lambda: now["t"])
        for i in range(1, 4):
            now["t"] += 0.01
            line(i, 3, None, "simulated")
        assert stream.getvalue().count("\r") == 2  # first + final

    def test_failures_are_surfaced(self):
        stream = io.StringIO()
        line = ProgressLine(total=2, stream=stream, min_interval_s=0.0,
                            clock=iter([1.0, 2.0]).__next__)
        line(1, 2, None, "failed")
        line(2, 2, None, "simulated")
        assert "1 failed" in stream.getvalue()


class TestWatchCLI:
    def _run_fabric_sweep(self, tmp_path):
        specs = [small_spec(level=lv, rate=0.1) for lv in (2, 4)]
        config = FabricConfig(queue_dir=str(tmp_path / "q"), workers=2,
                              lease_ttl_s=10.0)
        runner = SweepRunner(workers=2, fabric=config,
                             cache=ResultCache(directory=str(tmp_path / "c")))
        return str(tmp_path / "q"), runner.run(specs)

    def test_once_json_matches_the_sweep_report(self, tmp_path, capsys):
        qdir, report = self._run_fabric_sweep(tmp_path)
        rc = main(["watch", qdir, "--once", "--json"])
        view = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert view["total"] == report.total_points
        assert view["done"] == len(report.points)
        assert view["failed"] == len(report.failures)
        assert view["quarantined"] == sum(
            1 for f in report.failures if f.kind == "quarantined")
        assert view["complete"] is True
        audit = audit_queue(qdir)
        assert view["done"] == audit.done
        assert view["quarantined"] == audit.quarantined

    def test_once_writes_html_when_asked(self, tmp_path, capsys):
        qdir, _ = self._run_fabric_sweep(tmp_path)
        html_path = tmp_path / "dash.html"
        rc = main(["watch", qdir, "--once", "--json",
                   "--html", str(html_path)])
        capsys.readouterr()
        assert rc == 0
        assert "<html" in html_path.read_text(encoding="utf-8")

    def test_missing_queue_times_out_with_exit_2(self, tmp_path, capsys):
        rc = main(["watch", str(tmp_path / "nope"), "--once", "--json",
                   "--wait", "0"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "watch:" in captured.err

    def test_queue_watcher_refresh_is_incremental(self, tmp_path):
        qdir, report = self._run_fabric_sweep(tmp_path)
        watcher = QueueWatcher(qdir)
        first = watcher.refresh()
        second = watcher.refresh()  # no new events: same accounting
        assert first.done == second.done == len(report.points)
        assert second.complete is True


class TestFabricAuditJSON:
    def test_audit_json_verdict(self, tmp_path, capsys):
        specs = [small_spec(level=2, rate=0.1)]
        config = FabricConfig(queue_dir=str(tmp_path / "q"), workers=1,
                              lease_ttl_s=10.0)
        SweepRunner(workers=1, fabric=config).run(specs)
        rc = main(["fabric", "audit", str(tmp_path / "q"), "--json"])
        verdict = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert verdict["ok"] is True
        assert verdict["done"] == 1 and verdict["total"] == 1
        assert verdict["problems"] == []

    def test_audit_json_missing_queue_exits_2(self, tmp_path, capsys):
        rc = main(["fabric", "audit", str(tmp_path / "nope"), "--json"])
        verdict = json.loads(capsys.readouterr().out)
        assert rc == 2
        assert verdict["ok"] is False and "error" in verdict
