"""Tests for the telemetry layer: metrics, tracing, reporting, wiring."""

import json
import os
import tracemalloc

import pytest

import repro.telemetry as telemetry_pkg
from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.exec import ResultCache, SweepRunner
from repro.exec.runner import CHAOS_ENV
from repro.noc.sim import simulate
from repro.noc.spec import SimulationSpec, TrafficSpec
from repro.telemetry import (
    NULL_INSTRUMENT,
    NULL_SPAN,
    MetricsRegistry,
    Telemetry,
    Tracer,
)
from repro.telemetry.report import (
    build_tree,
    load_trace,
    render_report,
    render_span_tree,
    top_sinks,
)

CFG = NoCConfig()


def small_spec(rate=0.1, seed=0, level=4):
    topo = SprintTopology.for_level(4, 4, level)
    return SimulationSpec(
        topology=topo,
        traffic=TrafficSpec(tuple(topo.active_nodes), rate,
                            CFG.packet_length_flits, "uniform", seed=seed),
        config=CFG, routing="cdor",
        warmup_cycles=200, measure_cycles=600, drain_cycles=2000,
    )


def result_fields(result):
    import dataclasses

    return {f.name: getattr(result, f.name)
            for f in dataclasses.fields(result) if f.name != "activity"}


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.counter("runs_total").inc()
        registry.counter("runs_total").inc(4)
        registry.gauge("level").set(8)
        registry.histogram("lat", buckets=(1.0, 10.0)).observe(0.5)
        registry.histogram("lat").observe(5.0)
        assert registry.value("runs_total") == 5
        assert registry.value("level") == 8
        hist = registry.histogram("lat")
        assert hist.count == 2
        assert hist.counts == [1, 1, 0]

    def test_handles_are_idempotent_and_labelled_series_distinct(self):
        registry = MetricsRegistry()
        a = registry.counter("flits", router=3)
        b = registry.counter("flits", router=3)
        c = registry.counter("flits", router=4)
        assert a is b and a is not c
        a.inc(7)
        assert registry.value("flits", router=3) == 7
        assert registry.value("flits", router=4) == 0

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_disabled_registry_hands_out_null_singleton(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is NULL_INSTRUMENT
        assert registry.gauge("b") is NULL_INSTRUMENT
        assert registry.histogram("c") is NULL_INSTRUMENT
        registry.counter("a").inc(100)
        assert len(registry) == 0
        assert registry.snapshot() == {"metrics": [], "help": {}}

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("flits_total", "Flits moved.", router=0).inc(3)
        registry.histogram("occ", buckets=(1.0, 4.0)).observe(2.0)
        text = registry.render_prometheus()
        assert "# HELP flits_total Flits moved." in text
        assert "# TYPE flits_total counter" in text
        assert 'flits_total{router="0"} 3' in text
        assert 'occ_bucket{le="1.0"} 0' in text
        assert 'occ_bucket{le="4.0"} 1' in text
        assert 'occ_bucket{le="+Inf"} 1' in text
        assert "occ_sum 2.0" in text
        assert "occ_count 1" in text

    def test_merge_adds_counters_and_histograms(self):
        worker = MetricsRegistry()
        worker.counter("runs_total").inc(2)
        worker.gauge("level").set(4)
        worker.histogram("lat", buckets=(1.0,)).observe(0.5)
        parent = MetricsRegistry()
        parent.counter("runs_total").inc(1)
        parent.gauge("level").set(16)
        parent.histogram("lat", buckets=(1.0,)).observe(2.0)
        parent.merge(worker.snapshot())
        assert parent.value("runs_total") == 3
        assert parent.value("level") == 4  # gauge: last write wins
        merged = parent.histogram("lat")
        assert merged.count == 2
        assert merged.counts == [1, 1]
        assert merged.sum == 2.5

    def test_merge_rejects_bucket_mismatch(self):
        worker = MetricsRegistry()
        worker.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        parent = MetricsRegistry()
        parent.histogram("lat", buckets=(5.0,))
        with pytest.raises(ValueError):
            parent.merge(worker.snapshot())


class TestTracer:
    def test_with_blocks_nest_implicitly(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("tick")
        begins = {e["name"]: e for e in tracer.events if e["ev"] == "begin"}
        assert begins["outer"]["parent"] is None
        assert begins["inner"]["parent"] == begins["outer"]["id"]
        annot = next(e for e in tracer.events if e["ev"] == "annot")
        assert annot["span"] == begins["inner"]["id"]

    def test_annotations_ride_out_on_end_event(self):
        tracer = Tracer()
        span = tracer.span("run")
        span.annotate(cycles=100)
        span.end()
        end = next(e for e in tracer.events if e["ev"] == "end")
        assert end["attrs"] == {"cycles": 100}
        assert end["wall_s"] >= 0 and end["cpu_s"] >= 0

    def test_exception_marks_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        end = next(e for e in tracer.events if e["ev"] == "end")
        assert end["attrs"]["error"] == "RuntimeError"

    def test_graft_reparents_worker_roots_only(self):
        worker = Tracer(id_prefix="w1.")
        with worker.span("simulate"):
            worker.span("phase").end()
        parent = Tracer()
        point = parent.span("point")
        parent.graft(worker.drain(), point.id)
        begins = {e["name"]: e for e in parent.events if e["ev"] == "begin"}
        assert begins["simulate"]["parent"] == point.id
        assert begins["phase"]["parent"] == begins["simulate"]["id"]
        assert begins["simulate"]["id"].startswith("w1.")

    def test_save_load_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", level=4):
            tracer.sample({"cycle": 100})
        path = tmp_path / "trace.jsonl"
        count = tracer.save(path)
        events = load_trace(path)
        assert len(events) == count == 3
        assert [e["ev"] for e in events] == ["begin", "sample", "end"]
        # every line is valid standalone JSON
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                json.loads(line)

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("x")
        assert span is NULL_SPAN
        with span:
            tracer.event("e")
            tracer.sample({})
        assert tracer.events == []


class TestReport:
    def _trace(self, tmp_path):
        tracer = Tracer()
        with tracer.span("sweep") as sweep:
            with tracer.span("point"):
                with tracer.span("simulate"):
                    tracer.sample({"cycle": 0})
            sweep.annotate(points=1)
        registry = MetricsRegistry()
        registry.counter("sweep_simulated_total", "Done.").inc()
        tracer.events.append({"ev": "metrics", "data": registry.snapshot()})
        path = tmp_path / "t.jsonl"
        tracer.save(path)
        return path

    def test_tree_and_sinks(self, tmp_path):
        roots = build_tree(load_trace(self._trace(tmp_path)))
        assert len(roots) == 1
        sweep = roots[0]
        assert sweep.name == "sweep" and sweep.ended
        assert sweep.children[0].children[0].samples == 1
        names = [name for name, *_ in top_sinks(roots)]
        assert set(names) == {"sweep", "point", "simulate"}

    def test_render_report_has_all_sections(self, tmp_path):
        text = render_report(self._trace(tmp_path))
        assert "span tree" in text
        assert "top time sinks" in text
        assert "metrics (prometheus text)" in text
        assert "sweep_simulated_total 1" in text
        assert "ms wall" in text

    def test_unfinished_and_orphaned_spans_tolerated(self):
        events = [
            {"ev": "begin", "id": "s1", "parent": None, "name": "open"},
            {"ev": "begin", "id": "x9", "parent": "gone", "name": "orphan"},
        ]
        roots = build_tree(events)
        assert {r.name for r in roots} == {"open", "orphan"}
        text = render_span_tree(roots)
        assert "unfinished" in text

    def test_bad_trace_line_raises_value_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ev": "begin"\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError):
            load_trace(path)


class TestSimInstrumentation:
    def test_results_bit_identical_with_telemetry(self):
        spec = small_spec()
        plain = simulate(spec)
        traced = simulate(spec, telemetry=Telemetry(sample_interval=100))
        disabled = simulate(spec, telemetry=Telemetry.disabled())
        assert result_fields(plain) == result_fields(traced)
        assert result_fields(plain) == result_fields(disabled)

    def test_phase_spans_and_samples(self):
        tel = Telemetry(sample_interval=100)
        result = simulate(small_spec(), telemetry=tel)
        begins = [e for e in tel.tracer.events if e["ev"] == "begin"]
        assert [b["name"] for b in begins] == [
            "simulate", "phase:warmup", "phase:measure", "phase:drain"
        ]
        sim_id = begins[0]["id"]
        assert all(b["parent"] == sim_id for b in begins[1:])
        samples = [e for e in tel.tracer.events if e["ev"] == "sample"]
        assert samples and all(e["span"] == sim_id for e in samples)
        for event in samples:
            data = event["data"]
            assert data["cycle"] % 100 == 0
            assert set(data) == {"cycle", "in_flight", "buffered", "routers"}
            for stats in data["routers"].values():
                assert set(stats) == {"inj", "ej", "occ", "gated"}
        assert tel.metrics.value("sim_runs_total") == 1
        assert tel.metrics.value("sim_packets_measured_total") == \
            result.packets_measured
        assert tel.metrics.value("sim_cycles_total") == result.cycles_run
        # per-router injected flits sum to what the active nodes offered
        injected = sum(
            tel.metrics.value("noc_router_injected_flits_total", router=n) or 0
            for n in range(16)
        )
        assert injected > 0

    def test_noop_mode_allocates_nothing_on_hot_path(self):
        """Disabled instruments held as handles must not allocate."""
        tel = Telemetry.disabled()
        counter = tel.metrics.counter("hot_counter")
        histogram = tel.metrics.histogram("hot_histogram")
        span = tel.tracer.span("hot_span")
        assert counter is NULL_INSTRUMENT and span is NULL_SPAN
        telemetry_dir = os.path.dirname(telemetry_pkg.__file__)
        filters = [tracemalloc.Filter(True, os.path.join(telemetry_dir, "*"))]
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot().filter_traces(filters)
            for _ in range(2000):
                counter.inc()
                histogram.observe(1.0)
                span.end()
                tel.tracer.sample({"cycle": 0})
            after = tracemalloc.take_snapshot().filter_traces(filters)
        finally:
            tracemalloc.stop()
        grown = sum(s.size_diff for s in after.compare_to(before, "lineno"))
        assert grown == 0


class TestRunnerIntegration:
    def _span_tree_names(self, tel):
        begins = [e for e in tel.tracer.events if e["ev"] == "begin"]
        by_id = {b["id"]: b for b in begins}

        def chain(begin):
            names = [begin["name"]]
            while begin.get("parent") is not None:
                begin = by_id[begin["parent"]]
                names.append(begin["name"])
            return list(reversed(names))

        return [chain(b) for b in begins]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_sweep_point_simulate_phase_nesting(self, workers):
        tel = Telemetry(sample_interval=200)
        runner = SweepRunner(workers=workers, telemetry=tel)
        report = runner.run([small_spec(rate=r) for r in (0.05, 0.1)])
        assert report.ok
        chains = self._span_tree_names(tel)
        assert ["sweep"] in chains
        assert ["sweep", "point"] in chains
        assert ["sweep", "point", "simulate"] in chains
        assert ["sweep", "point", "simulate", "phase:measure"] in chains
        assert tel.metrics.value("sweep_simulated_total") == 2
        assert tel.metrics.value("sweep_cache_misses_total") == 2
        assert tel.metrics.value("sweep_cache_hits_total") == 0
        assert tel.metrics.value("sweep_failures_total") == 0
        assert tel.metrics.histogram("sweep_point_sim_seconds").count == 2

    def test_cache_hits_and_prometheus_dump(self):
        tel = Telemetry()
        cache = ResultCache()
        specs = [small_spec(rate=r) for r in (0.05, 0.1)]
        SweepRunner(cache=cache, telemetry=tel).run(specs)
        SweepRunner(cache=cache, telemetry=tel).run(specs)
        assert tel.metrics.value("sweep_cache_hits_total") == 2
        text = tel.metrics.render_prometheus()
        assert "sweep_cache_hits_total 2" in text
        assert "sweep_retries_total 0" in text  # zero but still rendered
        assert "result_cache_stores 2" in text

    def test_failed_attempts_counted_and_span_marked(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "raise")
        tel = Telemetry()
        report = SweepRunner(max_retries=1, telemetry=tel).run([small_spec()])
        monkeypatch.delenv(CHAOS_ENV)
        assert len(report.failures) == 1
        assert tel.metrics.value("sweep_errors_total") == 2  # both attempts
        assert tel.metrics.value("sweep_retries_total") == 1
        assert tel.metrics.value("sweep_failures_total") == 1
        end = next(
            e for e in tel.tracer.events
            if e["ev"] == "end" and e["attrs"].get("outcome") == "failed"
        )
        assert end["attrs"]["attempts"] == 2

    def test_save_embeds_metrics_and_report_renders(self, tmp_path):
        tel = Telemetry(sample_interval=200)
        SweepRunner(telemetry=tel).run([small_spec()])
        trace = tmp_path / "t.jsonl"
        prom = tmp_path / "m.prom"
        tel.save(trace_path=trace, metrics_path=prom)
        text = render_report(trace)
        assert "sweep" in text and "simulate" in text
        assert "sweep_simulated_total 1" in text
        assert "noc_router_injected_flits_total" in prom.read_text()

    def test_untelemetered_runner_unchanged(self):
        spec = small_spec()
        a = SweepRunner().run([spec])
        b = SweepRunner(telemetry=Telemetry(sample_interval=50)).run([spec])
        assert result_fields(a.results[0]) == result_fields(b.results[0])


class TestProgressOutcomes:
    def test_new_style_callback_sees_failures(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "raise")
        seen = []
        runner = SweepRunner(
            progress=lambda done, total, point, outcome:
                seen.append((done, total, outcome))
        )
        runner.run([small_spec()])
        monkeypatch.delenv(CHAOS_ENV)
        assert seen == [(1, 1, "failed")]

    def test_new_style_callback_outcomes_cached_vs_simulated(self):
        seen = []
        cache = ResultCache()
        specs = [small_spec(rate=r) for r in (0.05, 0.1)]
        runner = SweepRunner(
            cache=cache,
            progress=lambda d, t, p, outcome: seen.append(outcome),
        )
        runner.run(specs)
        runner.run(specs)
        assert seen == ["simulated", "simulated", "cached", "cached"]

    def test_legacy_callback_not_called_for_failures(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "raise")
        seen = []
        runner = SweepRunner(
            progress=lambda done, total, point: seen.append(done)
        )
        report = runner.run([small_spec()])
        monkeypatch.delenv(CHAOS_ENV)
        assert not report.ok and seen == []

    def test_var_positional_callback_treated_as_new_style(self):
        seen = []
        runner = SweepRunner(progress=lambda *args: seen.append(args))
        runner.run([small_spec()])
        assert seen[0][3] == "simulated"


class TestCacheTelemetry:
    def test_stats_method_snapshot_is_frozen_in_time(self):
        cache = ResultCache()
        cache.put("k", 1)
        snap = cache.stats()
        cache.get("k")
        assert snap.hits == 0 and cache.stats().hits == 1

    def test_corrupt_disk_entry_counted_and_rerun(self, tmp_path):
        first = ResultCache(directory=str(tmp_path))
        first.put("key", {"v": 1})
        path = os.path.join(str(tmp_path), "key.pkl")
        with open(path, "wb") as handle:
            handle.write(b"\x80\x05 this is not a pickle")
        fresh = ResultCache(directory=str(tmp_path))
        assert fresh.get("key") is None  # miss, not an exception
        stats = fresh.stats()
        assert stats.corrupt == 1 and stats.misses == 1
        assert not os.path.exists(path)  # slot freed for rewrite
        fresh.put("key", {"v": 2})
        assert fresh.get("key") == {"v": 2}

    def test_byte_accounting(self, tmp_path):
        writer = ResultCache(directory=str(tmp_path))
        writer.put("key", list(range(100)))
        assert writer.stats().bytes_written > 0
        reader = ResultCache(directory=str(tmp_path))
        reader.get("key")
        assert reader.stats().bytes_read == writer.stats().bytes_written


class TestControllerTelemetry:
    def test_sprint_lifecycle_events_and_gauges(self):
        from repro.cmp import get_profile
        from repro.core.sprinting import RetreatPolicy, SprintController

        tel = Telemetry()
        controller = SprintController(retreat=RetreatPolicy(), telemetry=tel)
        plan = controller.begin_sprint(get_profile("dedup"))
        controller.advance(1000.0)  # drain through every retreat stage
        controller.end_sprint()
        names = [e["name"] for e in tel.tracer.events if e["ev"] == "annot"]
        assert names[0] == "sprint_begin"
        assert "sprint_retreat" in names
        assert tel.metrics.value("sprint_retreats_total") == \
            len(controller.retreat_log)
        assert controller.retreat_log  # the scenario actually retreated
        assert tel.metrics.value("sprint_level") is not None
        headroom = tel.metrics.value("sprint_thermal_headroom")
        assert 0.0 <= headroom <= 1.0
        begin = next(e for e in tel.tracer.events
                     if e.get("name") == "sprint_begin")
        assert begin["attrs"]["level"] == plan.level

    def test_untelemetered_controller_identical(self):
        from repro.cmp import get_profile
        from repro.core.sprinting import RetreatPolicy, SprintController

        plain = SprintController(retreat=RetreatPolicy())
        traced = SprintController(retreat=RetreatPolicy(),
                                  telemetry=Telemetry())
        profile = get_profile("dedup")
        plain.begin_sprint(profile)
        traced.begin_sprint(profile)
        assert plain.advance(5.0) == traced.advance(5.0)
        assert plain.retreat_log == traced.retreat_log
        assert plain.thermal_headroom == traced.thermal_headroom


class TestThermalTelemetry:
    def test_staged_transient_emits_retreats_and_pcm_samples(self):
        from repro.thermal.transient_sprint import SprintTransient

        tel = Telemetry()
        transient = SprintTransient()
        ladder = [[18.0] * 16, [9.0] * 16, [1.5] * 16]
        result = transient.run_staged(ladder, duration_s=6.0, dt_s=5e-3,
                                      telemetry=tel)
        assert result.retreats  # the ladder actually stepped down
        assert tel.metrics.value("thermal_retreats_total") == \
            len(result.retreats)
        retreat_events = [e for e in tel.tracer.events
                          if e.get("name") == "thermal_retreat"]
        assert len(retreat_events) == len(result.retreats)
        samples = [e for e in tel.tracer.events if e["ev"] == "sample"]
        assert samples
        assert {"t", "pcm_temperature_k", "melted_fraction", "phase"} <= \
            set(samples[0]["data"])
        headroom = tel.metrics.value("pcm_thermal_headroom")
        assert 0.0 <= headroom <= 1.0
        end = next(e for e in tel.tracer.events if e["ev"] == "end")
        assert end["attrs"]["retreats"] == len(result.retreats)

    def test_plain_run_span_and_results_unchanged(self):
        from repro.thermal.transient_sprint import SprintTransient

        tel = Telemetry()
        transient = SprintTransient()
        powers = [12.0] * 16
        traced = transient.run(powers, duration_s=2.0, dt_s=5e-3,
                               telemetry=tel)
        plain = transient.run(powers, duration_s=2.0, dt_s=5e-3)
        assert [s.time_s for s in traced.samples] == \
            [s.time_s for s in plain.samples]
        assert traced.peak_die_temperature_k == plain.peak_die_temperature_k
        begin = next(e for e in tel.tracer.events if e["ev"] == "begin")
        assert begin["name"] == "thermal_sprint"
        assert begin["attrs"]["staged"] is False
