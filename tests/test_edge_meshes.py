"""Edge-case meshes: degenerate shapes the algorithms must still handle."""

import pytest

from repro.config import NoCConfig
from repro.core.cdor import CdorRouter
from repro.core.deadlock import check_all_sprint_levels
from repro.core.floorplanning import thermal_aware_floorplan
from repro.core.topological import SprintTopology, sprint_order
from repro.noc.sim import run_simulation
from repro.noc.traffic import TrafficGenerator


class TestOneByNMesh:
    """A 1xN 'mesh' is a line: only EAST/WEST links exist."""

    def test_sprint_order(self):
        assert sprint_order(4, 1) == [0, 1, 2, 3]

    def test_all_levels_valid(self):
        for level in range(1, 5):
            topo = SprintTopology.for_level(4, 1, level)
            assert topo.is_connected()
            assert topo.is_orthogonally_convex()

    def test_cdor_routes(self):
        topo = SprintTopology.for_level(4, 1, 4)
        router = CdorRouter(topo)
        assert router.walk(0, 3) == [0, 1, 2, 3]
        assert router.walk(3, 0) == [3, 2, 1, 0]

    def test_deadlock_free(self):
        assert all(bool(r) for r in check_all_sprint_levels(4, 1).values())

    def test_simulates(self):
        cfg = NoCConfig(mesh_width=4, mesh_height=1)
        topo = SprintTopology.for_level(4, 1, 4)
        traffic = TrafficGenerator(list(range(4)), 0.1, cfg.packet_length_flits, seed=1)
        result = run_simulation(topo, traffic, cfg, routing="cdor",
                                warmup_cycles=200, measure_cycles=600)
        assert not result.saturated
        assert result.packets_ejected == result.packets_measured


class TestNx1Mesh:
    """An Nx1 mesh is a column: only NORTH/SOUTH links."""

    def test_cdor_routes(self):
        topo = SprintTopology.for_level(1, 4, 4)
        router = CdorRouter(topo)
        assert router.walk(0, 3) == [0, 1, 2, 3]

    def test_deadlock_free(self):
        assert all(bool(r) for r in check_all_sprint_levels(1, 4).values())


class TestTwoByTwo:
    def test_everything_works(self):
        topo = SprintTopology.for_level(2, 2, 4)
        router = CdorRouter(topo)
        for src in range(4):
            for dst in range(4):
                assert router.walk(src, dst)[-1] == dst
        assert all(bool(r) for r in check_all_sprint_levels(2, 2).values())

    def test_floorplan(self):
        fp = thermal_aware_floorplan(2, 2)
        assert sorted(fp.position) == [0, 1, 2, 3]
        assert fp.position[0] == 0
        # the master's first co-sprinter goes to the opposite corner
        assert fp.position[1] == 3


class TestSingleNode:
    def test_trivial_topology(self):
        topo = SprintTopology.for_level(1, 1, 1)
        assert topo.active_nodes == (0,)
        assert topo.active_links() == []
        assert CdorRouter(topo).walk(0, 0) == [0]

    def test_floorplan(self):
        fp = thermal_aware_floorplan(1, 1)
        assert fp.position == (0,)


class TestNonSquareMesh:
    def test_4x2(self):
        order = sprint_order(4, 2)
        assert order[0] == 0
        assert sorted(order) == list(range(8))
        for level in range(1, 9):
            topo = SprintTopology.for_level(4, 2, level)
            assert topo.is_connected()
            assert topo.is_orthogonally_convex()
        assert all(bool(r) for r in check_all_sprint_levels(4, 2).values())

    def test_2x4_simulation(self):
        cfg = NoCConfig(mesh_width=2, mesh_height=4)
        topo = SprintTopology.for_level(2, 4, 6)
        traffic = TrafficGenerator(list(topo.active_nodes), 0.1,
                                   cfg.packet_length_flits, seed=1)
        result = run_simulation(topo, traffic, cfg, routing="cdor",
                                warmup_cycles=200, measure_cycles=600)
        assert not result.saturated
