"""Tests for router power gating: static plans, break-even analysis, and
the dynamic timeout policy baseline."""

import pytest

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.noc.network import Network
from repro.noc.power_gating import (
    StaticGatingPlan,
    TimeoutGatingPolicy,
    break_even_cycles,
    static_plan_for_topology,
)
from repro.noc.routing import build_routing_table
from repro.noc.sim import run_simulation
from repro.noc.traffic import TrafficGenerator

CFG = NoCConfig()


class TestBreakEven:
    def test_formula(self):
        # 10 mW leakage at 2 GHz saves 5 pJ/cycle; 100 pJ wakeup -> 20 cycles
        assert break_even_cycles(10e-3, 100e-12, 2e9) == pytest.approx(20.0)

    def test_positive_leakage_required(self):
        with pytest.raises(ValueError):
            break_even_cycles(0.0, 1e-12, 2e9)

    def test_consistent_with_router_model(self):
        from repro.power.router_power import RouterPowerModel

        model = RouterPowerModel(CFG)
        cycles = break_even_cycles(
            model.leakage_power(), model.wakeup_energy(), model.frequency_hz
        )
        # wakeup energy is ~30 cycles of leakage plus a clock cycle
        assert 25 < cycles < 60


class TestStaticPlan:
    def test_partition(self):
        topo = SprintTopology.for_level(4, 4, 4)
        plan = static_plan_for_topology(topo)
        assert set(plan.powered) == {0, 1, 4, 5}
        assert len(plan.gated) == 12
        assert plan.leakage_fraction_saved == pytest.approx(0.75)

    def test_full_level_saves_nothing(self):
        plan = static_plan_for_topology(SprintTopology.for_level(4, 4, 16))
        assert plan.leakage_fraction_saved == 0.0

    def test_empty_plan(self):
        assert StaticGatingPlan(powered=(), gated=()).leakage_fraction_saved == 0.0


class TestTimeoutGatingPolicy:
    def test_idle_routers_get_gated(self):
        topo = SprintTopology.for_level(4, 4, 16)
        network = Network(topo, build_routing_table(topo, "xy"), CFG)
        policy = TimeoutGatingPolicy(idle_timeout=16)
        for _ in range(100):
            policy.step(network)
            network.step()
        assert network.powered_routers() == 0
        assert policy.stats.gate_events == 16

    def test_protected_nodes_stay_on(self):
        topo = SprintTopology.for_level(4, 4, 16)
        network = Network(topo, build_routing_table(topo, "xy"), CFG)
        policy = TimeoutGatingPolicy(idle_timeout=16, protected_nodes=frozenset({0}))
        for _ in range(100):
            policy.step(network)
            network.step()
        assert not network.routers[0].gated
        assert network.powered_routers() == 1

    def test_traffic_still_delivered_with_gating(self):
        """Packets wake gated routers and still arrive (with latency cost)."""
        topo = SprintTopology.for_level(4, 4, 16)
        traffic = TrafficGenerator(list(range(16)), 0.05, 5, seed=3)
        policy = TimeoutGatingPolicy(idle_timeout=32)
        res = run_simulation(
            topo, traffic, CFG, routing="xy",
            warmup_cycles=400, measure_cycles=1500, gating_policy=policy,
        )
        assert not res.saturated
        assert res.packets_ejected == res.packets_measured

    def test_gating_adds_latency_at_light_load(self):
        """The paper's point: timeout gating pays wakeup latency precisely
        when traffic is sparse."""
        topo = SprintTopology.for_level(4, 4, 16)

        def run(policy):
            traffic = TrafficGenerator(list(range(16)), 0.01, 5, seed=3)
            return run_simulation(
                topo, traffic, CFG, routing="xy",
                warmup_cycles=400, measure_cycles=3000, gating_policy=policy,
            )

        gated = run(TimeoutGatingPolicy(idle_timeout=16))
        plain = run(None)
        assert gated.avg_latency > plain.avg_latency

    def test_router_with_buffered_flits_refuses_gating(self):
        topo = SprintTopology.for_level(4, 4, 16)
        network = Network(topo, build_routing_table(topo, "xy"), CFG)
        from repro.noc.flit import Packet

        network.inject(Packet(pid=0, source=0, destination=15, length=5, created_at=0))
        network.step()
        assert network.routers[0].buffered_flits > 0
        assert not network.routers[0].gate()
