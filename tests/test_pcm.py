"""Tests for the PCM sprint-thermal model (Figure 1)."""

import math

import pytest

from repro.thermal.pcm import (
    DEFAULT_PCM,
    PCMParams,
    sprint_duration,
    sprint_phases,
    temperature_timeline,
)


class TestParams:
    def test_default_ordering(self):
        p = DEFAULT_PCM
        assert p.start_temperature_k < p.melt_temperature_k < p.max_temperature_k

    def test_bad_ordering_rejected(self):
        with pytest.raises(ValueError):
            PCMParams(melt_temperature_k=300.0)

    def test_bad_energy_rejected(self):
        with pytest.raises(ValueError):
            PCMParams(latent_energy_j=0.0)


class TestPhases:
    def test_full_sprint_lasts_about_one_second(self):
        """The paper (after Raghavan et al.) assumes the chip sustains a
        full sprint for ~1 s in the worst case."""
        from repro.power.chip_power import ChipPowerModel

        full_power = ChipPowerModel(16).sprint_chip_power(16, "full").total
        assert sprint_duration(full_power) == pytest.approx(1.0, abs=0.1)

    def test_melting_dominates(self):
        phases = sprint_phases(150.0)
        assert phases.melting_s > phases.heat_to_melt_s
        assert phases.melting_s > phases.melt_to_max_s

    def test_durations_shrink_with_power(self):
        durations = [sprint_duration(p) for p in (60.0, 100.0, 150.0, 200.0)]
        assert durations == sorted(durations, reverse=True)

    def test_sub_tdp_sprint_unconstrained(self):
        phases = sprint_phases(DEFAULT_PCM.sustainable_power_w - 1.0)
        assert math.isinf(phases.total_s)

    def test_total_is_sum(self):
        phases = sprint_phases(120.0)
        assert phases.total_s == pytest.approx(
            phases.heat_to_melt_s + phases.melting_s + phases.melt_to_max_s
        )

    def test_invalid_power(self):
        with pytest.raises(ValueError):
            sprint_phases(0.0)

    def test_excess_power_scaling(self):
        """All phases scale as 1/(P - P_sustainable)."""
        p = DEFAULT_PCM
        a = sprint_phases(p.sustainable_power_w + 50.0)
        b = sprint_phases(p.sustainable_power_w + 100.0)
        assert a.melting_s == pytest.approx(2 * b.melting_s)
        assert a.heat_to_melt_s == pytest.approx(2 * b.heat_to_melt_s)


class TestTimeline:
    def test_shape(self):
        samples = temperature_timeline(150.0, points_per_phase=10)
        times = [t for t, _ in samples]
        temps = [k for _, k in samples]
        assert times == sorted(times)
        assert temps[0] == DEFAULT_PCM.start_temperature_k
        assert max(temps) == DEFAULT_PCM.max_temperature_k
        assert temps[-1] == DEFAULT_PCM.max_temperature_k

    def test_melt_plateau_present(self):
        samples = temperature_timeline(150.0, points_per_phase=10)
        melt = sum(1 for _, k in samples if k == DEFAULT_PCM.melt_temperature_k)
        assert melt >= 10  # the whole phase-2 segment sits at T_melt

    def test_cooldown_tail(self):
        samples = temperature_timeline(150.0, points_per_phase=10, cooldown_s=2.0)
        final = samples[-1][1]
        assert final < DEFAULT_PCM.melt_temperature_k
        assert final > DEFAULT_PCM.start_temperature_k

    def test_unconstrained_raises(self):
        with pytest.raises(ValueError):
            temperature_timeline(10.0)
