"""Tests for the lease-based sweep fabric: leases, churn, chaos, resume.

Covers the :mod:`repro.exec.fabric` primitives directly (lease table,
chaos coin, audit) and the full stack end to end: fabric sweeps equal to
serial sweeps bit for bit, kill-9 worker churn, poisoned-point
quarantine, external ``repro worker`` processes joining mid-sweep,
SIGKILL-the-coordinator resume, and graceful SIGINT drain with the
distinct exit code.
"""

import json
import os
import pickle
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.exec import (
    FabricConfig,
    QueueError,
    ResultCache,
    SweepRunner,
    audit_queue,
)
from repro.exec.fabric import ChaosPlan, LeaseTable, chaos_coin
from repro.noc.spec import SimulationSpec, TrafficSpec

CFG = NoCConfig()
REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def small_spec(level=4, rate=0.1, seed=0, **overrides) -> SimulationSpec:
    topo = SprintTopology.for_level(4, 4, level)
    kwargs = dict(
        topology=topo,
        traffic=TrafficSpec(tuple(topo.active_nodes), rate,
                            CFG.packet_length_flits, "uniform", seed=seed),
        config=CFG,
        routing="cdor" if level < 16 else "xy",
        warmup_cycles=100,
        measure_cycles=300,
        drain_cycles=600,
        backend="vectorized",
    )
    kwargs.update(overrides)
    return SimulationSpec(**kwargs)


def grid(levels=(2, 4), rates=(0.1, 0.2), **overrides):
    return [small_spec(level=lv, rate=r, **overrides)
            for lv in levels for r in rates]


def seeded_table(tmp_path, specs=None, ttl=5.0) -> LeaseTable:
    specs = specs if specs is not None else grid()
    table = LeaseTable(tmp_path / "queue")
    table.seed(
        [(s.cache_key(), s) for s in specs],
        fingerprint="fp-test",
        results_dir=str(tmp_path / "results"),
        settings={"lease_ttl_s": ttl, "heartbeat_s": None,
                  "quarantine_after": 3},
    )
    return table


def run_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.pop("REPRO_SWEEP_CHAOS", None)
    return env


class TestLeaseTable:
    def test_seed_load_specs_round_trip(self, tmp_path):
        specs = grid()
        table = seeded_table(tmp_path, specs)
        meta = LeaseTable(table.directory)
        assert meta.load()["total"] == len(specs)
        loaded = meta.specs()
        assert set(loaded) == {s.cache_key() for s in specs}
        assert loaded[specs[0].cache_key()] == specs[0]

    def test_adopt_same_fingerprint_reject_other(self, tmp_path):
        specs = grid()
        table = seeded_table(tmp_path, specs)
        pending = [(s.cache_key(), s) for s in specs]
        again = LeaseTable(table.directory)
        assert again.seed(pending, fingerprint="fp-test",
                          results_dir=str(tmp_path / "results"),
                          settings={}) is True  # adopted, not re-seeded
        with pytest.raises(QueueError):
            LeaseTable(table.directory).seed(
                pending, fingerprint="fp-other",
                results_dir=str(tmp_path / "results"), settings={})
        events, _ = table.read_events()
        assert sum(1 for e in events if e["ev"] == "seed") == 1

    def test_claim_is_exclusive_until_released(self, tmp_path):
        table = seeded_table(tmp_path)
        key = table.meta["keys"][0]
        lease = table.claim(key, "alpha", 1)
        assert lease is not None and lease["worker"] == "alpha"
        assert table.claim(key, "beta", 1) is None
        table.release(key, "alpha", lease["nonce"])
        assert table.claim(key, "beta", 1) is not None

    def test_heartbeat_extends_and_fences(self, tmp_path):
        table = seeded_table(tmp_path, ttl=2.0)
        key = table.meta["keys"][0]
        lease = table.claim(key, "alpha", 1)
        before = table.read_lease(key)["deadline"]
        time.sleep(0.05)
        assert table.heartbeat(key, "alpha", lease["nonce"])
        assert table.read_lease(key)["deadline"] > before
        # another worker's claim (after a reclaim) fences the old holder
        os.unlink(table.lease_path(key))
        other = table.claim(key, "beta", 2)
        assert not table.heartbeat(key, "alpha", lease["nonce"])
        assert table.read_lease(key)["nonce"] == other["nonce"]
        # a fenced release must not drop the new holder's lease
        table.release(key, "alpha", lease["nonce"])
        assert table.lease_exists(key)

    def test_reclaim_expired_and_by_worker(self, tmp_path):
        table = seeded_table(tmp_path, ttl=0.2)
        keys = table.meta["keys"]
        table.claim(keys[0], "alpha", 1)
        table.claim(keys[1], "beta", 1)
        assert table.reclaim_expired() == []  # nothing expired yet
        time.sleep(0.3)
        reclaimed = table.reclaim_expired()
        assert {lease["worker"] for lease in reclaimed} == {"alpha", "beta"}
        assert table.active_leases() == 0
        # fast reclaim by worker id, without waiting for the deadline
        table.claim(keys[0], "gamma", 2)
        assert [lease["key"] for lease in table.reclaim_worker("gamma")] == [keys[0]]
        events, _ = table.read_events()
        assert sum(1 for e in events if e["ev"] == "expired") == 3

    def test_read_events_tolerates_torn_tail(self, tmp_path):
        table = seeded_table(tmp_path)
        table.append({"ev": "claim", "key": "k", "worker": "w", "attempt": 1})
        whole, offset = table.read_events()
        with open(table.events_path, "ab") as fh:
            fh.write(b'{"ev": "done", "key": "k", "wor')  # torn mid-append
        events, new_offset = table.read_events(offset)
        assert events == [] and new_offset == offset
        with open(table.events_path, "ab") as fh:
            fh.write(b'ker": "w"}\n')  # the append completes
        events, _ = table.read_events(new_offset)
        assert [e["ev"] for e in events] == ["done"]
        assert len(whole) >= 2  # seed + claim


class TestChaos:
    def test_coin_deterministic_uniform(self):
        assert chaos_coin("k", 1) == chaos_coin("k", 1)
        assert chaos_coin("k", 1) != chaos_coin("k", 2)
        assert 0.0 <= chaos_coin("key", 3) <= 1.0

    def test_plan_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CHAOS", raising=False)
        assert ChaosPlan.from_env() is None
        monkeypatch.setenv("REPRO_SWEEP_CHAOS", "kill9:0.3:0.5")
        plan = ChaosPlan.from_env()
        assert plan.mode == "kill9"
        assert plan.num(0, 9.0) == 0.3 and plan.num(1, 9.0) == 0.5
        assert plan.num(2, 7.0) == 7.0  # absent arg: default


class TestConfigValidation:
    def test_rejects_bad_values(self, tmp_path):
        with pytest.raises(ValueError):
            FabricConfig(queue_dir=str(tmp_path), workers=-1)
        with pytest.raises(ValueError):
            FabricConfig(queue_dir=str(tmp_path), lease_ttl_s=0)
        with pytest.raises(ValueError):
            FabricConfig(queue_dir=str(tmp_path), quarantine_after=0)

    def test_runner_workers_zero_needs_fabric(self, tmp_path):
        with pytest.raises(ValueError):
            SweepRunner(workers=0)
        config = FabricConfig(queue_dir=str(tmp_path / "q"), workers=0)
        assert SweepRunner(workers=0, fabric=config).workers == 0


class TestFabricSweep:
    def test_matches_serial_results_bit_for_bit(self, tmp_path):
        specs = grid()
        serial = SweepRunner(workers=1).run(specs)
        config = FabricConfig(queue_dir=str(tmp_path / "q"), workers=2,
                              lease_ttl_s=10.0)
        runner = SweepRunner(workers=2, fabric=config,
                             cache=ResultCache(directory=str(tmp_path / "c")))
        report = runner.run(specs)
        assert report.ok and report.total_points == len(specs)
        assert report.fabric is not None
        assert report.fabric.workers_spawned >= 1
        for mine, theirs in zip(report.points, serial.points):
            assert mine.result == theirs.result
        audit = audit_queue(tmp_path / "q")
        assert audit.ok, audit.summary()
        assert audit.done == len(specs)

    def test_quarantines_poisoned_point_with_history(self, tmp_path,
                                                     monkeypatch):
        # every attempt errors (chaos 'raise' fires inside the simulation
        # guard in each worker), so distinct workers keep dying on the
        # same points until the circuit breaker trips
        monkeypatch.setenv("REPRO_SWEEP_CHAOS", "raise")
        specs = grid(levels=(2,), rates=(0.1,))
        config = FabricConfig(queue_dir=str(tmp_path / "q"), workers=2,
                              lease_ttl_s=10.0, quarantine_after=2)
        report = SweepRunner(workers=2, fabric=config).run(specs)
        assert not report.ok
        assert report.total_points == len(specs)
        failure = report.failures[0]
        assert failure.kind == "quarantined"
        assert "2 distinct worker(s)" in failure.error
        events = [entry["event"] for entry in failure.history]
        assert "claim" in events and "error" in events
        lines = failure.history_lines()
        assert any("leased to" in line for line in lines)
        assert any("raised:" in line for line in lines)
        audit = audit_queue(tmp_path / "q")
        assert audit.ok and audit.quarantined == len(specs)

    def test_survives_kill9_worker_churn(self, tmp_path, monkeypatch):
        # workers SIGKILL themselves 0.2-0.5s after starting; the reference
        # backend keeps points slow enough that deaths land mid-lease, and
        # the sweep must still complete every point exactly once
        monkeypatch.setenv("REPRO_SWEEP_CHAOS", "kill9:0.2:0.3")
        specs = grid(levels=(2, 4, 8), rates=(0.1, 0.3),
                     backend="reference", warmup_cycles=200,
                     measure_cycles=800, drain_cycles=1500)
        config = FabricConfig(queue_dir=str(tmp_path / "q"), workers=3,
                              lease_ttl_s=3.0, quarantine_after=100)
        cache = ResultCache(directory=str(tmp_path / "c"))
        report = SweepRunner(workers=3, fabric=config, cache=cache).run(specs)
        assert report.ok, report.summary()
        assert report.total_points == len(specs)
        assert len(report.points) + len(report.failures) == len(specs)
        assert report.fabric.workers_spawned >= 3
        audit = audit_queue(tmp_path / "q")
        assert audit.ok, audit.summary()
        assert audit.done == len(specs)

    def test_external_worker_joins_and_drains(self, tmp_path):
        # coordinator with zero local workers: only an externally spawned
        # `repro worker` can finish the sweep, proving mid-sweep joins
        specs = grid()
        config = FabricConfig(queue_dir=str(tmp_path / "q"), workers=0,
                              lease_ttl_s=10.0)
        runner = SweepRunner(workers=0, fabric=config)
        box = {}

        def coordinate():
            box["report"] = runner.run(specs)

        thread = threading.Thread(target=coordinate)
        thread.start()
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--queue", str(tmp_path / "q"), "--id", "joiner", "--wait", "30"],
            env=run_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        out, _ = proc.communicate(timeout=120)
        thread.join(timeout=120)
        assert not thread.is_alive()
        assert proc.returncode == 0, out
        report = box["report"]
        assert report.ok and report.total_points == len(specs)
        assert report.fabric.workers_spawned == 0
        assert report.fabric.per_worker.get("joiner") == len(specs)
        assert f"{len(specs)} point(s) done" in out

    def test_worker_gives_up_without_a_queue(self, tmp_path, capsys):
        from repro.exec import worker_main

        code = worker_main(str(tmp_path / "nowhere"), wait_s=0.2)
        assert code == 2
        assert "no sweep queue" in capsys.readouterr().out


class TestChaosModes:
    def test_torn_write_is_survived(self, tmp_path, monkeypatch):
        # a worker emulates a pre-atomic writer: truncated pickle straight
        # into the cache slot, then SIGKILL.  The corrupt-entry path must
        # swallow it and the point must be re-leased and completed.
        monkeypatch.setenv("REPRO_SWEEP_CHAOS", "torn-write:0.5")
        specs = grid()
        torn = [s.cache_key() for s in specs
                if chaos_coin(s.cache_key(), 1) < 0.5]
        assert torn, "grid must contain at least one torn-write victim"
        config = FabricConfig(queue_dir=str(tmp_path / "q"), workers=2,
                              lease_ttl_s=2.0, quarantine_after=100)
        report = SweepRunner(workers=2, fabric=config,
                             cache=ResultCache(directory=str(tmp_path / "c"))
                             ).run(specs)
        assert report.ok, report.summary()
        assert report.fabric.worker_deaths >= 1
        audit = audit_queue(tmp_path / "q")
        assert audit.ok, audit.summary()

    def test_stall_heartbeat_expires_and_relets(self, tmp_path, monkeypatch):
        # a stalled worker stops heartbeating: its lease must expire, the
        # point must be re-leased elsewhere, and the staller must fence
        # itself out instead of double-reporting
        monkeypatch.setenv("REPRO_SWEEP_CHAOS", "stall-heartbeat:0.6:3.0")
        specs = grid()
        stalled = [s.cache_key() for s in specs
                   if chaos_coin(s.cache_key(), 1) < 0.6]
        assert stalled, "grid must contain at least one stalled victim"
        config = FabricConfig(queue_dir=str(tmp_path / "q"), workers=2,
                              lease_ttl_s=1.0, quarantine_after=100)
        report = SweepRunner(workers=2, fabric=config).run(specs)
        assert report.ok, report.summary()
        assert report.fabric.expired >= 1
        audit = audit_queue(tmp_path / "q")
        assert audit.ok, audit.summary()
        assert audit.expired >= 1

    def test_slow_worker_heartbeat_keeps_lease(self, tmp_path, monkeypatch):
        # a slow-but-alive worker sleeps well past the lease ttl while
        # heartbeating: the lease must be renewed, never expired
        monkeypatch.setenv("REPRO_SWEEP_CHAOS", "slow:1.0:2.5")
        specs = grid(levels=(2,), rates=(0.1, 0.2))
        config = FabricConfig(queue_dir=str(tmp_path / "q"), workers=2,
                              lease_ttl_s=1.0, quarantine_after=3)
        report = SweepRunner(workers=2, fabric=config).run(specs)
        assert report.ok, report.summary()
        assert report.fabric.expired == 0
        assert audit_queue(tmp_path / "q").ok


class TestResumeAndDrain:
    def sweep_cmd(self, tmp_path, extra=()):
        return [sys.executable, "-m", "repro", "sweep",
                "--levels", "2", "4", "8", "--rates", "0.1", "0.2", "0.3",
                "--backend", "reference", "--warmup", "200",
                "--measure", "800", "--drain", "1500",
                "--cache-dir", str(tmp_path / "cache"),
                "--ledger-dir", str(tmp_path / "ledger"), *extra]

    def ledger_runs(self, tmp_path):
        path = tmp_path / "ledger" / "runs.jsonl"
        if not path.exists():
            return []
        return [json.loads(line)
                for line in path.read_text().splitlines() if line.strip()]

    def test_sigkilled_fabric_sweep_resumes_with_zero_reruns(self, tmp_path):
        # kill -9 the whole sweep mid-flight, then re-run the identical
        # command: completed points must come back as cache hits (zero
        # re-simulations of finished work) and the queue must be adopted,
        # not rejected as a different sweep
        cmd = self.sweep_cmd(
            tmp_path, ["--workers", "2", "--fabric", str(tmp_path / "q"),
                       "--lease-ttl", "3"])
        proc = subprocess.Popen(cmd, env=run_env(), stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL,
                                start_new_session=True)
        deadline = time.monotonic() + 60
        cache_dir = tmp_path / "cache"
        while time.monotonic() < deadline:  # wait for >= 1 checkpointed point
            if cache_dir.is_dir() and any(
                    name.endswith(".pkl") for name in os.listdir(cache_dir)):
                break
            time.sleep(0.1)
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        done_before = sum(1 for name in os.listdir(cache_dir)
                          if name.endswith(".pkl"))
        assert done_before >= 1
        second = subprocess.run(
            self.sweep_cmd(
                tmp_path, ["--workers", "2", "--fabric", str(tmp_path / "q"),
                           "--lease-ttl", "3", "--resume"]),
            env=run_env(), capture_output=True, text=True, timeout=240)
        assert second.returncode == 0, second.stdout + second.stderr
        assert f"resumed: {done_before} points" in second.stdout
        assert "invariants hold" in second.stdout
        # exactly one sweep record per completed run in the ledger (the
        # killed run never reached its record)
        runs = [r for r in self.ledger_runs(tmp_path) if r["kind"] == "sweep"]
        assert len(runs) == 1

    def test_sigint_drains_checkpoints_and_exits_5(self, tmp_path):
        proc = subprocess.Popen(
            self.sweep_cmd(tmp_path, ["--workers", "2"]),
            env=run_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, start_new_session=True)
        deadline = time.monotonic() + 60
        cache_dir = tmp_path / "cache"
        while time.monotonic() < deadline:  # let >= 1 point checkpoint
            if cache_dir.is_dir() and any(
                    name.endswith(".pkl") for name in os.listdir(cache_dir)):
                break
            time.sleep(0.1)
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 5, out + err
        assert "draining in-flight points" in out
        assert "INTERRUPTED" in out
        assert "resume with:" in out
        assert "--resume" in out
        assert "Traceback" not in err
        # the drained sweep resumes: finished points are recognized, the
        # remainder simulates, and the second run exits clean
        second = subprocess.run(
            self.sweep_cmd(tmp_path, ["--workers", "2", "--resume"]),
            env=run_env(), capture_output=True, text=True, timeout=240)
        assert second.returncode == 0, second.stdout + second.stderr
        assert "resumed:" in second.stdout

    def test_request_stop_interrupts_serial_run(self, tmp_path):
        specs = grid(levels=(2, 4), rates=(0.1, 0.2, 0.3))
        cache = ResultCache(directory=str(tmp_path / "c"))
        runner = SweepRunner(workers=1, cache=cache)

        def stop_after_first(done, total, point):
            runner.request_stop()

        runner.progress = stop_after_first
        report = runner.run(specs)
        assert report.interrupted
        assert len(report.points) < len(specs)
        assert "INTERRUPTED" in report.summary()
        manifest = [value for key, value in cache._memory.items()
                    if key.startswith("__json__:sweep-")]
        assert manifest and manifest[0]["interrupted"] is True
        # a fresh run with the same runner is not poisoned by the old stop
        runner.progress = None
        report = runner.run(specs)
        assert not report.interrupted and report.total_points == len(specs)


class TestCrashAtomicCache:
    def test_put_killed_midway_never_leaves_truncated_entry(self, tmp_path):
        # hammer put() in a child and SIGKILL it at a random moment: every
        # published entry must load; at worst a stray *.tmp file remains
        script = (
            "import os, sys\n"
            "from repro.exec import ResultCache\n"
            "cache = ResultCache(directory=sys.argv[1])\n"
            "blob = list(range(50_000))\n"
            "i = 0\n"
            "while True:\n"
            "    cache.put(f'key{i % 7}', (i, blob))\n"
            "    i += 1\n"
        )
        proc = subprocess.Popen([sys.executable, "-c", script,
                                 str(tmp_path / "cache")], env=run_env())
        time.sleep(1.5)
        proc.kill()
        proc.wait(timeout=30)
        entries = [name for name in os.listdir(tmp_path / "cache")
                   if name.endswith(".pkl")]
        assert entries, "child never published an entry"
        for name in entries:
            with open(tmp_path / "cache" / name, "rb") as fh:
                index, blob = pickle.load(fh)  # must never raise
            assert blob[-1] == 49_999

    def test_put_unpicklable_raises_and_leaks_no_tmp(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path / "cache"))
        with pytest.raises(Exception):
            cache.put("bad", lambda: None)
        leftovers = os.listdir(tmp_path / "cache")
        assert leftovers == []


class TestFabricCLI:
    def test_audit_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["fabric", "audit", str(tmp_path / "missing")]) == 2
        assert "no sweep queue" in capsys.readouterr().out
        specs = grid(levels=(2,), rates=(0.1,))
        config = FabricConfig(queue_dir=str(tmp_path / "q"), workers=1,
                              lease_ttl_s=10.0)
        report = SweepRunner(workers=1, fabric=config).run(specs)
        assert report.ok
        capsys.readouterr()
        assert main(["fabric", "audit", str(tmp_path / "q")]) == 0
        assert "invariants hold" in capsys.readouterr().out

    def test_sweep_fabric_flag_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["sweep", "--levels", "2", "--rates", "0.1", "0.2",
                     "--workers", "2", "--backend", "vectorized",
                     "--warmup", "100", "--measure", "300", "--drain", "400",
                     "--fabric", str(tmp_path / "q"),
                     "--cache-dir", str(tmp_path / "c")])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "fabric:" in out
        assert "invariants hold" in out

    def test_sweep_rejects_foreign_queue(self, tmp_path, capsys):
        from repro.cli import main

        first = main(["sweep", "--levels", "2", "--rates", "0.1",
                      "--backend", "vectorized", "--warmup", "100",
                      "--measure", "300", "--drain", "400",
                      "--fabric", str(tmp_path / "q")])
        assert first == 0
        capsys.readouterr()
        second = main(["sweep", "--levels", "4", "--rates", "0.3",
                       "--backend", "vectorized", "--warmup", "100",
                       "--measure", "300", "--drain", "400",
                       "--fabric", str(tmp_path / "q")])
        assert second == 2
        assert "different sweep" in capsys.readouterr().out


class TestFabricMetrics:
    def test_churn_counters_reach_registry(self, tmp_path, monkeypatch):
        from repro.telemetry import Telemetry

        monkeypatch.setenv("REPRO_SWEEP_CHAOS", "stall-heartbeat:0.6:3.0")
        telemetry = Telemetry(sample_interval=0)
        specs = grid()
        config = FabricConfig(queue_dir=str(tmp_path / "q"), workers=2,
                              lease_ttl_s=1.0, quarantine_after=100)
        report = SweepRunner(workers=2, fabric=config,
                             telemetry=telemetry).run(specs)
        assert report.ok
        metrics = telemetry.metrics
        assert metrics.value("fabric_lease_claims_total") >= len(specs)
        assert metrics.value("fabric_lease_expired_total") >= 1
        assert metrics.value("fabric_requeued_total") >= 1
        # pre-registered counters render even when untouched
        text = metrics.render_prometheus()
        assert "fabric_quarantined_total 0" in text
        assert "fabric_workers_alive" in text
