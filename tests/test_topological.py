"""Tests for Algorithm 1 (irregular topological sprinting)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.topological import SprintTopology, dark_nodes, sprint_order, sprint_region
from repro.util.directions import Direction


class TestSprintOrder:
    def test_paper_example_three_core(self):
        """Both metrics choose nodes 0, 1, 4 for a 3-core sprint."""
        assert sprint_order(4, 4)[:3] == [0, 1, 4]
        assert sprint_order(4, 4, metric="hamming")[:3] == [0, 1, 4]

    def test_paper_example_four_core(self):
        """Euclidean picks the diagonal node 5; Hamming picks node 2."""
        assert sprint_order(4, 4)[:4] == [0, 1, 4, 5]
        hamming = sprint_order(4, 4, metric="hamming")[:4]
        assert 2 in hamming and 5 not in hamming

    def test_full_order_is_permutation(self):
        order = sprint_order(4, 4)
        assert sorted(order) == list(range(16))

    def test_master_first(self):
        for master in (0, 5, 10, 15):
            assert sprint_order(4, 4, master)[0] == master

    def test_distances_nondecreasing(self):
        from repro.util.geometry import euclidean_sq, node_to_coord

        order = sprint_order(4, 4)
        origin = node_to_coord(0, 4)
        dists = [euclidean_sq(node_to_coord(n, 4), origin) for n in order]
        assert dists == sorted(dists)

    def test_ties_broken_by_index(self):
        order = sprint_order(4, 4)
        # nodes 1 and 4 are equidistant from node 0; 1 must come first
        assert order.index(1) < order.index(4)

    def test_invalid_master(self):
        with pytest.raises(ValueError):
            sprint_order(4, 4, master=16)

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            sprint_order(4, 4, metric="chebyshev")

    def test_region_prefix(self):
        assert sprint_region(4, 4, 8) == sprint_order(4, 4)[:8]

    def test_region_level_bounds(self):
        with pytest.raises(ValueError):
            sprint_region(4, 4, 0)
        with pytest.raises(ValueError):
            sprint_region(4, 4, 17)


class TestSprintTopology:
    def test_for_level(self):
        topo = SprintTopology.for_level(4, 4, 4)
        assert topo.active_nodes == (0, 1, 4, 5)
        assert topo.level == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            SprintTopology(4, 4, ())
        with pytest.raises(ValueError):
            SprintTopology(4, 4, (0, 0))
        with pytest.raises(ValueError):
            SprintTopology(4, 4, (0, 99))
        with pytest.raises(ValueError):
            SprintTopology(4, 4, (1, 2), master=0)  # master not active

    def test_neighbor_edges(self):
        topo = SprintTopology.for_level(4, 4, 16)
        assert topo.neighbor(0, Direction.NORTH) is None
        assert topo.neighbor(0, Direction.WEST) is None
        assert topo.neighbor(0, Direction.EAST) == 1
        assert topo.neighbor(0, Direction.SOUTH) == 4
        assert topo.neighbor(15, Direction.EAST) is None

    def test_connectivity_bits(self):
        topo = SprintTopology.for_level(4, 4, 4)  # {0,1,4,5}
        bits = topo.connectivity_bits(0)
        assert bits[Direction.EAST] and bits[Direction.SOUTH]
        assert not bits[Direction.WEST] and not bits[Direction.NORTH]
        bits5 = topo.connectivity_bits(5)
        assert bits5[Direction.WEST] and bits5[Direction.NORTH]
        assert not bits5[Direction.EAST] and not bits5[Direction.SOUTH]

    def test_connected_requires_both_active(self):
        topo = SprintTopology.for_level(4, 4, 2)  # {0,1}
        assert topo.connected(0, Direction.EAST)
        assert not topo.connected(1, Direction.EAST)  # node 2 is dark
        assert not topo.connected(0, Direction.SOUTH)  # node 4 is dark

    def test_active_links_four_core(self):
        topo = SprintTopology.for_level(4, 4, 4)
        assert topo.active_links() == [(0, 1), (0, 4), (1, 5), (4, 5)]

    def test_dark_nodes_partition(self):
        topo = SprintTopology.for_level(4, 4, 7)
        dark = dark_nodes(topo)
        assert len(dark) == 9
        assert set(dark) | set(topo.active_nodes) == set(range(16))

    def test_every_level_convex_connected_4x4(self):
        """The paper's convexity claim, checked exhaustively on the 4x4 mesh."""
        for level in range(1, 17):
            topo = SprintTopology.for_level(4, 4, level)
            assert topo.is_convex(), f"level {level} not discretely convex"
            assert topo.is_orthogonally_convex(), f"level {level} not orthogonally convex"
            assert topo.is_connected(), f"level {level} not connected"

    def test_every_level_convex_connected_8x8(self):
        for level in range(1, 65, 3):
            topo = SprintTopology.for_level(8, 8, level)
            assert topo.is_orthogonally_convex()
            assert topo.is_connected()

    @settings(max_examples=60, deadline=None)
    @given(
        width=st.integers(2, 6),
        height=st.integers(2, 6),
        data=st.data(),
    )
    def test_property_regions_routable(self, width, height, data):
        """Any level from any master yields a connected, orthogonally
        convex region -- the precondition CDOR needs."""
        master = data.draw(st.integers(0, width * height - 1))
        level = data.draw(st.integers(1, width * height))
        topo = SprintTopology.for_level(width, height, level, master)
        assert topo.is_connected()
        assert topo.is_orthogonally_convex()

    def test_hamming_metric_region_valid(self):
        topo = SprintTopology.for_level(4, 4, 6, metric="hamming")
        assert topo.is_connected()
        assert len(topo.active_nodes) == 6
