"""Tests for the text-mode chart renderers."""

import pytest

from repro.util.charts import bar_chart, line_plot, sparkline


class TestBarChart:
    def test_basic(self):
        out = bar_chart({"a": 1.0, "bb": 2.0}, width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a ")
        assert "2.00" in lines[1]

    def test_longest_bar_fills_width(self):
        out = bar_chart({"x": 4.0}, width=8)
        assert "█" * 8 in out

    def test_zero_values_ok(self):
        out = bar_chart({"x": 0.0, "y": 0.0})
        assert "0.00" in out

    def test_title(self):
        out = bar_chart({"x": 1.0}, title="T")
        assert out.splitlines()[0] == "T"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"x": -1.0})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_proportionality(self):
        out = bar_chart({"half": 5.0, "full": 10.0}, width=20)
        half_line, full_line = out.splitlines()
        assert half_line.count("█") == 10
        assert full_line.count("█") == 20


class TestLinePlot:
    def test_basic(self):
        out = line_plot({"s": [(0, 0), (1, 1), (2, 4)]}, width=20, height=8)
        assert "*" in out
        assert "x: 0 .. 2" in out
        assert "*=s" in out

    def test_two_series_distinct_markers(self):
        out = line_plot(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]}, width=20, height=8
        )
        assert "*" in out and "+" in out
        assert "*=a" in out and "+=b" in out

    def test_flat_series(self):
        out = line_plot({"s": [(0, 5), (1, 5)]}, width=10, height=4)
        assert "y: 5 .. 5" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"s": []})

    def test_small_canvas_rejected(self):
        with pytest.raises(ValueError):
            line_plot({"s": [(0, 0)]}, width=2, height=2)


class TestSparkline:
    def test_monotone(self):
        out = sparkline([1, 2, 3, 4])
        assert len(out) == 4
        assert out[0] == "▁"
        assert out[-1] == "█"

    def test_constant(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])
