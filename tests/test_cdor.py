"""Tests for Algorithm 2 (convex dimension-order routing)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cdor import (
    CdorRouter,
    ConnectivityBits,
    RoutingError,
    cdor_output_port,
    dor_output_port,
)
from repro.core.topological import SprintTopology
from repro.util.directions import Direction
from repro.util.geometry import Coord

FULL = ConnectivityBits(cw=True, ce=True)
NONE = ConnectivityBits(cw=False, ce=False)


class TestCdorDecision:
    def test_local_delivery(self):
        assert cdor_output_port(Coord(1, 1), Coord(1, 1), FULL) is Direction.LOCAL

    def test_x_first_like_dor(self):
        assert cdor_output_port(Coord(0, 0), Coord(2, 2), FULL) is Direction.EAST
        assert cdor_output_port(Coord(2, 2), Coord(0, 0), FULL) is Direction.WEST

    def test_y_when_aligned(self):
        assert cdor_output_port(Coord(1, 0), Coord(1, 3), FULL) is Direction.SOUTH
        assert cdor_output_port(Coord(1, 3), Coord(1, 0), FULL) is Direction.NORTH

    def test_detour_south_when_east_disconnected(self):
        assert cdor_output_port(Coord(0, 0), Coord(2, 2), NONE) is Direction.SOUTH

    def test_detour_north_when_east_disconnected(self):
        assert cdor_output_port(Coord(0, 2), Coord(2, 0), NONE) is Direction.NORTH

    def test_detour_when_west_disconnected(self):
        assert cdor_output_port(Coord(2, 0), Coord(0, 2), NONE) is Direction.SOUTH

    def test_unroutable_due_east(self):
        with pytest.raises(RoutingError):
            cdor_output_port(Coord(0, 0), Coord(2, 0), NONE)

    def test_unroutable_due_west(self):
        with pytest.raises(RoutingError):
            cdor_output_port(Coord(2, 0), Coord(0, 0), NONE)


class TestDorDecision:
    def test_x_has_priority(self):
        assert dor_output_port(Coord(0, 1), Coord(3, 0)) is Direction.EAST

    def test_local(self):
        assert dor_output_port(Coord(2, 2), Coord(2, 2)) is Direction.LOCAL

    def test_pure_y(self):
        assert dor_output_port(Coord(1, 3), Coord(1, 1)) is Direction.NORTH


class TestConnectivityBits:
    def test_from_topology(self):
        topo = SprintTopology.for_level(4, 4, 4)
        bits0 = ConnectivityBits.from_topology(topo, 0)
        assert bits0.ce and not bits0.cw
        assert bits0.cs and not bits0.cn
        bits5 = ConnectivityBits.from_topology(topo, 5)
        assert bits5.cw and not bits5.ce


class TestCdorRouter:
    def test_paper_ne_turn_example(self):
        """Figure 5a: routing in the 8-core region takes a NE turn at node 5,
        which is legal because node 9's east port is disconnected."""
        topo = SprintTopology.for_level(4, 4, 8)  # {0,1,2,4,5,6,8,9}
        router = CdorRouter(topo)
        path = router.walk(9, 2)
        assert path == [9, 5, 6, 2]
        turns = router.turns(9, 2)
        assert (5, Direction.NORTH, Direction.EAST) in turns
        # ...and indeed node 9's east neighbour (10) is dark
        assert not topo.connected(9, Direction.EAST)

    def test_paths_stay_in_region_all_levels(self):
        for level in range(1, 17):
            topo = SprintTopology.for_level(4, 4, level)
            router = CdorRouter(topo)
            active = topo.active_set
            for src in topo.active_nodes:
                for dst in topo.active_nodes:
                    path = router.walk(src, dst)
                    assert path[0] == src and path[-1] == dst
                    assert all(n in active for n in path)

    def test_hop_count_minimal_on_full_mesh(self):
        from repro.util.geometry import manhattan, node_to_coord

        topo = SprintTopology.for_level(4, 4, 16)
        router = CdorRouter(topo)
        for src in range(16):
            for dst in range(16):
                expected = manhattan(node_to_coord(src, 4), node_to_coord(dst, 4))
                assert router.hop_count(src, dst) == expected

    def test_full_mesh_reduces_to_dor(self):
        """With every connectivity bit set, CDOR must behave exactly as XY."""
        topo = SprintTopology.for_level(4, 4, 16)
        router = CdorRouter(topo)
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                got = router.next_port(src, dst)
                expected = dor_output_port(topo.coord(src), topo.coord(dst))
                assert got is expected

    def test_gated_destination_rejected(self):
        topo = SprintTopology.for_level(4, 4, 4)
        router = CdorRouter(topo)
        with pytest.raises(RoutingError):
            router.next_port(0, 15)

    def test_gated_source_rejected(self):
        topo = SprintTopology.for_level(4, 4, 4)
        router = CdorRouter(topo)
        with pytest.raises(RoutingError):
            router.walk(15, 0)

    def test_bits_for_dark_router_rejected(self):
        topo = SprintTopology.for_level(4, 4, 4)
        with pytest.raises(RoutingError):
            CdorRouter(topo).bits(10)

    @settings(max_examples=50, deadline=None)
    @given(
        width=st.integers(2, 5),
        height=st.integers(2, 5),
        data=st.data(),
    )
    def test_property_all_pairs_terminate(self, width, height, data):
        """CDOR reaches every destination from every source on any
        Algorithm-1 region of any mesh with any master."""
        master = data.draw(st.integers(0, width * height - 1))
        level = data.draw(st.integers(1, width * height))
        topo = SprintTopology.for_level(width, height, level, master)
        router = CdorRouter(topo)
        for src in topo.active_nodes:
            for dst in topo.active_nodes:
                path = router.walk(src, dst)
                assert path[-1] == dst

    def test_detour_paths_near_minimal(self):
        """CDOR detours never exceed the Manhattan distance inside the
        region: convexity guarantees a staircase path exists."""
        from repro.util.geometry import manhattan

        for level in range(2, 17):
            topo = SprintTopology.for_level(4, 4, level)
            router = CdorRouter(topo)
            for src in topo.active_nodes:
                for dst in topo.active_nodes:
                    dist = manhattan(topo.coord(src), topo.coord(dst))
                    assert router.hop_count(src, dst) == dist
