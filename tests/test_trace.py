"""Tests for traffic trace recording and replay."""

import pytest

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.noc.sim import run_simulation
from repro.noc.trace import TraceRecorder, TraceTraffic
from repro.noc.traffic import TrafficGenerator

CFG = NoCConfig()
FULL = SprintTopology.for_level(4, 4, 16)


def make_recorder(rate=0.2, seed=9):
    return TraceRecorder(
        TrafficGenerator(list(range(16)), rate, CFG.packet_length_flits, seed=seed)
    )


class TestRecorder:
    def test_passthrough(self):
        recorder = make_recorder()
        direct = TrafficGenerator(list(range(16)), 0.2, CFG.packet_length_flits, seed=9)
        for cycle in range(100):
            got = [(p.source, p.destination) for p in recorder.packets_for_cycle(cycle, False)]
            want = [(p.source, p.destination) for p in direct.packets_for_cycle(cycle, False)]
            assert got == want

    def test_records_everything(self):
        recorder = make_recorder()
        injected = 0
        for cycle in range(200):
            injected += len(recorder.packets_for_cycle(cycle, False))
        assert len(recorder.records) == injected

    def test_save_roundtrip(self, tmp_path):
        recorder = make_recorder()
        for cycle in range(150):
            recorder.packets_for_cycle(cycle, False)
        path = tmp_path / "trace.jsonl"
        count = recorder.save(path)
        replay = TraceTraffic.load(path)
        assert replay.packet_count == count
        assert replay.endpoints == sorted(
            {r["src"] for r in recorder.records}
            | {r["dst"] for r in recorder.records}
        )


class TestReplay:
    def test_exact_replay(self):
        recorder = make_recorder()
        for cycle in range(200):
            recorder.packets_for_cycle(cycle, False)
        replay = TraceTraffic(recorder.records)
        for cycle in range(200):
            expected = [
                (r["src"], r["dst"]) for r in recorder.records if r["cycle"] == cycle
            ]
            got = [
                (p.source, p.destination)
                for p in replay.packets_for_cycle(cycle, False)
            ]
            assert got == expected

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceTraffic([])

    def test_malformed_record_rejected(self):
        with pytest.raises(ValueError):
            TraceTraffic([{"cycle": 0, "src": 1}])
        with pytest.raises(ValueError):
            TraceTraffic([{"cycle": -1, "src": 0, "dst": 1, "len": 5}])

    def test_injection_rate_estimate(self):
        records = [
            {"cycle": c, "src": 0, "dst": 1, "len": 5} for c in range(100)
        ]
        replay = TraceTraffic(records)
        # 5 flits/cycle over 2 endpoints = 2.5 flits/cycle/endpoint
        assert replay.injection_rate == pytest.approx(2.5)


class TestSimulationOnTraces:
    def test_same_trace_same_result_across_runs(self):
        recorder = make_recorder(rate=0.15)
        for cycle in range(2000):
            recorder.packets_for_cycle(cycle, False)

        def run():
            traffic = TraceTraffic(recorder.records)
            return run_simulation(FULL, traffic, CFG, routing="xy",
                                  warmup_cycles=300, measure_cycles=1200)

        a, b = run(), run()
        assert a.avg_latency == b.avg_latency
        assert a.packets_measured == b.packets_measured

    def test_replay_deterministic_under_fault_schedule(self):
        """Replaying one trace under the same fault schedule must be
        bit-identical -- counters and all -- so fault experiments on
        recorded traffic are reproducible run to run."""
        from repro.noc.spec import FaultEvent, FaultSchedule

        recorder = make_recorder(rate=0.15)
        for cycle in range(2000):
            recorder.packets_for_cycle(cycle, False)
        schedule = FaultSchedule(events=(
            FaultEvent(cycle=500, kind="router", node=5),
            FaultEvent(cycle=700, kind="link", link=(9, 10), duration=300),
        ))

        def run():
            return run_simulation(FULL, TraceTraffic(recorder.records), CFG,
                                  routing="xy", warmup_cycles=300,
                                  measure_cycles=1200, faults=schedule)

        a, b = run(), run()
        assert a.avg_latency == b.avg_latency
        assert a.packets_measured == b.packets_measured
        assert a.packets_dropped == b.packets_dropped
        assert a.packets_retransmitted == b.packets_retransmitted
        assert a.reconfigurations == b.reconfigurations
        assert a.min_region_level == b.min_region_level
        assert a.reconfigurations > 0  # the schedule actually fired

    def test_identical_traffic_for_scheme_comparison(self):
        """The point of traces: compare routing schemes on *identical*
        packets, not just identically-distributed ones."""
        recorder = make_recorder(rate=0.2)
        for cycle in range(2000):
            recorder.packets_for_cycle(cycle, False)
        xy = run_simulation(FULL, TraceTraffic(recorder.records), CFG, "xy",
                            warmup_cycles=300, measure_cycles=1200)
        wf = run_simulation(FULL, TraceTraffic(recorder.records), CFG, "west_first",
                            warmup_cycles=300, measure_cycles=1200)
        assert xy.packets_measured == wf.packets_measured
        assert not xy.saturated and not wf.saturated
