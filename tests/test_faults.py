"""Tests for fault-aware topological sprinting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cdor import CdorRouter
from repro.core.deadlock import check_deadlock_freedom
from repro.core.faults import (
    FaultError,
    degraded_topology,
    fault_aware_sprint_region,
    fault_aware_topology,
    link_fault_exclusions,
)
from repro.core.topological import sprint_region

#: every link of the 4x4 mesh, as (low, high) node pairs
MESH_LINKS = sorted(
    {(n, n + 1) for n in range(16) if n % 4 != 3}
    | {(n, n + 4) for n in range(12)}
)


class TestBasics:
    def test_no_faults_matches_algorithm1(self):
        for level in (1, 4, 8, 16):
            assert fault_aware_sprint_region(4, 4, level, frozenset()) == (
                sprint_region(4, 4, level)
            )

    def test_faulty_master_rejected(self):
        with pytest.raises(FaultError):
            fault_aware_sprint_region(4, 4, 4, {0})

    def test_level_exceeding_healthy_nodes(self):
        with pytest.raises(FaultError):
            fault_aware_sprint_region(4, 4, 16, {5})

    def test_avoids_the_fault(self):
        region = fault_aware_sprint_region(4, 4, 4, {5})
        assert 5 not in region
        assert len(region) == 4
        assert region[0] == 0

    def test_fault_in_paper_region_reroutes(self):
        """With node 1 faulty, the 4-core region must grow differently but
        keep its invariants."""
        topo = fault_aware_topology(4, 4, 4, {1})
        assert 1 not in topo.active_nodes
        assert topo.is_connected()
        assert topo.is_orthogonally_convex()

    def test_region_properties_with_scattered_faults(self):
        topo = fault_aware_topology(4, 4, 8, {2, 7, 10})
        assert topo.is_connected()
        assert topo.is_orthogonally_convex()
        assert not set(topo.active_nodes) & {2, 7, 10}


class TestRoutingOnFaultyRegions:
    def test_cdor_still_works(self):
        topo = fault_aware_topology(4, 4, 6, {5, 6})
        router = CdorRouter(topo)
        for src in topo.active_nodes:
            for dst in topo.active_nodes:
                path = router.walk(src, dst)
                assert path[-1] == dst

    def test_still_deadlock_free(self):
        for faults in ({5}, {1, 6}, {4, 9}, {2, 7, 10}):
            try:
                topo = fault_aware_topology(4, 4, 8, faults)
            except FaultError:
                continue
            report = check_deadlock_freedom(CdorRouter(topo))
            assert report.acyclic, f"faults {faults}: {report.cycle}"

    @settings(max_examples=40, deadline=None)
    @given(
        faults=st.sets(st.integers(1, 15), max_size=4),
        level=st.integers(1, 8),
    )
    def test_property_invariants_or_clean_error(self, faults, level):
        """Any fault set either yields a valid region or a FaultError --
        never a silently-broken region."""
        try:
            topo = fault_aware_topology(4, 4, level, faults)
        except FaultError:
            return
        assert topo.is_connected()
        assert topo.is_orthogonally_convex()
        assert not set(topo.active_nodes) & faults
        assert topo.level == level
        assert check_deadlock_freedom(CdorRouter(topo)).acyclic


class TestDegradedTopology:
    def test_matches_strict_version_when_level_reachable(self):
        assert degraded_topology(4, 4, 4, {5}).active_nodes == (
            fault_aware_topology(4, 4, 4, {5}).active_nodes
        )

    def test_retreats_when_level_unreachable(self):
        # 14 healthy nodes around fault {1} but only 13 are reachable
        topo = degraded_topology(4, 4, 14, {1})
        assert topo.level == 13

    def test_faulty_master_still_fatal(self):
        with pytest.raises(FaultError):
            degraded_topology(4, 4, 4, {0})

    @settings(max_examples=40, deadline=None)
    @given(
        faults=st.sets(st.integers(1, 15), max_size=6),
        level=st.integers(1, 16),
    )
    def test_property_always_yields_routable_region(self, faults, level):
        """Any fault set yields *some* region: connected, convex, fault-free,
        deadlock-free, and CDOR never walks through a faulty node."""
        topo = degraded_topology(4, 4, level, faults)
        assert 1 <= topo.level <= level
        assert topo.is_connected()
        assert topo.is_orthogonally_convex()
        assert not set(topo.active_nodes) & faults
        router = CdorRouter(topo)
        assert check_deadlock_freedom(router).acyclic
        for src in topo.active_nodes:
            for dst in topo.active_nodes:
                path = router.walk(src, dst)
                assert path[-1] == dst
                assert not set(path) & faults

    @settings(max_examples=40, deadline=None)
    @given(links=st.sets(st.sampled_from(MESH_LINKS), max_size=4))
    def test_property_link_faults_never_span_the_region(self, links):
        """Excluding one endpoint per faulty link keeps every broken link
        outside the degraded region, and never costs the master."""
        excluded = link_fault_exclusions(4, 4, links)
        assert 0 not in excluded
        assert len(excluded) <= len(links)
        for a, b in links:
            assert a in excluded or b in excluded
        topo = degraded_topology(4, 4, 16, excluded)
        active = set(topo.active_nodes)
        for a, b in links:
            assert not {a, b} <= active


class TestSkippedNodesRecovered:
    def test_interior_hole_worked_around(self):
        """A fault adjacent to the master forces the region to grow around
        it -- downward and then east through row 1."""
        region = fault_aware_sprint_region(4, 4, 10, {1})
        assert len(region) == 10
        assert 1 not in region
        # row 1 east of the hole is reachable...
        assert {5, 6, 7} <= set(region)
        # ...but row 0 east of the fault is shadowed: {0, 2} with 1 dark
        # would break orthogonal convexity, so 2 and 3 stay out
        assert 2 not in region and 3 not in region

    def test_maximum_reachable_region(self):
        """With node 1 faulty, 13 of the 15 healthy nodes are reachable
        (all but the shadowed 2 and 3); asking for more raises."""
        region = fault_aware_sprint_region(4, 4, 13, {1})
        assert set(region) == set(range(16)) - {1, 2, 3}
        with pytest.raises(FaultError):
            fault_aware_sprint_region(4, 4, 14, {1})
