"""Tests for the adaptive turn-model routing baselines."""

import networkx as nx
import pytest

from repro.config import NoCConfig
from repro.core.topological import SprintTopology
from repro.noc.adaptive import (
    ADAPTIVE_ALGORITHMS,
    build_adaptive_table,
    candidate_dependency_edges,
    negative_first_candidates,
    west_first_candidates,
)
from repro.noc.sim import run_simulation
from repro.noc.traffic import TrafficGenerator
from repro.util.directions import Direction
from repro.util.geometry import Coord

CFG = NoCConfig()
FULL = SprintTopology.for_level(4, 4, 16)


class TestWestFirst:
    def test_westbound_is_deterministic(self):
        assert west_first_candidates(Coord(3, 1), Coord(0, 3)) == (Direction.WEST,)

    def test_eastbound_is_adaptive(self):
        cands = west_first_candidates(Coord(0, 0), Coord(2, 2))
        assert set(cands) == {Direction.EAST, Direction.SOUTH}

    def test_local(self):
        assert west_first_candidates(Coord(1, 1), Coord(1, 1)) == (Direction.LOCAL,)

    def test_never_offers_nw_sw_turn_targets(self):
        """No candidate set mixes WEST with a vertical direction: west
        movement always completes first."""
        for x1 in range(4):
            for y1 in range(4):
                for x2 in range(4):
                    for y2 in range(4):
                        cands = west_first_candidates(Coord(x1, y1), Coord(x2, y2))
                        if Direction.WEST in cands:
                            assert cands == (Direction.WEST,)


class TestNegativeFirst:
    def test_negative_phase_adaptive(self):
        cands = negative_first_candidates(Coord(2, 2), Coord(0, 0))
        assert set(cands) == {Direction.WEST, Direction.NORTH}

    def test_positive_phase_adaptive(self):
        cands = negative_first_candidates(Coord(0, 0), Coord(2, 2))
        assert set(cands) == {Direction.EAST, Direction.SOUTH}

    def test_mixed_quadrant_goes_negative_first(self):
        # dest is east and north: north (negative) must come first
        assert negative_first_candidates(Coord(0, 2), Coord(2, 0)) == (Direction.NORTH,)

    def test_local(self):
        assert negative_first_candidates(Coord(1, 1), Coord(1, 1)) == (Direction.LOCAL,)


class TestTableConstruction:
    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            build_adaptive_table(FULL, "fully_adaptive")

    def test_irregular_region_rejected(self):
        region = SprintTopology.for_level(4, 4, 8)
        with pytest.raises(ValueError, match="full mesh"):
            build_adaptive_table(region, "west_first")

    def test_candidates_always_productive(self):
        from repro.noc.routing import PORT_TO_DIRECTION
        from repro.util.geometry import manhattan

        for algorithm in ADAPTIVE_ALGORITHMS:
            table = build_adaptive_table(FULL, algorithm)
            for (cur, dst), ports in table.items():
                if cur == dst:
                    continue
                for port in ports:
                    direction = PORT_TO_DIRECTION[port]
                    nxt_coord = FULL.coord(cur) + direction.offset
                    assert manhattan(nxt_coord, FULL.coord(dst)) == (
                        manhattan(FULL.coord(cur), FULL.coord(dst)) - 1
                    ), f"{algorithm}: non-productive candidate {cur}->{dst}"


class TestDeadlockFreedom:
    @pytest.mark.parametrize("algorithm", ADAPTIVE_ALGORITHMS)
    def test_conservative_cdg_acyclic(self, algorithm):
        """Even the all-candidates dependency superset is acyclic -- the
        turn-model guarantee, checked mechanically."""
        edges = candidate_dependency_edges(FULL, algorithm)
        graph = nx.DiGraph(edges)
        assert nx.is_directed_acyclic_graph(graph)

    def test_fully_adaptive_would_deadlock(self):
        """Negative control: allowing every productive direction creates
        dependency cycles, so the checker is not vacuous."""
        graph = nx.DiGraph()
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                sc, dc = FULL.coord(src), FULL.coord(dst)
                outs = []
                if dc.x > sc.x:
                    outs.append(Direction.EAST)
                if dc.x < sc.x:
                    outs.append(Direction.WEST)
                if dc.y > sc.y:
                    outs.append(Direction.SOUTH)
                if dc.y < sc.y:
                    outs.append(Direction.NORTH)
                for d1 in outs:
                    mid = FULL.neighbor(src, d1)
                    if mid is None:
                        continue
                    mc = FULL.coord(mid)
                    for d2 in (Direction.EAST, Direction.WEST, Direction.NORTH, Direction.SOUTH):
                        nxt = FULL.neighbor(mid, d2)
                        if nxt is None or d2 is d1.opposite:
                            continue
                        nc = FULL.coord(nxt)
                        # productive second hop
                        from repro.util.geometry import manhattan

                        if manhattan(nc, dc) == manhattan(mc, dc) - 1:
                            graph.add_edge((src, mid), (mid, nxt))
        assert not nx.is_directed_acyclic_graph(graph)


class TestAdaptiveSimulation:
    @pytest.mark.parametrize("algorithm", ADAPTIVE_ALGORITHMS)
    def test_delivers_under_load(self, algorithm):
        traffic = TrafficGenerator(list(range(16)), 0.4, CFG.packet_length_flits,
                                   "uniform", seed=4)
        result = run_simulation(FULL, traffic, CFG, routing=algorithm,
                                warmup_cycles=300, measure_cycles=1200)
        assert not result.saturated
        assert result.packets_ejected == result.packets_measured

    @pytest.mark.parametrize("algorithm", ADAPTIVE_ALGORITHMS)
    def test_minimal_paths(self, algorithm):
        """Turn-model candidates are all productive, so hop counts equal
        Manhattan distance even under adaptive selection."""
        traffic = TrafficGenerator(list(range(16)), 0.05, CFG.packet_length_flits,
                                   "uniform", seed=4)
        result = run_simulation(FULL, traffic, CFG, routing=algorithm,
                                warmup_cycles=300, measure_cycles=800)
        from repro.noc.sim import zero_load_latency

        assert result.avg_latency == pytest.approx(
            zero_load_latency(FULL, CFG, "xy"), rel=0.15
        )

    def test_adaptive_helps_adversarial_pattern(self):
        """Under transpose traffic near saturation, adaptive west-first
        spreads load that XY funnels through the diagonal."""
        def run(routing, rate):
            traffic = TrafficGenerator(list(range(16)), rate,
                                       CFG.packet_length_flits, "transpose", seed=4)
            return run_simulation(FULL, traffic, CFG, routing=routing,
                                  warmup_cycles=300, measure_cycles=1500,
                                  drain_cycles=6000)

        xy = run("xy", 0.5)
        adaptive = run("west_first", 0.5)
        assert adaptive.avg_latency <= xy.avg_latency * 1.05
