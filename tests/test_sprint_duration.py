"""Tests for the sprint-duration analysis (Section 4.4)."""

import pytest

from repro.power.chip_power import ChipPowerModel
from repro.thermal.sprint_duration import duration_gain, useful_sprint_duration


class TestUsefulDuration:
    def test_thermally_capped(self):
        r = useful_sprint_duration(170.0, burst_duration_s=10.0)
        assert r.thermally_capped
        assert r.useful_duration_s == r.thermal_duration_s

    def test_burst_completes(self):
        r = useful_sprint_duration(170.0, burst_duration_s=0.2)
        assert r.burst_completed
        assert r.useful_duration_s == pytest.approx(0.2)

    def test_unconstrained_sprint(self):
        r = useful_sprint_duration(30.0, burst_duration_s=5.0)
        assert r.burst_completed
        assert r.useful_duration_s == 5.0

    def test_negative_burst_rejected(self):
        with pytest.raises(ValueError):
            useful_sprint_duration(100.0, -1.0)


class TestDurationGain:
    def test_lower_power_longer_sprint(self):
        chip = ChipPowerModel(16)
        full = chip.sprint_chip_power(16, "full").total
        noc = chip.sprint_chip_power(4, "noc_sprinting").total
        gain = duration_gain(noc, full, noc_burst_s=100.0, full_burst_s=100.0)
        assert gain > 2.0  # thermal budget stretches dramatically at level 4

    def test_equal_configs_gain_one(self):
        assert duration_gain(170.0, 170.0, 5.0, 5.0) == pytest.approx(1.0)

    def test_burst_limits_gain(self):
        """If the workload finishes quickly, the extra headroom is unused."""
        unlimited = duration_gain(60.0, 170.0, 1000.0, 1000.0)
        limited = duration_gain(60.0, 170.0, 1.5, 1000.0)
        assert limited < unlimited

    def test_paper_average(self):
        """Section 4.4: +55.4 % average sprint duration over PARSEC."""
        from repro.core import NoCSprintingSystem
        from repro.cmp import all_profiles

        system = NoCSprintingSystem()
        gains = [system.sprint_duration_gain(p) for p in all_profiles()]
        mean_gain = sum(gains) / len(gains)
        assert 100 * (mean_gain - 1) == pytest.approx(55.4, abs=8.0)

    def test_gains_never_below_one_via_system(self):
        from repro.core import NoCSprintingSystem
        from repro.cmp import all_profiles

        system = NoCSprintingSystem()
        for p in all_profiles():
            assert system.sprint_duration_gain(p) >= 1.0
