"""Tests for repro.util.geometry."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.geometry import (
    Coord,
    average_pairwise_manhattan,
    centroid,
    convex_hull,
    coord_to_node,
    euclidean,
    euclidean_sq,
    is_connected,
    is_discretely_convex,
    is_orthogonally_convex,
    lattice_points_in_hull,
    manhattan,
    node_to_coord,
    point_in_hull,
)

coords = st.builds(
    Coord, st.integers(min_value=-6, max_value=6), st.integers(min_value=-6, max_value=6)
)


class TestCoord:
    def test_add(self):
        assert Coord(1, 2) + Coord(3, -1) == Coord(4, 1)

    def test_sub(self):
        assert Coord(1, 2) - Coord(3, -1) == Coord(-2, 3)

    def test_is_tuple(self):
        x, y = Coord(5, 7)
        assert (x, y) == (5, 7)


class TestNodeCoordMapping:
    def test_row_major(self):
        assert node_to_coord(0, 4) == Coord(0, 0)
        assert node_to_coord(1, 4) == Coord(1, 0)
        assert node_to_coord(4, 4) == Coord(0, 1)
        assert node_to_coord(15, 4) == Coord(3, 3)

    def test_roundtrip(self):
        for node in range(16):
            assert coord_to_node(node_to_coord(node, 4), 4) == node

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError):
            node_to_coord(-1, 4)

    def test_out_of_mesh_coord_rejected(self):
        with pytest.raises(ValueError):
            coord_to_node(Coord(4, 0), 4)
        with pytest.raises(ValueError):
            coord_to_node(Coord(-1, 0), 4)


class TestDistances:
    def test_euclidean_sq_exact(self):
        assert euclidean_sq(Coord(0, 0), Coord(3, 4)) == 25

    def test_euclidean(self):
        assert euclidean(Coord(0, 0), Coord(3, 4)) == pytest.approx(5.0)

    def test_manhattan(self):
        assert manhattan(Coord(0, 0), Coord(3, 4)) == 7

    @given(coords, coords)
    def test_symmetry(self, a, b):
        assert euclidean_sq(a, b) == euclidean_sq(b, a)
        assert manhattan(a, b) == manhattan(b, a)

    @given(coords, coords)
    def test_euclidean_le_manhattan(self, a, b):
        assert euclidean(a, b) <= manhattan(a, b) + 1e-9

    @given(coords, coords, coords)
    def test_triangle_inequality(self, a, b, c):
        assert manhattan(a, c) <= manhattan(a, b) + manhattan(b, c)


class TestConvexHull:
    def test_single_point(self):
        assert convex_hull([Coord(2, 3)]) == [Coord(2, 3)]

    def test_two_points(self):
        assert set(convex_hull([Coord(0, 0), Coord(2, 2)])) == {Coord(0, 0), Coord(2, 2)}

    def test_square(self):
        pts = [Coord(0, 0), Coord(2, 0), Coord(0, 2), Coord(2, 2), Coord(1, 1)]
        hull = convex_hull(pts)
        assert set(hull) == {Coord(0, 0), Coord(2, 0), Coord(0, 2), Coord(2, 2)}

    def test_collinear_degenerates(self):
        hull = convex_hull([Coord(0, 0), Coord(1, 1), Coord(2, 2)])
        assert set(hull) == {Coord(0, 0), Coord(2, 2)}

    @given(st.lists(coords, min_size=1, max_size=12))
    def test_all_points_inside_hull(self, pts):
        hull = convex_hull(pts)
        for p in pts:
            assert point_in_hull(p, hull)

    @given(st.lists(coords, min_size=3, max_size=12))
    def test_hull_vertices_subset_of_points(self, pts):
        assert set(convex_hull(pts)) <= set(pts)


class TestPointInHull:
    def test_empty_hull(self):
        assert not point_in_hull(Coord(0, 0), [])

    def test_boundary_inclusive(self):
        hull = convex_hull([Coord(0, 0), Coord(4, 0), Coord(0, 4)])
        assert point_in_hull(Coord(2, 0), hull)
        assert point_in_hull(Coord(2, 2), hull)  # on the hypotenuse

    def test_outside(self):
        hull = convex_hull([Coord(0, 0), Coord(4, 0), Coord(0, 4)])
        assert not point_in_hull(Coord(3, 3), hull)

    def test_segment_hull_off_line(self):
        hull = convex_hull([Coord(0, 0), Coord(2, 2)])
        assert not point_in_hull(Coord(1, 0), hull)
        assert point_in_hull(Coord(1, 1), hull)


class TestLatticePointsInHull:
    def test_unit_square(self):
        hull = convex_hull([Coord(0, 0), Coord(1, 0), Coord(0, 1), Coord(1, 1)])
        assert len(lattice_points_in_hull(hull)) == 4

    def test_triangle(self):
        hull = convex_hull([Coord(0, 0), Coord(2, 0), Coord(0, 2)])
        assert set(lattice_points_in_hull(hull)) == {
            Coord(0, 0), Coord(1, 0), Coord(2, 0), Coord(0, 1), Coord(1, 1), Coord(0, 2),
        }


class TestDiscreteConvexity:
    def test_empty_and_singleton(self):
        assert is_discretely_convex([])
        assert is_discretely_convex([Coord(3, 3)])

    def test_square_block(self):
        assert is_discretely_convex([Coord(x, y) for x in range(2) for y in range(2)])

    def test_missing_interior_point(self):
        pts = [Coord(x, y) for x in range(3) for y in range(3) if (x, y) != (1, 1)]
        assert not is_discretely_convex(pts)

    def test_diagonal_pair_is_convex(self):
        # no lattice point lies strictly between them
        assert is_discretely_convex([Coord(0, 0), Coord(1, 1)])

    def test_l_shape_not_convex(self):
        assert not is_discretely_convex([Coord(0, 0), Coord(2, 0), Coord(0, 2)])


class TestOrthogonalConvexity:
    def test_diagonal_pair(self):
        # discretely convex but NOT orthogonally closed... both members
        # share no row/column, so orthogonal convexity trivially holds
        assert is_orthogonally_convex([Coord(0, 0), Coord(1, 1)])

    def test_row_with_gap(self):
        assert not is_orthogonally_convex([Coord(0, 0), Coord(2, 0)])

    def test_column_with_gap(self):
        assert not is_orthogonally_convex([Coord(0, 0), Coord(0, 2)])

    def test_full_row(self):
        assert is_orthogonally_convex([Coord(x, 0) for x in range(4)])


class TestConnectivity:
    def test_connected_block(self):
        assert is_connected([Coord(0, 0), Coord(1, 0), Coord(1, 1)])

    def test_disconnected(self):
        assert not is_connected([Coord(0, 0), Coord(2, 2)])

    def test_empty(self):
        assert is_connected([])


class TestAggregates:
    def test_centroid(self):
        assert centroid([Coord(0, 0), Coord(2, 4)]) == (1.0, 2.0)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_average_pairwise_manhattan(self):
        pts = [Coord(0, 0), Coord(1, 0), Coord(0, 1)]
        # pairs: 1, 1, 2 -> mean 4/3
        assert average_pairwise_manhattan(pts) == pytest.approx(4 / 3)

    def test_average_pairwise_single(self):
        assert average_pairwise_manhattan([Coord(0, 0)]) == 0.0
