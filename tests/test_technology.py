"""Tests for technology scaling laws."""

import pytest

from repro.power.technology import FIG2_OPERATING_POINTS, TECH_45NM, TechNode


class TestDynamicScaling:
    def test_identity_at_nominal(self):
        assert TECH_45NM.dynamic_scale(1.0, 2.0e9) == pytest.approx(1.0)

    def test_cv2f_law(self):
        # (0.75)^2 * 0.5 = 0.28125
        assert TECH_45NM.dynamic_scale(0.75, 1.0e9) == pytest.approx(0.28125)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            TECH_45NM.dynamic_scale(0.0, 1e9)
        with pytest.raises(ValueError):
            TECH_45NM.dynamic_scale(1.0, 0.0)


class TestLeakageScaling:
    def test_identity_at_nominal(self):
        assert TECH_45NM.leakage_scale(1.0) == pytest.approx(1.0)

    def test_leakage_falls_slower_than_dynamic(self):
        """The mechanism behind Figure 2: at every downscaled corner the
        leakage share of total power grows."""
        for vdd, freq in FIG2_OPERATING_POINTS[1:]:
            dyn = TECH_45NM.dynamic_scale(vdd, freq)
            leak = TECH_45NM.leakage_scale(vdd)
            assert leak > dyn

    def test_monotone_in_vdd(self):
        scales = [TECH_45NM.leakage_scale(v) for v in (0.7, 0.8, 0.9, 1.0, 1.1)]
        assert scales == sorted(scales)

    def test_overdrive_exceeds_one(self):
        assert TECH_45NM.leakage_scale(1.1) > 1.0


class TestOperatingPoints:
    def test_fig2_sweep(self):
        assert FIG2_OPERATING_POINTS[0] == (1.0, 2.0e9)
        assert FIG2_OPERATING_POINTS[-1] == (0.75, 1.0e9)

    def test_custom_node(self):
        node = TechNode("32nm", 32, 0.9, 2.5e9, 2.5)
        assert node.dynamic_scale(0.9, 2.5e9) == pytest.approx(1.0)
        assert node.leakage_scale(0.9) == pytest.approx(1.0)
