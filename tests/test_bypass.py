"""Tests for bypass-path planning (Section 3.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bypass import BypassPlan, plan_bypass
from repro.core.topological import SprintTopology, dark_nodes
from repro.util.geometry import manhattan


class TestPlanBypass:
    def test_every_dark_node_gets_a_proxy(self):
        for level in range(1, 16):
            topo = SprintTopology.for_level(4, 4, level)
            plan = plan_bypass(topo)
            assert set(plan.proxy) == set(dark_nodes(topo))
            assert plan.dark_bank_count == 16 - level

    def test_proxies_are_active(self):
        topo = SprintTopology.for_level(4, 4, 4)
        plan = plan_bypass(topo)
        for proxy in plan.proxy.values():
            assert topo.is_active(proxy)

    def test_proxy_is_nearest_active(self):
        topo = SprintTopology.for_level(4, 4, 4)
        plan = plan_bypass(topo)
        for dark, proxy in plan.proxy.items():
            best = min(
                manhattan(topo.coord(dark), topo.coord(a))
                for a in topo.active_nodes
            )
            assert manhattan(topo.coord(dark), topo.coord(proxy)) == best

    def test_tie_breaks_to_lower_id(self):
        topo = SprintTopology.for_level(4, 4, 2)  # active {0, 1}
        plan = plan_bypass(topo)
        # node 5 is distance 2 from node 0 and 1 from node 1
        assert plan.proxy[5] == 1
        # node 4 is distance 1 from 0 and 2 from 1
        assert plan.proxy[4] == 0
        # node 6 is equidistant (3) from... actually 6=(2,1): d(0)=3, d(1)=2
        assert plan.proxy[6] == 1

    def test_full_level_empty_plan(self):
        topo = SprintTopology.for_level(4, 4, 16)
        plan = plan_bypass(topo)
        assert plan.dark_bank_count == 0
        assert plan.max_bypass_distance(topo) == 0

    def test_proxy_for_active_node_is_itself(self):
        topo = SprintTopology.for_level(4, 4, 4)
        plan = plan_bypass(topo)
        assert plan.proxy_for(0) == 0
        assert plan.proxy_for(15) != 15

    def test_negative_latency_rejected(self):
        topo = SprintTopology.for_level(4, 4, 4)
        with pytest.raises(ValueError):
            plan_bypass(topo, latency_cycles=-1)

    def test_max_bypass_distance_single_core(self):
        topo = SprintTopology.for_level(4, 4, 1)
        plan = plan_bypass(topo)
        # the far corner (node 15) is 6 hops from the master
        assert plan.max_bypass_distance(topo) == 6

    @settings(max_examples=30, deadline=None)
    @given(width=st.integers(2, 5), height=st.integers(2, 5), data=st.data())
    def test_property_plan_complete_and_active(self, width, height, data):
        master = data.draw(st.integers(0, width * height - 1))
        level = data.draw(st.integers(1, width * height))
        topo = SprintTopology.for_level(width, height, level, master)
        plan = plan_bypass(topo)
        assert len(plan.proxy) == width * height - level
        assert all(topo.is_active(p) for p in plan.proxy.values())


class TestBypassPlanObject:
    def test_frozen(self):
        plan = BypassPlan(proxy={}, latency_cycles=4)
        with pytest.raises(AttributeError):
            plan.latency_cycles = 8  # type: ignore[misc]
